//! Telemetry and attribution sink for the experiment harness.
//!
//! When any of `--stats-json`, `--trace`, `--series-csv` or
//! `--series-summary` is passed to `asm-experiments`, every workload run
//! is instrumented (see [`asm_core::RunOptions`]) and its
//! [`RunTelemetry`] snapshot is collected here. Likewise `--attrib`,
//! `--attrib-csv` and `--blame-json` turn on the ground-truth
//! cycle-attribution ledger (DESIGN.md §13) and collect each run's
//! [`RunAttribution`]. Recording happens on the caller's thread
//! **after** the parallel pool returns, in submission order, so every
//! artefact this module writes is byte-identical for any `--jobs` value
//! — the same invariant the tables already satisfy.
//!
//! Like the alone-cache and CSV plumbing, this module is process-global
//! state behind `OnceLock`/`Mutex`; that is fine here because the
//! experiments crate is *not* a simulation crate (asm-lint R6 bans shared
//! mutable state only inside the deterministic simulation core).

use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use asm_core::{Component, RunAttribution, RunOptions, RunResult, RunTelemetry, COMPONENTS};
use asm_telemetry::JsonValue;

/// 1-in-N request sampling for `--trace` memory-lifecycle events.
/// Scheduler events (epochs, quanta, repartitions) are never sampled out.
pub const TRACE_SAMPLE: u64 = 64;

/// Which telemetry/attribution artefacts the CLI asked for.
#[derive(Debug, Clone, Default)]
pub struct SinkConfig {
    /// `--stats-json FILE`: merged counter/series/latency snapshot.
    pub stats_json: Option<PathBuf>,
    /// `--trace FILE`: Chrome trace-event JSON for the first workload.
    pub trace: Option<PathBuf>,
    /// `--series-csv DIR`: one long-format CSV per workload.
    pub series_csv: Option<PathBuf>,
    /// `--series-summary`: print per-series sparklines to stdout.
    pub series_summary: bool,
    /// `--attrib`: print per-workload attribution summaries to stdout.
    pub attrib: bool,
    /// `--attrib-csv FILE`: long-format per-quantum ledger CSV.
    pub attrib_csv: Option<PathBuf>,
    /// `--blame-json FILE`: per-workload blame matrices and totals.
    pub blame_json: Option<PathBuf>,
}

impl SinkConfig {
    /// Whether any artefact was requested.
    #[must_use]
    pub fn any(&self) -> bool {
        self.telemetry() || self.attribution()
    }

    /// Whether any *telemetry* artefact was requested (instruments runs
    /// with counters/series/traces).
    #[must_use]
    pub fn telemetry(&self) -> bool {
        self.stats_json.is_some()
            || self.trace.is_some()
            || self.series_csv.is_some()
            || self.series_summary
    }

    /// Whether any *attribution* artefact was requested (turns on the
    /// conservation-checked cycle ledger).
    #[must_use]
    pub fn attribution(&self) -> bool {
        self.attrib || self.attrib_csv.is_some() || self.blame_json.is_some()
    }
}

/// One recorded attribution artefact, in submission order.
#[derive(Debug)]
struct AttribRecord {
    label: String,
    apps: Vec<String>,
    attrib: RunAttribution,
}

static CONFIG: OnceLock<SinkConfig> = OnceLock::new();
static RECORDS: Mutex<Vec<(String, RunTelemetry)>> = Mutex::new(Vec::new());
static ATTRIBS: Mutex<Vec<AttribRecord>> = Mutex::new(Vec::new());

/// Activates the sink (once per process; later calls are ignored). A
/// config requesting nothing leaves the sink inactive and every run
/// uninstrumented.
pub fn configure(cfg: SinkConfig) {
    if cfg.any() {
        let _ = CONFIG.set(cfg);
    }
}

/// Whether any telemetry or attribution artefact was requested.
#[must_use]
pub fn active() -> bool {
    CONFIG.get().is_some()
}

/// The run options every experiment should simulate under: telemetry on
/// exactly when a telemetry artefact was requested, request tracing only
/// under `--trace`, attribution exactly when an attribution artefact was
/// requested.
#[must_use]
pub fn options() -> RunOptions {
    match CONFIG.get() {
        Some(cfg) => RunOptions {
            telemetry: cfg.telemetry(),
            trace_sample: cfg.trace.is_some().then_some(TRACE_SAMPLE),
            attrib: cfg.attribution(),
        },
        None => RunOptions::default(),
    }
}

/// Collects one run's telemetry and/or attribution. Call in
/// workload-submission order (the label embeds the arrival index); a run
/// carrying neither artefact is a no-op.
pub fn record(result: &RunResult) {
    if let Some(t) = &result.telemetry {
        let mut records = RECORDS.lock().expect("telemetry sink poisoned");
        let label = format!("w{:03} {}", records.len(), result.app_names.join("+"));
        records.push((label, t.clone()));
    }
    if let Some(a) = &result.attribution {
        let mut records = ATTRIBS.lock().expect("attribution sink poisoned");
        let label = format!("w{:03} {}", records.len(), result.app_names.join("+"));
        records.push(AttribRecord {
            label,
            apps: result.app_names.clone(),
            attrib: a.clone(),
        });
    }
}

/// Writes every requested artefact. Called once at the end of the CLI
/// run; I/O failures are reported to stderr but never abort (matching
/// the CSV exporter).
pub fn finalize() {
    let Some(cfg) = CONFIG.get() else {
        return;
    };
    let records = std::mem::take(&mut *RECORDS.lock().expect("telemetry sink poisoned"));
    let attribs = std::mem::take(&mut *ATTRIBS.lock().expect("attribution sink poisoned"));
    if cfg.telemetry() && records.is_empty() || cfg.attribution() && attribs.is_empty() {
        // Some experiments (fig1, workloads) never route a run through
        // the Runner; the artefacts are still written, just empty.
        eprintln!("[telemetry] no instrumented runs recorded");
    }
    if cfg.series_summary {
        for (label, t) in &records {
            print_series_summary(label, t);
        }
    }
    if let Some(path) = &cfg.stats_json {
        report(path, std::fs::write(path, stats_json(&records).to_json_pretty()));
    }
    if let Some(path) = &cfg.trace {
        // One workload's trace is viewable; all of them concatenated are
        // not (perfetto expects a single timeline). First in, first out.
        let json = records.first().map_or_else(
            || asm_telemetry::Tracer::off().to_json(),
            |(_, t)| t.tracer.to_json(),
        );
        report(path, std::fs::write(path, json));
    }
    if let Some(dir) = &cfg.series_csv {
        let write_all = || -> std::io::Result<()> {
            std::fs::create_dir_all(dir)?;
            for (label, t) in &records {
                let path = dir.join(format!("{}.csv", sanitize(label)));
                std::fs::write(&path, series_csv(t))?;
            }
            Ok(())
        };
        report(dir, write_all());
    }
    if cfg.attrib {
        for r in &attribs {
            print_attrib_summary(r);
        }
    }
    if let Some(path) = &cfg.attrib_csv {
        report(path, std::fs::write(path, attrib_csv(&attribs)));
    }
    if let Some(path) = &cfg.blame_json {
        report(path, std::fs::write(path, blame_json(&attribs).to_json_pretty()));
    }
}

fn report<T>(path: &Path, r: std::io::Result<T>) {
    match r {
        Ok(_) => eprintln!("[telemetry] wrote {}", path.display()),
        Err(e) => eprintln!("[telemetry] failed to write {}: {e}", path.display()),
    }
}

/// `label` → a safe file stem (alphanumerics kept, the rest become `_`).
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// The `--stats-json` document: schema tag plus one object per workload
/// with sorted counters, the DRAM read-latency quantiles and a summary of
/// every recorded series.
fn stats_json(records: &[(String, RunTelemetry)]) -> JsonValue {
    let opt = |v: Option<f64>| v.map_or(JsonValue::Null, JsonValue::Num);
    let workloads = records
        .iter()
        .map(|(label, t)| {
            let mut counters: Vec<(String, JsonValue)> = t
                .counters
                .iter()
                .map(|(n, v)| (n.clone(), JsonValue::num_u64(*v)))
                .collect();
            counters.sort_by(|a, b| a.0.cmp(&b.0));

            let h = &t.mem_latency_hist;
            let latency = JsonValue::Obj(vec![
                ("samples".into(), JsonValue::num_u64(h.total())),
                ("mean".into(), opt(h.mean())),
                ("p50".into(), opt(h.p50())),
                ("p95".into(), opt(h.p95())),
                ("p99".into(), opt(h.p99())),
            ]);

            let series = t
                .series
                .names()
                .iter()
                .map(|name| {
                    let id = t.series.id_of(name).expect("name from names()");
                    let samples = t.series.samples(id);
                    let values: Vec<f64> = samples.iter().map(|&(_, v)| v).collect();
                    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
                    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let summary = JsonValue::Obj(vec![
                        ("count".into(), JsonValue::num_u64(samples.len() as u64)),
                        ("dropped".into(), JsonValue::num_u64(t.series.dropped(id))),
                        ("min".into(), opt(lo.is_finite().then_some(lo))),
                        ("max".into(), opt(hi.is_finite().then_some(hi))),
                        ("last".into(), opt(values.last().copied())),
                    ]);
                    ((*name).to_owned(), summary)
                })
                .collect();

            JsonValue::Obj(vec![
                ("label".into(), JsonValue::str(label)),
                ("counters".into(), JsonValue::Obj(counters)),
                ("dram_read_latency".into(), latency),
                ("series".into(), JsonValue::Obj(series)),
            ])
        })
        .collect();
    JsonValue::Obj(vec![
        ("schema".into(), JsonValue::str("asm-telemetry v1")),
        ("workloads".into(), JsonValue::Arr(workloads)),
    ])
}

/// Long-format CSV (`series,cycle,value`) of every sample of every
/// series, in registration then chronological order.
fn series_csv(t: &RunTelemetry) -> String {
    let mut out = String::from("series,cycle,value\n");
    for name in t.series.names() {
        let id = t.series.id_of(name).expect("name from names()");
        for (cycle, value) in t.series.samples(id) {
            use std::fmt::Write as _;
            let _ = writeln!(out, "{name},{cycle},{value}");
        }
    }
    out
}

/// One stdout block per workload: a sparkline and range per series.
/// Deterministic for any `--jobs` (records arrive in submission order).
fn print_series_summary(label: &str, t: &RunTelemetry) {
    println!("\ntelemetry series ({label}):");
    let names = t.series.names();
    let width = names.iter().map(|n| n.len()).max().unwrap_or(0);
    for name in names {
        let id = t.series.id_of(name).expect("name from names()");
        let values = t.series.values(id);
        if values.is_empty() {
            println!("  {name:<width$}  (no samples)");
            continue;
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "  {name:<width$}  {} min {lo:.3} max {hi:.3} last {:.3} ({} samples)",
            asm_metrics::sparkline(&values),
            values.last().copied().unwrap_or(f64::NAN),
            values.len(),
        );
    }
}

/// One stdout block per workload under `--attrib`: each app's whole-run
/// component decomposition (percent of run cycles) and its blame row.
/// Deterministic for any `--jobs` (records arrive in submission order).
fn print_attrib_summary(r: &AttribRecord) {
    let n = r.apps.len();
    println!("\ncycle attribution ({}):", r.label);
    let run_cycles: u64 = r.attrib.quanta.iter().map(|q| q.end - q.start).sum();
    if run_cycles == 0 {
        println!("  (no finalized quanta)");
        return;
    }
    let pct = |c: u64| 100.0 * c as f64 / run_cycles as f64;
    for (v, app) in r.apps.iter().enumerate() {
        println!("  app{v} {app} ({} quanta, {run_cycles} cycles):", r.attrib.quanta.len());
        for (k, comp) in Component::ALL.iter().enumerate() {
            let c = r.attrib.totals[v * COMPONENTS + k];
            if c > 0 {
                let tag = if comp.is_interference() { " [interference]" } else { "" };
                println!("    {:<18} {c:>12}  {:6.2}%{tag}", comp.name(), pct(c));
            }
        }
        let row: Vec<String> = (0..n)
            .map(|o| format!("app{o}={}", r.attrib.blame[v * n + o]))
            .collect();
        println!("    blame row: {}", row.join(" "));
    }
}

/// The `--attrib-csv` document: one long-format row per
/// (workload, quantum, app, component) with non-zero cycles, followed by
/// `blame.appN` pseudo-components carrying the off-diagonal blame matrix.
/// Quanta are identified by their end cycle.
fn attrib_csv(records: &[AttribRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("workload,quantum_end,app,component,cycles\n");
    for r in records {
        let n = r.apps.len();
        for q in &r.attrib.quanta {
            for v in 0..n {
                for comp in Component::ALL {
                    let c = q.component(v, comp);
                    if c > 0 {
                        let _ = writeln!(out, "{},{},app{v},{},{c}", r.label, q.end, comp.name());
                    }
                }
                for o in 0..n {
                    let c = q.blamed(v, o);
                    if o != v && c > 0 {
                        let _ = writeln!(out, "{},{},app{v},blame.app{o},{c}", r.label, q.end);
                    }
                }
            }
        }
    }
    out
}

/// The `--blame-json` document: schema tag plus one object per workload
/// with the app list, whole-run component totals, the whole-run blame
/// matrix, and every quantum's blame matrix (victim-major rows).
fn blame_json(records: &[AttribRecord]) -> JsonValue {
    let matrix = |blame: &[u64], n: usize| {
        JsonValue::Arr(
            (0..n)
                .map(|v| {
                    JsonValue::Arr(
                        blame[v * n..(v + 1) * n]
                            .iter()
                            .map(|&c| JsonValue::num_u64(c))
                            .collect(),
                    )
                })
                .collect(),
        )
    };
    let workloads = records
        .iter()
        .map(|r| {
            let n = r.apps.len();
            let apps = JsonValue::Arr(r.apps.iter().map(|a| JsonValue::str(a)).collect());
            let totals = JsonValue::Arr(
                (0..n)
                    .map(|v| {
                        JsonValue::Obj(
                            Component::ALL
                                .iter()
                                .enumerate()
                                .map(|(k, comp)| {
                                    let c = r.attrib.totals[v * COMPONENTS + k];
                                    (comp.name().to_owned(), JsonValue::num_u64(c))
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            );
            let quanta = JsonValue::Arr(
                r.attrib
                    .quanta
                    .iter()
                    .map(|q| {
                        JsonValue::Obj(vec![
                            ("start".into(), JsonValue::num_u64(q.start)),
                            ("end".into(), JsonValue::num_u64(q.end)),
                            ("blame".into(), matrix(&q.blame, n)),
                        ])
                    })
                    .collect(),
            );
            JsonValue::Obj(vec![
                ("label".into(), JsonValue::str(&r.label)),
                ("apps".into(), apps),
                ("component_totals".into(), totals),
                ("blame_totals".into(), matrix(&r.attrib.blame, n)),
                ("quanta".into(), quanta),
            ])
        })
        .collect();
    JsonValue::Obj(vec![
        ("schema".into(), JsonValue::str("asm-attrib v1")),
        ("workloads".into(), JsonValue::Arr(workloads)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_keeps_only_alphanumerics() {
        assert_eq!(sanitize("w003 mcf_like+lbm_like"), "w003_mcf_like_lbm_like");
    }

    #[test]
    fn inactive_sink_yields_default_options() {
        // CONFIG is process-global, so this test only checks the inactive
        // path (the active path is covered by the integration tests that
        // spawn the binary with flags).
        if CONFIG.get().is_none() {
            let o = options();
            assert!(!o.telemetry);
            assert!(o.trace_sample.is_none());
            assert!(!o.attrib);
        }
    }

    #[test]
    fn stats_json_shape_round_trips() {
        let runner = asm_core::Runner::new({
            let mut c = asm_core::SystemConfig::default();
            c.quantum = 50_000;
            c.epoch = 1_000;
            c
        });
        let apps = vec![
            asm_workloads::suite::by_name("mcf_like").unwrap(),
            asm_workloads::suite::by_name("h264ref_like").unwrap(),
        ];
        let opts = RunOptions {
            telemetry: true,
            trace_sample: Some(TRACE_SAMPLE),
            attrib: false,
        };
        let r = runner.run_with(&apps, 100_000, opts);
        let t = r.telemetry.clone().expect("telemetry");
        let records = vec![("w000 mcf_like+h264ref_like".to_owned(), t)];

        let text = stats_json(&records).to_json_pretty();
        let parsed = asm_telemetry::json::parse(&text).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(JsonValue::as_str),
            Some("asm-telemetry v1")
        );
        let w = parsed
            .get("workloads")
            .and_then(JsonValue::as_arr)
            .expect("workloads array");
        assert_eq!(w.len(), 1);
        let counters = w[0].get("counters").expect("counters");
        assert!(counters.get("llc.app0.hits").is_some());
        assert!(w[0]
            .get("dram_read_latency")
            .and_then(|l| l.get("p95"))
            .is_some());

        let csv = series_csv(&records[0].1);
        assert!(csv.starts_with("series,cycle,value\n"));
        assert!(csv.contains("app0.est_slowdown,50000,"));
    }

    #[test]
    fn attrib_artefacts_round_trip() {
        let runner = asm_core::Runner::new({
            let mut c = asm_core::SystemConfig::default();
            c.quantum = 50_000;
            c.epoch = 1_000;
            c
        });
        let apps = vec![
            asm_workloads::suite::by_name("mcf_like").unwrap(),
            asm_workloads::suite::by_name("h264ref_like").unwrap(),
        ];
        let opts = RunOptions {
            telemetry: false,
            trace_sample: None,
            attrib: true,
        };
        let r = runner.run_with(&apps, 100_000, opts);
        let a = r.attribution.clone().expect("attribution");
        let records = vec![AttribRecord {
            label: "w000 mcf_like+h264ref_like".to_owned(),
            apps: r.app_names.clone(),
            attrib: a,
        }];

        let csv = attrib_csv(&records);
        assert!(csv.starts_with("workload,quantum_end,app,component,cycles\n"));
        assert!(csv.contains(",50000,app0,compute,"));

        let text = blame_json(&records).to_json_pretty();
        let parsed = asm_telemetry::json::parse(&text).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(JsonValue::as_str),
            Some("asm-attrib v1")
        );
        let w = parsed
            .get("workloads")
            .and_then(JsonValue::as_arr)
            .expect("workloads array");
        assert_eq!(w.len(), 1);
        let blame = w[0]
            .get("blame_totals")
            .and_then(JsonValue::as_arr)
            .expect("blame matrix");
        assert_eq!(blame.len(), 2);
        // Each whole-run blame row sums to the run's attributed cycles.
        let run_cycles: u64 = records[0]
            .attrib
            .quanta
            .iter()
            .map(|q| q.end - q.start)
            .sum();
        for v in 0..2 {
            let row: u64 = (0..2).map(|o| records[0].attrib.blame[v * 2 + o]).sum();
            assert_eq!(row, run_cycles, "blame row {v} does not conserve");
        }
    }
}
