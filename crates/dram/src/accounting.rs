//! Interference and queueing-cycle accounting.
//!
//! Two counters feed the slowdown estimators:
//!
//! 1. **Per-request interference cycles** (for FST/PTCA): cycles a queued
//!    read spends waiting while its bank services *another* application's
//!    request. Reported in each [`crate::Completion`].
//! 2. **Queueing cycles** (§4.3, for ASM/MISE): "a cycle is deemed a
//!    queueing cycle if a request from the highest-priority application is
//!    outstanding and the previous command issued by the memory controller
//!    was from another application."
//!
//! Both conditions only change at controller *events* (enqueue, issue,
//! completion, priority change), so the accounting is lazy: state is
//! advanced over the interval since the previous event instead of every
//! cycle, keeping the per-cycle simulation cost near zero.
//!
//! Per-request interference is lazier still: within an event interval a
//! bank has one fixed owner, so every resident request of that bank with
//! a different application accrues the *same* charge. [`advance`] therefore
//! only bumps two cumulative counters per bank — total busy-owner cycles,
//! and the per-application share of them — in `O(banks)` instead of
//! walking the whole read queue. A request snapshots the counters at
//! enqueue ([`interference_snapshot`]) and the controller materialises its
//! interference at issue time ([`interference_since`]) as
//! `(total now - total at enqueue) - (own-app share now - at enqueue)`,
//! which equals the old per-request accrual cycle for cycle.
//!
//! [`advance`]: ChannelAccounting::advance
//! [`interference_snapshot`]: ChannelAccounting::interference_snapshot
//! [`interference_since`]: ChannelAccounting::interference_since

use asm_simcore::{AppId, Cycle};

use crate::bank::Bank;

/// A request's view of the interference counters at enqueue time; handed
/// back to [`ChannelAccounting::interference_since`] at issue time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterferenceSnapshot {
    /// `bank_charge[bank]` at snapshot time.
    total: Cycle,
    /// The requesting application's share of it at snapshot time.
    own: Cycle,
    /// Busy-kind split of `total` at snapshot time (attribution only;
    /// zeros when attribution is off). Indexed by the bank busy-kind
    /// taxonomy: 0 = write, 1 = read row hit, 2 = read row miss.
    cause_total: [Cycle; 3],
    /// Busy-kind split of `own` at snapshot time (attribution only).
    cause_own: [Cycle; 3],
}

impl InterferenceSnapshot {
    /// Serializes the snapshot's counters for checkpointing.
    pub fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.u64(self.total);
        w.u64(self.own);
        for k in 0..3 {
            w.u64(self.cause_total[k]);
            w.u64(self.cause_own[k]);
        }
    }

    /// Reads a snapshot previously written by
    /// [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Propagates reader errors.
    pub fn restore_from(
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<Self, asm_simcore::persist::PersistError> {
        let mut snap = InterferenceSnapshot {
            total: r.u64()?,
            own: r.u64()?,
            cause_total: [0; 3],
            cause_own: [0; 3],
        };
        for k in 0..3 {
            snap.cause_total[k] = r.u64()?;
            snap.cause_own[k] = r.u64()?;
        }
        Ok(snap)
    }
}

/// Lazy per-channel accounting state.
#[derive(Debug, Clone)]
pub struct ChannelAccounting {
    last_event: Cycle,
    app_count: usize,
    /// Cumulative cycles each bank spent busy on an owned request,
    /// indexed by bank. Sized lazily on the first [`advance`](Self::advance)
    /// (the channel's bank count is not known at construction).
    bank_charge: Vec<Cycle>,
    /// The per-application share of `bank_charge`, flattened as
    /// `bank * app_count + app`.
    bank_charge_by_app: Vec<Cycle>,
    /// Outstanding (queued or in-flight) reads per application.
    outstanding_reads: Vec<u64>,
    /// Reads waiting in the request buffer (not yet issued to a bank) per
    /// application — the "outstanding request" of the §4.3 queueing-cycle
    /// definition (a request already in service at its bank is not being
    /// queued behind anyone).
    waiting_reads: Vec<u64>,
    /// Accumulated §4.3 queueing cycles per application (fractional: a
    /// waiting cycle during which some of the application's own requests
    /// are still in service is only partially lost).
    queueing_cycles: Vec<f64>,
    priority_app: Option<AppId>,
    last_issued_app: Option<AppId>,
    /// Whether ground-truth attribution counters are maintained. Off by
    /// default; when off, none of the fields below are touched and the
    /// simulation trajectory is bit-identical to a build without them.
    attrib: bool,
    /// Busy-kind split of `bank_charge`, flattened as `bank * 3 + kind`
    /// (kind: 0 = write, 1 = read row hit, 2 = read row miss).
    cause_total: Vec<Cycle>,
    /// Busy-kind split of `bank_charge_by_app`, flattened as
    /// `(bank * app_count + app) * 3 + kind`.
    cause_own: Vec<Cycle>,
    /// Demand reads currently waiting (enqueued, not yet issued) per bank
    /// and application, flattened as `bank * app_count + app`.
    bank_waiting: Vec<u64>,
    /// Cumulative request-weighted blame: for each victim × offender ×
    /// busy-kind, the interference cycles the offender's bank occupancy
    /// cost the victim's waiting demand reads, flattened as
    /// `(victim * app_count + offender) * 3 + kind`. Reconciles exactly
    /// with the per-request snapshots (see `attrib_reconciles` test).
    blame: Vec<Cycle>,
    /// Per-victim demand-read interference materialized at issue time —
    /// the already-settled half of the reconciliation identity.
    materialized: Vec<Cycle>,
}

impl ChannelAccounting {
    /// Creates accounting state for `app_count` applications.
    #[must_use]
    pub fn new(app_count: usize) -> Self {
        ChannelAccounting {
            last_event: 0,
            app_count,
            bank_charge: Vec::new(),
            bank_charge_by_app: Vec::new(),
            outstanding_reads: vec![0; app_count],
            waiting_reads: vec![0; app_count],
            queueing_cycles: vec![0.0; app_count],
            priority_app: None,
            last_issued_app: None,
            attrib: false,
            cause_total: Vec::new(),
            cause_own: Vec::new(),
            bank_waiting: Vec::new(),
            blame: Vec::new(),
            materialized: Vec::new(),
        }
    }

    /// Turns on ground-truth attribution counters. Call once, before any
    /// simulation; the per-bank vectors grow lazily alongside
    /// `bank_charge`.
    pub fn enable_attrib(&mut self) {
        self.attrib = true;
        self.blame = vec![0; self.app_count * self.app_count * 3];
        self.materialized = vec![0; self.app_count];
    }

    /// Whether attribution counters are being maintained.
    #[must_use]
    pub fn attrib_enabled(&self) -> bool {
        self.attrib
    }

    fn ensure_bank_capacity(&mut self, banks: usize) {
        if self.bank_waiting.len() < banks * self.app_count {
            self.bank_waiting.resize(banks * self.app_count, 0);
            self.cause_total.resize(banks * 3, 0);
            self.cause_own.resize(banks * self.app_count * 3, 0);
        }
    }

    /// Advances accounting to `now`, accruing per-bank interference
    /// charges and queueing cycles for the priority application.
    ///
    /// Must be called *before* any state mutation at an event so the
    /// interval is charged under the pre-event state.
    pub fn advance(&mut self, now: Cycle, banks: &[Bank]) {
        if now <= self.last_event {
            return;
        }
        let span_start = self.last_event;

        // Per-bank interference charge: the bank's owner is fixed until its
        // ready_at, and issues (owner changes) are themselves events, so
        // within this interval each bank has at most one owner — every
        // resident request of another application accrues the same charge,
        // so it is recorded once per bank, not once per request.
        if self.bank_charge.len() < banks.len() {
            self.bank_charge.resize(banks.len(), 0);
            self.bank_charge_by_app.resize(banks.len() * self.app_count, 0);
        }
        if self.attrib {
            self.ensure_bank_capacity(banks.len());
        }
        for (b, bank) in banks.iter().enumerate() {
            if let Some(owner) = bank.busy_owner(span_start) {
                let busy_until = bank.ready_at().min(now);
                let charge = busy_until.saturating_sub(span_start);
                self.bank_charge[b] += charge;
                self.bank_charge_by_app[b * self.app_count + owner.index()] += charge;
                if self.attrib && charge > 0 {
                    // Cause split: the same charge, keyed by what the bank
                    // was busy with — and request-weighted central blame,
                    // mirroring the per-request snapshot accrual (each of a
                    // victim's waiting demand reads accrues this charge).
                    let o = owner.index();
                    let k = bank.busy_kind_index();
                    self.cause_total[b * 3 + k] += charge;
                    self.cause_own[(b * self.app_count + o) * 3 + k] += charge;
                    for v in 0..self.app_count {
                        if v != o {
                            let waiting = self.bank_waiting[b * self.app_count + v];
                            if waiting > 0 {
                                self.blame[(v * self.app_count + o) * 3 + k] +=
                                    charge * waiting;
                            }
                        }
                    }
                }
            }
        }

        // §4.3 queueing cycles for the priority application: it has a
        // request *waiting* and the previous command issued went to another
        // application. A cycle during which some of the application's own
        // requests are still in service is only partially lost (its
        // memory-level parallelism keeps making progress), so the cycle is
        // weighted by the stalled fraction of its outstanding requests.
        if let Some(p) = self.priority_app {
            let idx = p.index();
            if idx < self.waiting_reads.len()
                && self.waiting_reads[idx] > 0
                && self.last_issued_app != Some(p)
            {
                // asm-lint: allow(R5): request counts are bounded by the
                // request-buffer size (tens), exactly representable in f64
                let waiting = self.waiting_reads[idx] as f64;
                // asm-lint: allow(R5): same bound as `waiting` above
                let outstanding = self.outstanding_reads[idx].max(1) as f64;
                let stalled_fraction = (waiting / outstanding).min(1.0);
                // Squaring biases toward "mostly stalled" situations;
                // a single waiting request among many in flight is almost
                // free, while a fully stalled queue costs the whole cycle.
                let weight = stalled_fraction * stalled_fraction;
                // asm-lint: allow(R5): span lengths are far below 2^53, so
                // the u64→f64 conversion here is exact
                self.queueing_cycles[idx] += weight * (now - span_start) as f64;
            }
        }

        self.last_event = now;
    }

    /// Snapshots the interference counters for a request of `app` entering
    /// `bank`. Call after [`advance`](Self::advance) so the counters are
    /// current. The counters are sized lazily, so an unseen bank reads 0 —
    /// correct, since nothing has been charged to it yet.
    #[must_use]
    pub fn interference_snapshot(&self, bank: usize, app: AppId) -> InterferenceSnapshot {
        let mut snap = InterferenceSnapshot {
            total: self.bank_charge.get(bank).copied().unwrap_or(0),
            own: self
                .bank_charge_by_app
                .get(bank * self.app_count + app.index())
                .copied()
                .unwrap_or(0),
            cause_total: [0; 3],
            cause_own: [0; 3],
        };
        if self.attrib {
            for k in 0..3 {
                snap.cause_total[k] = self.cause_total.get(bank * 3 + k).copied().unwrap_or(0);
                snap.cause_own[k] = self
                    .cause_own
                    .get((bank * self.app_count + app.index()) * 3 + k)
                    .copied()
                    .unwrap_or(0);
            }
        }
        snap
    }

    /// Interference cycles a request of `app` in `bank` accrued since
    /// `snap` was taken: the bank's busy-owner cycles over the request's
    /// residency, minus the share during which the owner was the request's
    /// own application. Call after [`advance`](Self::advance).
    #[must_use]
    pub fn interference_since(&self, snap: InterferenceSnapshot, bank: usize, app: AppId) -> Cycle {
        let total = self.bank_charge.get(bank).copied().unwrap_or(0) - snap.total;
        let own = self
            .bank_charge_by_app
            .get(bank * self.app_count + app.index())
            .copied()
            .unwrap_or(0)
            - snap.own;
        total - own
    }

    /// Busy-kind split of [`interference_since`](Self::interference_since)
    /// for the same request: how much of the interference accrued while
    /// the bank was busy with a write / a foreign row hit / a foreign row
    /// miss. Zeros when attribution is off; the three parts sum to at most
    /// the undifferentiated interference (exactly, when both snapshots
    /// were taken with attribution on).
    #[must_use]
    pub fn interference_causes_since(
        &self,
        snap: InterferenceSnapshot,
        bank: usize,
        app: AppId,
    ) -> [Cycle; 3] {
        if !self.attrib {
            return [0; 3];
        }
        let mut out = [0; 3];
        for (k, slot) in out.iter_mut().enumerate() {
            let total = self.cause_total.get(bank * 3 + k).copied().unwrap_or(0)
                - snap.cause_total[k];
            let own = self
                .cause_own
                .get((bank * self.app_count + app.index()) * 3 + k)
                .copied()
                .unwrap_or(0)
                - snap.cause_own[k];
            *slot = total - own;
        }
        out
    }

    /// Records a demand read's interference being materialized at issue
    /// time (the settled half of the blame reconciliation identity).
    pub fn note_materialized(&mut self, app: AppId, cycles: Cycle) {
        if self.attrib {
            self.materialized[app.index()] += cycles;
        }
    }

    /// Records a read entering the request buffer of `bank`.
    pub fn on_read_enqueued(&mut self, app: AppId, bank: usize) {
        self.outstanding_reads[app.index()] += 1;
        self.waiting_reads[app.index()] += 1;
        if self.attrib {
            self.ensure_bank_capacity(bank + 1);
            self.bank_waiting[bank * self.app_count + app.index()] += 1;
        }
    }

    /// Records a command issue for `app` at `bank`; `is_read`
    /// distinguishes demand reads (which leave the waiting pool) from
    /// prefetches and writebacks.
    pub fn on_issue(&mut self, app: AppId, is_read: bool, bank: usize) {
        self.last_issued_app = Some(app);
        if is_read {
            let w = &mut self.waiting_reads[app.index()];
            debug_assert!(*w > 0, "read issue without waiting read");
            *w = w.saturating_sub(1);
            if self.attrib {
                self.ensure_bank_capacity(bank + 1);
                let bw = &mut self.bank_waiting[bank * self.app_count + app.index()];
                debug_assert!(*bw > 0, "bank issue without waiting read");
                *bw = bw.saturating_sub(1);
            }
        }
    }

    /// Records a read completion for `app`.
    pub fn on_read_completed(&mut self, app: AppId) {
        let c = &mut self.outstanding_reads[app.index()];
        debug_assert!(*c > 0, "completion without outstanding read");
        *c = c.saturating_sub(1);
    }

    /// Changes the highest-priority application. Call
    /// [`advance`](Self::advance) first.
    pub fn set_priority_app(&mut self, app: Option<AppId>) {
        self.priority_app = app;
    }

    /// The currently prioritised application.
    #[must_use]
    pub fn priority_app(&self) -> Option<AppId> {
        self.priority_app
    }

    /// Accumulated queueing cycles for `app` (rounded down).
    #[must_use]
    pub fn queueing_cycles(&self, app: AppId) -> Cycle {
        self.queueing_cycles
            .get(app.index())
            .copied()
            // asm-lint: allow(R5): rounding down to whole cycles is the
            // documented contract of this accessor; values are non-negative
            .unwrap_or(0.0) as Cycle
    }

    /// Clears all queueing-cycle counters (done at quantum boundaries).
    pub fn reset_queueing_cycles(&mut self) {
        self.queueing_cycles.fill(0.0);
    }

    /// Outstanding reads for `app` in this channel.
    #[must_use]
    pub fn outstanding_reads(&self, app: AppId) -> u64 {
        self.outstanding_reads
            .get(app.index())
            .copied()
            .unwrap_or(0)
    }

    /// Cumulative victim × offender × busy-kind blame counters (empty when
    /// attribution is off). Flattened `(victim * app_count + offender) * 3
    /// + kind`; the counters are lazily advanced, so a reader wanting
    /// totals up to `now` must have called [`advance`](Self::advance) —
    /// or, like the quantum finalizer, tolerate the (deterministic) smear
    /// of the not-yet-accrued tail into the next reading.
    #[must_use]
    pub fn blame(&self) -> &[Cycle] {
        &self.blame
    }

    /// Per-victim demand-read interference already materialized at issue.
    #[must_use]
    pub fn materialized(&self) -> &[Cycle] {
        &self.materialized
    }

    /// Serializes the accounting counters for checkpointing. `app_count`
    /// is structural; the lazily-sized per-bank charge vectors keep
    /// whatever length they have grown to.
    pub fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.u64(self.last_event);
        w.u64_slice(&self.bank_charge);
        w.u64_slice(&self.bank_charge_by_app);
        w.u64_slice(&self.outstanding_reads);
        w.u64_slice(&self.waiting_reads);
        w.f64_slice(&self.queueing_cycles);
        // asm-lint: allow(R5): AppId slot indices widen losslessly to u64
        w.opt_u64(self.priority_app.map(|a| a.index() as u64));
        // asm-lint: allow(R5): AppId slot indices widen losslessly to u64
        w.opt_u64(self.last_issued_app.map(|a| a.index() as u64));
        w.bool(self.attrib);
        w.u64_slice(&self.cause_total);
        w.u64_slice(&self.cause_own);
        w.u64_slice(&self.bank_waiting);
        w.u64_slice(&self.blame);
        w.u64_slice(&self.materialized);
    }

    /// Restores counters captured by [`save_state`](Self::save_state) into
    /// accounting state built for the same application count.
    ///
    /// # Errors
    ///
    /// Propagates reader errors; `Corrupt` when any vector length or
    /// application index disagrees with this state's structure.
    pub fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        let corrupt = |what: &str| PersistError::Corrupt(what.to_owned());
        let last_event = r.u64()?;
        let bank_charge = r.u64_vec()?;
        let bank_charge_by_app = r.u64_vec()?;
        if bank_charge_by_app.len() != bank_charge.len() * self.app_count {
            return Err(corrupt("bank-charge vector shape mismatch"));
        }
        let outstanding_reads = r.u64_vec()?;
        let waiting_reads = r.u64_vec()?;
        let queueing_cycles = r.f64_vec()?;
        if outstanding_reads.len() != self.app_count
            || waiting_reads.len() != self.app_count
            || queueing_cycles.len() != self.app_count
        {
            return Err(corrupt("per-application counter length mismatch"));
        }
        let app_count = self.app_count;
        let read_app = |r: &mut asm_simcore::persist::StateReader<'_>| {
            let idx = r.opt_u64()?;
            idx.map(|i| {
                usize::try_from(i)
                    .ok()
                    .filter(|&i| i < app_count)
                    .map(AppId::new)
                    .ok_or_else(|| corrupt("application index out of range"))
            })
            .transpose()
        };
        let priority_app = read_app(r)?;
        let last_issued_app = read_app(r)?;
        if r.bool()? != self.attrib {
            return Err(corrupt("attribution flag mismatch"));
        }
        let cause_total = r.u64_vec()?;
        let cause_own = r.u64_vec()?;
        let bank_waiting = r.u64_vec()?;
        let blame = r.u64_vec()?;
        let materialized = r.u64_vec()?;
        if cause_total.len() % 3 != 0
            || cause_own.len() != cause_total.len() * app_count
            || bank_waiting.len() * 3 != cause_total.len() * app_count
            || !(blame.len() == app_count * app_count * 3 || blame.is_empty())
            || !(materialized.len() == app_count || materialized.is_empty())
        {
            return Err(corrupt("attribution counter shape mismatch"));
        }
        self.cause_total = cause_total;
        self.cause_own = cause_own;
        self.bank_waiting = bank_waiting;
        self.blame = blame;
        self.materialized = materialized;
        self.last_event = last_event;
        self.bank_charge = bank_charge;
        self.bank_charge_by_app = bank_charge_by_app;
        self.outstanding_reads = outstanding_reads;
        self.waiting_reads = waiting_reads;
        self.queueing_cycles = queueing_cycles;
        self.priority_app = priority_app;
        self.last_issued_app = last_issued_app;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::DramTiming;

    #[test]
    fn interference_accrues_only_against_other_apps() {
        let timing = DramTiming::ddr3_1333(1);
        let mut banks = vec![Bank::new(); 2];
        // Bank 0 busy with app1 from cycle 0.
        let (_, finish) = banks[0].schedule(&timing, 0, 5, AppId::new(1), false);
        let mut acct = ChannelAccounting::new(2);
        // Snapshots taken at cycle 0, before any charge.
        let victim = acct.interference_snapshot(0, AppId::new(0));
        let owner = acct.interference_snapshot(0, AppId::new(1));
        let idle = acct.interference_snapshot(1, AppId::new(0));
        acct.advance(10, &banks);
        // app0 waiting behind app1: interferes.
        assert_eq!(acct.interference_since(victim, 0, AppId::new(0)), 10.min(finish));
        // app1 waiting behind itself: no interference.
        assert_eq!(acct.interference_since(owner, 0, AppId::new(1)), 0);
        // Idle bank: no interference.
        assert_eq!(acct.interference_since(idle, 1, AppId::new(0)), 0);
    }

    #[test]
    fn interference_stops_when_bank_frees() {
        let timing = DramTiming::ddr3_1333(1);
        let mut banks = vec![Bank::new()];
        let (_, finish) = banks[0].schedule(&timing, 0, 5, AppId::new(1), false);
        let mut acct = ChannelAccounting::new(2);
        let snap = acct.interference_snapshot(0, AppId::new(0));
        acct.advance(finish + 100, &banks);
        assert_eq!(acct.interference_since(snap, 0, AppId::new(0)), finish);
    }

    #[test]
    fn late_snapshot_excludes_earlier_charges() {
        let timing = DramTiming::ddr3_1333(1);
        let mut banks = vec![Bank::new()];
        let (_, finish) = banks[0].schedule(&timing, 0, 5, AppId::new(1), false);
        let mut acct = ChannelAccounting::new(2);
        // A request arriving at cycle 10 must not be charged cycles 0-10.
        acct.advance(10, &banks);
        let snap = acct.interference_snapshot(0, AppId::new(0));
        acct.advance(finish + 100, &banks);
        assert_eq!(
            acct.interference_since(snap, 0, AppId::new(0)),
            finish - 10.min(finish)
        );
    }

    #[test]
    fn queueing_cycles_require_outstanding_and_foreign_last_issue() {
        let banks = vec![Bank::new()];
        let mut acct = ChannelAccounting::new(2);
        let p = AppId::new(0);
        acct.set_priority_app(Some(p));

        // No outstanding request: no queueing cycles.
        acct.advance(10, &banks);
        assert_eq!(acct.queueing_cycles(p), 0);

        // Outstanding, last issue by another app: accrues.
        acct.on_read_enqueued(p, 0);
        acct.on_issue(AppId::new(1), false, 0);
        acct.advance(30, &banks);
        assert_eq!(acct.queueing_cycles(p), 20);

        // Last issue by the priority app itself: stops accruing.
        acct.on_issue(p, true, 0);
        acct.advance(50, &banks);
        assert_eq!(acct.queueing_cycles(p), 20);
    }

    #[test]
    fn reset_clears_queueing() {
        let banks = vec![Bank::new()];
        let mut acct = ChannelAccounting::new(1);
        let p = AppId::new(0);
        acct.set_priority_app(Some(p));
        acct.on_read_enqueued(p, 0);
        acct.on_issue(AppId::new(0), true, 0);
        acct.set_priority_app(Some(p));
        acct.advance(10, &banks);
        acct.reset_queueing_cycles();
        assert_eq!(acct.queueing_cycles(p), 0);
    }

    #[test]
    fn advance_is_idempotent_at_same_cycle() {
        let banks = vec![Bank::new()];
        let mut acct = ChannelAccounting::new(1);
        acct.set_priority_app(Some(AppId::new(0)));
        acct.on_read_enqueued(AppId::new(0), 0);
        acct.on_issue(AppId::new(0), true, 0);
        acct.advance(10, &banks);
        let before = acct.queueing_cycles(AppId::new(0));
        acct.advance(10, &banks);
        assert_eq!(acct.queueing_cycles(AppId::new(0)), before);
    }
}
