//! Interference and queueing-cycle accounting.
//!
//! Two counters feed the slowdown estimators:
//!
//! 1. **Per-request interference cycles** (for FST/PTCA): cycles a queued
//!    read spends waiting while its bank services *another* application's
//!    request. Reported in each [`crate::Completion`].
//! 2. **Queueing cycles** (§4.3, for ASM/MISE): "a cycle is deemed a
//!    queueing cycle if a request from the highest-priority application is
//!    outstanding and the previous command issued by the memory controller
//!    was from another application."
//!
//! Both conditions only change at controller *events* (enqueue, issue,
//! completion, priority change), so the accounting is lazy: state is
//! advanced over the interval since the previous event instead of every
//! cycle, keeping the per-cycle simulation cost near zero.

use asm_simcore::{AppId, Cycle};

use crate::bank::Bank;
use crate::sched::QueuedRequest;

/// Lazy per-channel accounting state.
#[derive(Debug, Clone)]
pub struct ChannelAccounting {
    last_event: Cycle,
    /// Outstanding (queued or in-flight) reads per application.
    outstanding_reads: Vec<u64>,
    /// Reads waiting in the request buffer (not yet issued to a bank) per
    /// application — the "outstanding request" of the §4.3 queueing-cycle
    /// definition (a request already in service at its bank is not being
    /// queued behind anyone).
    waiting_reads: Vec<u64>,
    /// Accumulated §4.3 queueing cycles per application (fractional: a
    /// waiting cycle during which some of the application's own requests
    /// are still in service is only partially lost).
    queueing_cycles: Vec<f64>,
    priority_app: Option<AppId>,
    last_issued_app: Option<AppId>,
}

impl ChannelAccounting {
    /// Creates accounting state for `app_count` applications.
    #[must_use]
    pub fn new(app_count: usize) -> Self {
        ChannelAccounting {
            last_event: 0,
            outstanding_reads: vec![0; app_count],
            waiting_reads: vec![0; app_count],
            queueing_cycles: vec![0.0; app_count],
            priority_app: None,
            last_issued_app: None,
        }
    }

    /// Advances accounting to `now`, accruing per-request interference into
    /// `queue` entries and queueing cycles for the priority application.
    ///
    /// Must be called *before* any state mutation at an event so the
    /// interval is charged under the pre-event state.
    pub fn advance(&mut self, now: Cycle, queue: &mut [QueuedRequest], banks: &[Bank]) {
        if now <= self.last_event {
            return;
        }
        let span_start = self.last_event;

        // Per-request interference: the bank's owner is fixed until its
        // ready_at, and issues (owner changes) are themselves events, so
        // within this interval each bank has at most one owner.
        for q in queue.iter_mut() {
            let bank = &banks[q.loc.bank];
            if let Some(owner) = bank.busy_owner(span_start) {
                if owner != q.req.app {
                    let busy_until = bank.ready_at().min(now);
                    q.interference += busy_until.saturating_sub(span_start);
                }
            }
        }

        // §4.3 queueing cycles for the priority application: it has a
        // request *waiting* and the previous command issued went to another
        // application. A cycle during which some of the application's own
        // requests are still in service is only partially lost (its
        // memory-level parallelism keeps making progress), so the cycle is
        // weighted by the stalled fraction of its outstanding requests.
        if let Some(p) = self.priority_app {
            let idx = p.index();
            if idx < self.waiting_reads.len()
                && self.waiting_reads[idx] > 0
                && self.last_issued_app != Some(p)
            {
                // asm-lint: allow(R5): request counts are bounded by the
                // request-buffer size (tens), exactly representable in f64
                let waiting = self.waiting_reads[idx] as f64;
                // asm-lint: allow(R5): same bound as `waiting` above
                let outstanding = self.outstanding_reads[idx].max(1) as f64;
                let stalled_fraction = (waiting / outstanding).min(1.0);
                // Squaring biases toward "mostly stalled" situations;
                // a single waiting request among many in flight is almost
                // free, while a fully stalled queue costs the whole cycle.
                let weight = stalled_fraction * stalled_fraction;
                // asm-lint: allow(R5): span lengths are far below 2^53, so
                // the u64→f64 conversion here is exact
                self.queueing_cycles[idx] += weight * (now - span_start) as f64;
            }
        }

        self.last_event = now;
    }

    /// Records a read entering the request buffer.
    pub fn on_read_enqueued(&mut self, app: AppId) {
        self.outstanding_reads[app.index()] += 1;
        self.waiting_reads[app.index()] += 1;
    }

    /// Records a command issue for `app`; `is_read` distinguishes reads
    /// (which leave the waiting pool) from writebacks.
    pub fn on_issue(&mut self, app: AppId, is_read: bool) {
        self.last_issued_app = Some(app);
        if is_read {
            let w = &mut self.waiting_reads[app.index()];
            debug_assert!(*w > 0, "read issue without waiting read");
            *w = w.saturating_sub(1);
        }
    }

    /// Records a read completion for `app`.
    pub fn on_read_completed(&mut self, app: AppId) {
        let c = &mut self.outstanding_reads[app.index()];
        debug_assert!(*c > 0, "completion without outstanding read");
        *c = c.saturating_sub(1);
    }

    /// Changes the highest-priority application. Call
    /// [`advance`](Self::advance) first.
    pub fn set_priority_app(&mut self, app: Option<AppId>) {
        self.priority_app = app;
    }

    /// The currently prioritised application.
    #[must_use]
    pub fn priority_app(&self) -> Option<AppId> {
        self.priority_app
    }

    /// Accumulated queueing cycles for `app` (rounded down).
    #[must_use]
    pub fn queueing_cycles(&self, app: AppId) -> Cycle {
        self.queueing_cycles
            .get(app.index())
            .copied()
            // asm-lint: allow(R5): rounding down to whole cycles is the
            // documented contract of this accessor; values are non-negative
            .unwrap_or(0.0) as Cycle
    }

    /// Clears all queueing-cycle counters (done at quantum boundaries).
    pub fn reset_queueing_cycles(&mut self) {
        self.queueing_cycles.fill(0.0);
    }

    /// Outstanding reads for `app` in this channel.
    #[must_use]
    pub fn outstanding_reads(&self, app: AppId) -> u64 {
        self.outstanding_reads
            .get(app.index())
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Loc;
    use crate::request::MemRequest;
    use crate::timing::DramTiming;
    use asm_simcore::LineAddr;

    fn queued_at_bank(app: usize, bank: usize) -> QueuedRequest {
        QueuedRequest {
            req: MemRequest::read(0, LineAddr::new(0), AppId::new(app), 0),
            loc: Loc {
                channel: 0,
                bank,
                row: 0,
                col: 0,
            },
            marked: false,
            interference: 0,
        }
    }

    #[test]
    fn interference_accrues_only_against_other_apps() {
        let timing = DramTiming::ddr3_1333(1);
        let mut banks = vec![Bank::new(); 2];
        // Bank 0 busy with app1 from cycle 0.
        let (_, finish) = banks[0].schedule(&timing, 0, 5, AppId::new(1), false);
        let mut acct = ChannelAccounting::new(2);
        let mut queue = vec![
            queued_at_bank(0, 0), // app0 waiting behind app1: interferes
            queued_at_bank(1, 0), // app1 waiting behind itself: no interference
            queued_at_bank(0, 1), // idle bank: no interference
        ];
        acct.advance(10, &mut queue, &banks);
        assert_eq!(queue[0].interference, 10.min(finish));
        assert_eq!(queue[1].interference, 0);
        assert_eq!(queue[2].interference, 0);
    }

    #[test]
    fn interference_stops_when_bank_frees() {
        let timing = DramTiming::ddr3_1333(1);
        let mut banks = vec![Bank::new()];
        let (_, finish) = banks[0].schedule(&timing, 0, 5, AppId::new(1), false);
        let mut acct = ChannelAccounting::new(2);
        let mut queue = vec![queued_at_bank(0, 0)];
        acct.advance(finish + 100, &mut queue, &banks);
        assert_eq!(queue[0].interference, finish);
    }

    #[test]
    fn queueing_cycles_require_outstanding_and_foreign_last_issue() {
        let banks = vec![Bank::new()];
        let mut acct = ChannelAccounting::new(2);
        let p = AppId::new(0);
        acct.set_priority_app(Some(p));

        // No outstanding request: no queueing cycles.
        acct.advance(10, &mut [], &banks);
        assert_eq!(acct.queueing_cycles(p), 0);

        // Outstanding, last issue by another app: accrues.
        acct.on_read_enqueued(p);
        acct.on_issue(AppId::new(1), false);
        acct.advance(30, &mut [], &banks);
        assert_eq!(acct.queueing_cycles(p), 20);

        // Last issue by the priority app itself: stops accruing.
        acct.on_issue(p, true);
        acct.advance(50, &mut [], &banks);
        assert_eq!(acct.queueing_cycles(p), 20);
    }

    #[test]
    fn reset_clears_queueing() {
        let banks = vec![Bank::new()];
        let mut acct = ChannelAccounting::new(1);
        let p = AppId::new(0);
        acct.set_priority_app(Some(p));
        acct.on_read_enqueued(p);
        acct.on_issue(AppId::new(0), true);
        acct.set_priority_app(Some(p));
        acct.advance(10, &mut [], &banks);
        acct.reset_queueing_cycles();
        assert_eq!(acct.queueing_cycles(p), 0);
    }

    #[test]
    fn advance_is_idempotent_at_same_cycle() {
        let banks = vec![Bank::new()];
        let mut acct = ChannelAccounting::new(1);
        acct.set_priority_app(Some(AppId::new(0)));
        acct.on_read_enqueued(AppId::new(0));
        acct.on_issue(AppId::new(0), true);
        acct.advance(10, &mut [], &banks);
        let before = acct.queueing_cycles(AppId::new(0));
        acct.advance(10, &mut [], &banks);
        assert_eq!(acct.queueing_cycles(AppId::new(0)), before);
    }
}
