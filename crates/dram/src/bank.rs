//! Per-bank state: open row, readiness, and current service owner.

use asm_simcore::{AppId, Cycle};

use crate::timing::DramTiming;

/// Row-buffer management policy.
///
/// Open-page (the Table 2 baseline, required by FR-FCFS's row-hit-first
/// rule) leaves the row open after an access; closed-page auto-precharges,
/// trading row hits for faster conflict handling — useful in many-core
/// systems with low locality (cf. Minimalist Open-Page \[28\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowPolicy {
    /// Keep the row open after each access (row hits possible).
    #[default]
    Open,
    /// Auto-precharge after each access (every access pays tRCD, none pay
    /// tRP).
    Closed,
}

/// The row-buffer outcome of scheduling a request at a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The open row matched — column access only.
    Hit,
    /// The bank was precharged — activate then access.
    Closed,
    /// A different row was open — precharge, activate, access.
    Conflict,
}

/// One DRAM bank's timing state.
///
/// The model is request-granular: scheduling a request reserves the bank
/// until the request's data burst completes; the latency paid depends on the
/// row-buffer outcome. tRAS is satisfied structurally (the shortest
/// activate-to-completion path, tRCD + CL + burst = 24 bus cycles, equals
/// tRAS for DDR3-1333).
#[derive(Debug, Clone, Copy)]
pub struct Bank {
    open_row: Option<u64>,
    ready_at: Cycle,
    /// Application whose request the bank is currently servicing (until
    /// `ready_at`).
    owner: Option<AppId>,
    /// What kind of access the current reservation is (attribution
    /// taxonomy: 0 = write, 1 = read row hit, 2 = read row miss). Never
    /// read by scheduling decisions — only by the interference cause
    /// accounting.
    busy_kind: u8,
    /// Application that (re)opened the currently open row, if any. Lets
    /// the attribution layer charge a row conflict to the co-runner that
    /// replaced the victim's row. Cleared on refresh and under the
    /// closed-page policy.
    row_opener: Option<AppId>,
}

impl Bank {
    /// A precharged, idle bank.
    #[must_use]
    pub fn new() -> Self {
        Bank {
            open_row: None,
            ready_at: 0,
            owner: None,
            busy_kind: 2,
            row_opener: None,
        }
    }

    /// Busy-kind index of the current reservation (0 = write, 1 = read row
    /// hit, 2 = read row miss) — the attribution taxonomy's cause axis.
    #[must_use]
    pub fn busy_kind_index(&self) -> usize {
        self.busy_kind as usize
    }

    /// Application that (re)opened the currently open row, if known.
    #[must_use]
    pub fn row_opener(&self) -> Option<AppId> {
        self.row_opener
    }

    /// The row currently open, if any.
    #[must_use]
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Earliest cycle at which the bank can accept another request.
    #[must_use]
    pub fn ready_at(&self) -> Cycle {
        self.ready_at
    }

    /// Whether the bank is busy at `now`.
    #[must_use]
    pub fn busy(&self, now: Cycle) -> bool {
        self.ready_at > now
    }

    /// The application being serviced if the bank is busy at `now`.
    #[must_use]
    pub fn busy_owner(&self, now: Cycle) -> Option<AppId> {
        if self.busy(now) {
            self.owner
        } else {
            None
        }
    }

    /// Classifies the row-buffer outcome a request to `row` would see.
    #[must_use]
    pub fn classify(&self, row: u64) -> RowOutcome {
        match self.open_row {
            Some(open) if open == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Closed,
        }
    }

    /// Whether a request to `row` needs an activate (closed or conflict).
    #[must_use]
    pub fn needs_activate(&self, row: u64) -> bool {
        !matches!(self.classify(row), RowOutcome::Hit)
    }

    /// Reserves the bank for a request to `row` by `app`, starting no
    /// earlier than `start`. Returns `(outcome, data_finish)`: the cycle at
    /// which the data burst completes. The caller must already have clamped
    /// `start` to [`ready_at`](Self::ready_at) and to activation-window
    /// constraints.
    pub fn schedule(
        &mut self,
        timing: &DramTiming,
        start: Cycle,
        row: u64,
        app: AppId,
        is_write: bool,
    ) -> (RowOutcome, Cycle) {
        self.schedule_with_policy(timing, start, row, app, is_write, RowPolicy::Open)
    }

    /// Like [`schedule`](Self::schedule) with an explicit row policy.
    pub fn schedule_with_policy(
        &mut self,
        timing: &DramTiming,
        start: Cycle,
        row: u64,
        app: AppId,
        is_write: bool,
        policy: RowPolicy,
    ) -> (RowOutcome, Cycle) {
        debug_assert!(start >= self.ready_at, "caller must respect bank readiness");
        let outcome = self.classify(row);
        let access = match outcome {
            RowOutcome::Hit => timing.row_hit_latency(),
            RowOutcome::Closed => timing.row_closed_latency(),
            RowOutcome::Conflict => timing.row_conflict_latency(),
        };
        let mut finish = start + access;
        if is_write {
            // Writes finish their burst then need tWR before the bank can
            // precharge; approximate by extending the reservation.
            finish += timing.twr;
        }
        match policy {
            RowPolicy::Open => {
                self.open_row = Some(row);
                if outcome != RowOutcome::Hit {
                    self.row_opener = Some(app);
                }
            }
            RowPolicy::Closed => {
                // Auto-precharge: the row closes with the access; the
                // precharge overlaps the tail of the reservation.
                self.open_row = None;
                self.row_opener = None;
            }
        }
        self.ready_at = finish;
        self.owner = Some(app);
        self.busy_kind = if is_write {
            0
        } else if outcome == RowOutcome::Hit {
            1
        } else {
            2
        };
        (outcome, finish)
    }

    /// Extends the bank's reservation to at least `until` (used when the
    /// data bus pushes a request's burst later than the bank itself would
    /// allow).
    pub fn extend_reservation(&mut self, until: Cycle) {
        self.ready_at = self.ready_at.max(until);
    }

    /// Blocks the bank for a refresh until `until`: the open row is closed
    /// and no application owns the busy period (refresh delay is
    /// application-neutral and not charged as interference).
    pub fn refresh_until(&mut self, until: Cycle) {
        self.ready_at = self.ready_at.max(until);
        self.open_row = None;
        self.owner = None;
        self.row_opener = None;
    }

    /// Serializes the bank's timing state for checkpointing.
    pub fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.opt_u64(self.open_row);
        w.u64(self.ready_at);
        w.opt_u64(self.owner.map(|a| a.index() as u64));
        w.u8(self.busy_kind);
        w.opt_u64(self.row_opener.map(|a| a.index() as u64));
    }

    /// Restores state captured by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Propagates reader errors; `Corrupt` when the owner index does not
    /// fit `app_count`.
    pub fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
        app_count: usize,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        self.open_row = r.opt_u64()?;
        self.ready_at = r.u64()?;
        self.owner = r
            .opt_u64()?
            .map(|i| {
                usize::try_from(i)
                    .ok()
                    .filter(|&i| i < app_count)
                    .map(AppId::new)
                    .ok_or_else(|| {
                        asm_simcore::persist::PersistError::Corrupt(
                            "bank owner index out of range".to_owned(),
                        )
                    })
            })
            .transpose()?;
        let kind = r.u8()?;
        if kind > 2 {
            return Err(asm_simcore::persist::PersistError::Corrupt(
                "bank busy-kind out of range".to_owned(),
            ));
        }
        self.busy_kind = kind;
        self.row_opener = r
            .opt_u64()?
            .map(|i| {
                usize::try_from(i)
                    .ok()
                    .filter(|&i| i < app_count)
                    .map(AppId::new)
                    .ok_or_else(|| {
                        asm_simcore::persist::PersistError::Corrupt(
                            "bank row-opener index out of range".to_owned(),
                        )
                    })
            })
            .transpose()?;
        Ok(())
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> DramTiming {
        DramTiming::ddr3_1333(1)
    }

    #[test]
    fn classification_transitions() {
        let t = timing();
        let mut b = Bank::new();
        assert_eq!(b.classify(5), RowOutcome::Closed);
        b.schedule(&t, 0, 5, AppId::new(0), false);
        assert_eq!(b.classify(5), RowOutcome::Hit);
        assert_eq!(b.classify(6), RowOutcome::Conflict);
    }

    #[test]
    fn hit_is_faster_than_conflict() {
        let t = timing();
        let mut b1 = Bank::new();
        b1.schedule(&t, 0, 5, AppId::new(0), false);
        let start = b1.ready_at();
        let (_, hit_finish) = b1.schedule(&t, start, 5, AppId::new(0), false);

        let mut b2 = Bank::new();
        b2.schedule(&t, 0, 5, AppId::new(0), false);
        let start2 = b2.ready_at();
        let (_, conflict_finish) = b2.schedule(&t, start2, 9, AppId::new(0), false);

        assert!(hit_finish < conflict_finish);
        assert_eq!(conflict_finish - hit_finish, t.trp + t.trcd);
    }

    #[test]
    fn busy_owner_tracks_service() {
        let t = timing();
        let mut b = Bank::new();
        let app = AppId::new(3);
        let (_, finish) = b.schedule(&t, 0, 1, app, false);
        assert_eq!(b.busy_owner(finish - 1), Some(app));
        assert_eq!(b.busy_owner(finish), None);
    }

    #[test]
    fn busy_kind_and_row_opener_track_the_taxonomy() {
        let t = timing();
        let mut b = Bank::new();
        let a0 = AppId::new(0);
        let a1 = AppId::new(1);
        // Closed bank: read row miss, opener recorded.
        b.schedule(&t, 0, 5, a0, false);
        assert_eq!(b.busy_kind_index(), 2);
        assert_eq!(b.row_opener(), Some(a0));
        // Row hit by another app: kind 1, opener unchanged.
        let s = b.ready_at();
        b.schedule(&t, s, 5, a1, false);
        assert_eq!(b.busy_kind_index(), 1);
        assert_eq!(b.row_opener(), Some(a0));
        // Conflict by a1: kind 2, a1 becomes the opener.
        let s = b.ready_at();
        b.schedule(&t, s, 9, a1, false);
        assert_eq!(b.busy_kind_index(), 2);
        assert_eq!(b.row_opener(), Some(a1));
        // Write: kind 0. Refresh clears the opener.
        let s = b.ready_at();
        b.schedule(&t, s, 9, a0, true);
        assert_eq!(b.busy_kind_index(), 0);
        b.refresh_until(b.ready_at() + 10);
        assert_eq!(b.row_opener(), None);
        // Closed-page policy never records an opener.
        let mut c = Bank::new();
        c.schedule_with_policy(&t, 0, 7, a1, false, RowPolicy::Closed);
        assert_eq!(c.row_opener(), None);
    }

    #[test]
    fn write_extends_reservation_by_twr() {
        let t = timing();
        let mut br = Bank::new();
        let (_, rf) = br.schedule(&t, 0, 1, AppId::new(0), false);
        let mut bw = Bank::new();
        let (_, wf) = bw.schedule(&t, 0, 1, AppId::new(0), true);
        assert_eq!(wf - rf, t.twr);
    }
}
