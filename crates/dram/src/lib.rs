#![warn(missing_docs)]
//! Cycle-level DDR3 main-memory model for the ASM reproduction.
//!
//! Models the main-memory system of Table 2: DDR3-1333 (10-10-10) with 1-4
//! channels, 1 rank per channel, 8 banks per rank, 8 KB rows, a 128-entry
//! request buffer per controller, and FR-FCFS scheduling — plus the
//! application-aware baseline schedulers the paper compares against (PARBS,
//! TCM) and the *epoch priority* hook ASM/MISE rely on (§3.2 step 1: give
//! one application's requests the highest priority at the memory controller
//! for short periods of time).
//!
//! The model is request-level with full per-bank timing: each bank tracks
//! its open row and readiness; scheduling a request pays the row-hit /
//! row-closed / row-conflict latency (CL / tRCD+CL / tRP+tRCD+CL plus the
//! data burst), data bursts serialise on the per-channel data bus, and
//! activations respect tRRD and tFAW. Refresh is not modelled (it is
//! application-independent and cancels out of slowdown ratios).
//!
//! The controller also performs the interference accounting the estimators
//! need:
//! - per-application *memory interference cycles* (cycles during which a
//!   queued request waits on a bank busy serving another application) for
//!   FST/PTCA-style per-request accounting, and
//! - the §4.3 *queueing cycle* counter for the epoch-priority application.
//!
//! # Examples
//!
//! ```
//! use asm_dram::{DramConfig, MemRequest, MemorySystem, SchedulerKind};
//! use asm_simcore::{AppId, LineAddr};
//!
//! let mut mem = MemorySystem::new(DramConfig::default(), SchedulerKind::FrFcfs, 2);
//! mem.enqueue(MemRequest::read(0, LineAddr::new(64), AppId::new(0), 0)).unwrap();
//! let mut done = Vec::new();
//! for now in 0..2_000 {
//!     mem.tick(now, &mut done);
//! }
//! assert_eq!(done.len(), 1);
//! ```

pub mod accounting;
pub mod audit;
pub mod bank;
pub mod bank_partition;
pub mod controller;
pub mod mapping;
pub mod request;
pub mod sched;
pub mod timing;

pub use audit::{AuditEvent, AuditViolation, TimingAudit};
pub use bank::RowPolicy;
pub use bank_partition::BankPartition;
pub use controller::{DramConfig, MemorySystem};
pub use mapping::{AddressMapping, Loc};
pub use request::{Completion, MemRequest};
pub use sched::SchedulerKind;
pub use timing::{DramTiming, RefreshConfig, TimingSpec};
