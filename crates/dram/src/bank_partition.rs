//! Application-aware DRAM bank partitioning.
//!
//! Bank partitioning (§8 cites [26, 35, 45, 71]) eliminates *bank-level*
//! interference by construction: each application's lines are remapped so
//! they only ever touch that application's banks, so no application can
//! close another's row buffers or occupy its banks. The cost is reduced
//! per-application bank-level parallelism. It is orthogonal to scheduling
//! and to ASM (which the paper notes can be combined with it).

use asm_simcore::AppId;

use crate::mapping::Loc;

/// An assignment of each channel's banks to applications.
///
/// # Examples
///
/// ```
/// use asm_dram::BankPartition;
/// // 8 banks split evenly between 2 applications.
/// let p = BankPartition::even(2, 8);
/// assert_eq!(p.banks_for(asm_simcore::AppId::new(0)), &[0, 1, 2, 3]);
/// assert_eq!(p.banks_for(asm_simcore::AppId::new(1)), &[4, 5, 6, 7]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankPartition {
    /// `assignments[app]` = the banks that application may use.
    assignments: Vec<Vec<usize>>,
    banks: usize,
}

impl BankPartition {
    /// Creates a partition from explicit per-application bank lists.
    ///
    /// # Panics
    ///
    /// Panics if any application has no banks, or any listed bank is out
    /// of range for `banks`.
    #[must_use]
    pub fn new(assignments: Vec<Vec<usize>>, banks: usize) -> Self {
        assert!(!assignments.is_empty(), "need at least one application");
        for (a, list) in assignments.iter().enumerate() {
            assert!(!list.is_empty(), "app {a} has no banks");
            for &b in list {
                assert!(b < banks, "app {a} assigned out-of-range bank {b}");
            }
        }
        BankPartition { assignments, banks }
    }

    /// Splits `banks` banks evenly among `apps` applications (contiguous
    /// ranges; remainder banks go to the last applications).
    ///
    /// # Panics
    ///
    /// Panics if `apps` is zero or exceeds `banks`.
    #[must_use]
    pub fn even(apps: usize, banks: usize) -> Self {
        assert!(apps > 0, "need at least one application");
        assert!(apps <= banks, "more applications than banks");
        let assignments = (0..apps)
            .map(|a| {
                let lo = a * banks / apps;
                let hi = (a + 1) * banks / apps;
                (lo..hi).collect()
            })
            .collect();
        BankPartition { assignments, banks }
    }

    /// The banks application `app` may use (applications beyond the
    /// partition's range get every bank, i.e. are unpartitioned).
    #[must_use]
    pub fn banks_for(&self, app: AppId) -> &[usize] {
        static EMPTY: &[usize] = &[];
        self.assignments
            .get(app.index())
            .map_or(EMPTY, Vec::as_slice)
    }

    /// Number of banks per channel this partition was built for.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Remaps a decoded location so `app` only touches its own banks. The
    /// original bank index is folded into the row so distinct (bank, row)
    /// pairs stay distinct after remapping.
    #[must_use]
    pub fn remap(&self, app: AppId, loc: Loc) -> Loc {
        let allowed = self.banks_for(app);
        if allowed.is_empty() {
            return loc;
        }
        let slot = loc.bank % allowed.len();
        Loc {
            bank: allowed[slot],
            row: loc.row * (self.banks as u64) + (loc.bank / allowed.len()) as u64,
            ..loc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(bank: usize, row: u64) -> Loc {
        Loc {
            channel: 0,
            bank,
            row,
            col: 0,
        }
    }

    #[test]
    fn even_split_covers_all_banks_disjointly() {
        let p = BankPartition::even(4, 8);
        let mut seen = std::collections::HashSet::new();
        for a in 0..4 {
            for &b in p.banks_for(AppId::new(a)) {
                assert!(seen.insert(b), "bank {b} assigned twice");
            }
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn remap_confines_app_to_its_banks() {
        let p = BankPartition::even(2, 8);
        for bank in 0..8 {
            for row in 0..4 {
                let l = p.remap(AppId::new(1), loc(bank, row));
                assert!(p.banks_for(AppId::new(1)).contains(&l.bank));
            }
        }
    }

    #[test]
    fn remap_is_injective_per_app() {
        let p = BankPartition::even(2, 8);
        let mut seen = std::collections::HashSet::new();
        for bank in 0..8 {
            for row in 0..16 {
                let l = p.remap(AppId::new(0), loc(bank, row));
                assert!(
                    seen.insert((l.bank, l.row, l.col)),
                    "collision at bank {bank} row {row}"
                );
            }
        }
    }

    #[test]
    fn out_of_range_app_is_unpartitioned() {
        let p = BankPartition::even(2, 8);
        let l = loc(5, 3);
        assert_eq!(p.remap(AppId::new(7), l), l);
    }

    #[test]
    #[should_panic(expected = "more applications than banks")]
    fn too_many_apps_rejected() {
        let _ = BankPartition::even(9, 8);
    }

    #[test]
    #[should_panic(expected = "out-of-range bank")]
    fn invalid_bank_rejected() {
        let _ = BankPartition::new(vec![vec![8]], 8);
    }
}
