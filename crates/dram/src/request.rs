//! Memory requests and completions.

use asm_simcore::{AppId, Cycle, LineAddr};

/// A request to main memory (a last-level-cache miss, a prefetch, or a
/// writeback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Caller-assigned identifier, echoed in the [`Completion`].
    pub id: u64,
    /// The cache line to read or write.
    pub line: LineAddr,
    /// The application the request belongs to.
    pub app: AppId,
    /// `true` for a writeback, `false` for a read (demand miss or
    /// prefetch).
    pub is_write: bool,
    /// `true` for prefetch reads: scheduled like reads, but excluded from
    /// the demand-side accounting (queueing cycles, outstanding-read
    /// counts) since no instruction waits on them.
    pub is_prefetch: bool,
    /// The cycle the request entered the memory system.
    pub arrival: Cycle,
}

impl MemRequest {
    /// Creates a read (demand) request.
    #[must_use]
    pub fn read(id: u64, line: LineAddr, app: AppId, arrival: Cycle) -> Self {
        MemRequest {
            id,
            line,
            app,
            is_write: false,
            is_prefetch: false,
            arrival,
        }
    }

    /// Creates a prefetch read request.
    #[must_use]
    pub fn prefetch(id: u64, line: LineAddr, app: AppId, arrival: Cycle) -> Self {
        MemRequest {
            id,
            line,
            app,
            is_write: false,
            is_prefetch: true,
            arrival,
        }
    }

    /// Creates a writeback request.
    #[must_use]
    pub fn write(id: u64, line: LineAddr, app: AppId, arrival: Cycle) -> Self {
        MemRequest {
            id,
            line,
            app,
            is_write: true,
            is_prefetch: false,
            arrival,
        }
    }

    /// Whether an instruction is (potentially) waiting on this request.
    #[must_use]
    pub fn is_demand_read(&self) -> bool {
        !self.is_write && !self.is_prefetch
    }
}

/// A finished read request. (Writebacks complete silently; nothing waits on
/// them.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The id passed in the request.
    pub id: u64,
    /// The request's line.
    pub line: LineAddr,
    /// The owning application.
    pub app: AppId,
    /// When the request entered the memory system.
    pub arrival: Cycle,
    /// When the controller started servicing the request at the bank.
    pub service_start: Cycle,
    /// When the data burst finished (data available to the cache).
    pub finish: Cycle,
    /// Cycles this request spent queued while its bank served *other*
    /// applications — the per-request interference signal FST/PTCA consume.
    pub interference_cycles: Cycle,
    /// Whether the request hit the open row.
    pub row_hit: bool,
    /// Busy-kind split of `interference_cycles` for ground-truth
    /// attribution (0 = write drain, 1 = foreign row hit, 2 = foreign row
    /// miss). All zeros unless the controller's attribution counters are
    /// enabled; the parts then sum exactly to `interference_cycles`.
    pub cause: [Cycle; 3],
    /// Extra activate+precharge latency this request paid because another
    /// application replaced the row its application had open (zero when
    /// the conflict was self-inflicted or the bank was closed/refreshed).
    pub induced: Cycle,
    /// The application that replaced the row, when `induced > 0`.
    pub induced_by: Option<AppId>,
}

impl Completion {
    /// Total memory latency: queueing plus service.
    #[must_use]
    pub fn total_latency(&self) -> Cycle {
        self.finish - self.arrival
    }

    /// Service time at the bank (excludes queueing).
    #[must_use]
    pub fn service_latency(&self) -> Cycle {
        self.finish - self.service_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_direction() {
        let r = MemRequest::read(1, LineAddr::new(2), AppId::new(0), 3);
        assert!(!r.is_write);
        let w = MemRequest::write(1, LineAddr::new(2), AppId::new(0), 3);
        assert!(w.is_write);
    }

    #[test]
    fn latencies_decompose() {
        let c = Completion {
            id: 0,
            line: LineAddr::new(0),
            app: AppId::new(0),
            arrival: 100,
            service_start: 150,
            finish: 250,
            interference_cycles: 30,
            row_hit: false,
            cause: [0; 3],
            induced: 0,
            induced_by: None,
        };
        assert_eq!(c.total_latency(), 150);
        assert_eq!(c.service_latency(), 100);
    }
}
