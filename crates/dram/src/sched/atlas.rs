//! ATLAS: adaptive per-thread least-attained-service memory scheduling
//! [Kim+, HPCA 2010].
//!
//! ATLAS ranks applications by *attained service* — the memory service
//! time they have received over a long quantum — and prioritises the
//! application with the least. This favours light applications (which
//! finish their bursts quickly) and bounds the damage heavy streamers can
//! do, at some cost in fairness for the heaviest applications (the
//! motivation for TCM, its successor). Attained service decays
//! geometrically across quanta.

use asm_simcore::{AppId, Cycle};

use super::{Candidate, QueuedRequest, SchedulerPolicy};

/// ATLAS tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtlasConfig {
    /// Length of the attained-service quantum, in cycles (the ATLAS paper
    /// uses ~10M memory cycles; scaled here to simulation defaults).
    pub quantum: Cycle,
    /// Exponential decay applied to attained service at quantum
    /// boundaries (the paper's α = 0.875).
    pub decay: f64,
    /// Service credited per completed request, in cycles (approximates the
    /// bank service time).
    pub service_per_request: u64,
}

impl Default for AtlasConfig {
    fn default() -> Self {
        AtlasConfig {
            quantum: 1_000_000,
            decay: 0.875,
            service_per_request: 200,
        }
    }
}

/// The ATLAS scheduling policy (per channel).
///
/// # Examples
///
/// ```
/// use asm_dram::sched::{Atlas, AtlasConfig, SchedulerPolicy};
/// let p = Atlas::new(AtlasConfig::default(), 4);
/// assert_eq!(p.name(), "ATLAS");
/// ```
#[derive(Debug, Clone)]
pub struct Atlas {
    config: AtlasConfig,
    attained: Vec<f64>,
    next_quantum_at: Cycle,
}

impl Atlas {
    /// Creates the policy for `app_count` applications.
    #[must_use]
    pub fn new(config: AtlasConfig, app_count: usize) -> Self {
        Atlas {
            config,
            attained: vec![0.0; app_count],
            next_quantum_at: config.quantum,
        }
    }

    /// Attained service of `app` (decayed cycles of memory service).
    #[must_use]
    pub fn attained_service(&self, app: AppId) -> f64 {
        self.attained.get(app.index()).copied().unwrap_or(0.0)
    }
}

impl SchedulerPolicy for Atlas {
    fn name(&self) -> &'static str {
        "ATLAS"
    }

    fn maintain(&mut self, now: Cycle, _queue: &mut [QueuedRequest]) {
        if now >= self.next_quantum_at {
            for a in &mut self.attained {
                *a *= self.config.decay;
            }
            self.next_quantum_at = now + self.config.quantum;
        }
    }

    fn pick(
        &mut self,
        _now: Cycle,
        queue: &[QueuedRequest],
        candidates: &[Candidate],
    ) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let qa = &queue[a.queue_idx];
                let qb = &queue[b.queue_idx];
                // Least attained service first; then FR-FCFS.
                self.attained_service(qa.req.app)
                    .total_cmp(&self.attained_service(qb.req.app))
                    .then_with(|| (!a.row_hit).cmp(&!b.row_hit))
                    .then_with(|| qa.req.arrival.cmp(&qb.req.arrival))
            })
            .map(|(i, _)| i)
    }

    fn on_completion(&mut self, app: AppId) {
        if let Some(a) = self.attained.get_mut(app.index()) {
            *a += self.config.service_per_request as f64;
        }
    }

    fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.f64_slice(&self.attained);
        w.u64(self.next_quantum_at);
    }

    fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        let attained = r.f64_vec()?;
        if attained.len() != self.attained.len() {
            return Err(asm_simcore::persist::PersistError::Corrupt(
                "attained-service length mismatch".to_owned(),
            ));
        }
        self.attained = attained;
        self.next_quantum_at = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::{all_candidates, queued};

    #[test]
    fn least_attained_service_wins() {
        let mut p = Atlas::new(AtlasConfig::default(), 2);
        for _ in 0..10 {
            p.on_completion(AppId::new(0));
        }
        let queue = vec![
            queued(0, 0, 1, 0, 1), // heavy app, row hit, older
            queued(1, 1, 9, 1, 1), // light app, row miss, newer
        ];
        let cands = all_candidates(&[true, false]);
        let pick = p.pick(0, &queue, &cands).unwrap();
        assert_eq!(cands[pick].queue_idx, 1);
    }

    #[test]
    fn ties_fall_back_to_frfcfs() {
        let mut p = Atlas::new(AtlasConfig::default(), 2);
        let queue = vec![queued(0, 0, 9, 0, 1), queued(1, 1, 1, 1, 1)];
        let cands = all_candidates(&[true, false]);
        // Equal attained service: row hit wins.
        let pick = p.pick(0, &queue, &cands).unwrap();
        assert_eq!(cands[pick].queue_idx, 0);
    }

    #[test]
    fn attained_service_decays_at_quantum() {
        let mut p = Atlas::new(
            AtlasConfig {
                quantum: 100,
                decay: 0.5,
                service_per_request: 100,
            },
            1,
        );
        p.on_completion(AppId::new(0));
        assert_eq!(p.attained_service(AppId::new(0)), 100.0);
        p.maintain(100, &mut []);
        assert_eq!(p.attained_service(AppId::new(0)), 50.0);
    }
}
