//! FR-FCFS: first-ready, first-come-first-served [Rixner+, ISCA 2000].
//!
//! Prioritises (1) requests that hit the open row — maximising bandwidth
//! utilisation — and (2) older requests — guaranteeing forward progress.
//! Application-unaware: as the paper notes (§7.2.2), it tends to unfairly
//! slow down applications with low row-buffer locality and low memory
//! intensity, which is what the application-aware schedulers and ASM-Mem
//! improve upon.

use asm_simcore::Cycle;

use super::{Candidate, QueuedRequest, SchedulerPolicy};

/// The FR-FCFS scheduling policy.
///
/// # Examples
///
/// ```
/// use asm_dram::sched::{FrFcfs, SchedulerPolicy};
/// let p = FrFcfs::new();
/// assert_eq!(p.name(), "FRFCFS");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FrFcfs;

impl FrFcfs {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        FrFcfs
    }
}

impl SchedulerPolicy for FrFcfs {
    fn name(&self) -> &'static str {
        "FRFCFS"
    }

    fn maintain(&mut self, _now: Cycle, _queue: &mut [QueuedRequest]) {}

    fn pick(
        &mut self,
        _now: Cycle,
        queue: &[QueuedRequest],
        candidates: &[Candidate],
    ) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (!c.row_hit, queue[c.queue_idx].req.arrival))
            .map(|(i, _)| i)
    }

    fn save_state(&self, _w: &mut asm_simcore::persist::StateWriter) {
        // Stateless: every decision derives from the queue contents.
    }

    fn restore_state(
        &mut self,
        _r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::{all_candidates, queued};

    #[test]
    fn prefers_row_hit_over_older() {
        let mut p = FrFcfs::new();
        let queue = vec![
            queued(0, 0, 10, 0, 1), // older, row miss
            queued(1, 1, 20, 1, 2), // newer, row hit
        ];
        let cands = all_candidates(&[false, true]);
        let pick = p.pick(100, &queue, &cands).unwrap();
        assert_eq!(cands[pick].queue_idx, 1);
    }

    #[test]
    fn falls_back_to_oldest() {
        let mut p = FrFcfs::new();
        let queue = vec![
            queued(0, 0, 30, 0, 1),
            queued(1, 1, 10, 1, 2),
            queued(2, 0, 20, 2, 3),
        ];
        let cands = all_candidates(&[false, false, false]);
        let pick = p.pick(100, &queue, &cands).unwrap();
        assert_eq!(cands[pick].queue_idx, 1);
    }

    #[test]
    fn among_row_hits_picks_oldest() {
        let mut p = FrFcfs::new();
        let queue = vec![queued(0, 0, 30, 0, 1), queued(1, 1, 10, 1, 2)];
        let cands = all_candidates(&[true, true]);
        let pick = p.pick(100, &queue, &cands).unwrap();
        assert_eq!(cands[pick].queue_idx, 1);
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut p = FrFcfs::new();
        assert_eq!(p.pick(0, &[], &[]), None);
    }
}
