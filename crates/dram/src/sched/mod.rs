//! Memory-scheduling policies.
//!
//! The controller separates *mechanism* (bank timing, bus serialisation,
//! request buffering — [`crate::controller`]) from *policy* (which ready
//! request to service next — this module). Three policies from the paper's
//! evaluation are provided:
//!
//! - [`FrFcfs`]: row-hits first, then oldest first [Rixner+, ISCA 2000] —
//!   the baseline of Table 2 and the substrate under ASM's epoch
//!   prioritisation.
//! - [`Parbs`]: parallelism-aware batch scheduling [Mutlu & Moscibroda,
//!   ISCA 2008].
//! - [`Tcm`]: thread cluster memory scheduling [Kim+, MICRO 2010].
//!
//! ASM-Mem is *not* a policy here: it reuses FR-FCFS plus the epoch
//! priority hook, assigning epochs to applications with probability
//! proportional to slowdown (§7.2).

mod atlas;
mod bliss;
mod frfcfs;
mod parbs;
mod tcm;

pub use atlas::{Atlas, AtlasConfig};
pub use bliss::{Bliss, BlissConfig};
pub use frfcfs::FrFcfs;
pub use parbs::{Parbs, ParbsConfig};
pub use tcm::{Tcm, TcmConfig};

use asm_simcore::{AppId, Cycle};

use crate::accounting::InterferenceSnapshot;
use crate::mapping::Loc;
use crate::request::MemRequest;

/// A request waiting in a channel's read queue.
#[derive(Debug, Clone, Copy)]
pub struct QueuedRequest {
    /// The underlying request.
    pub req: MemRequest,
    /// Its decoded DRAM location.
    pub loc: Loc,
    /// PARBS batch flag: whether this request belongs to the current batch.
    pub marked: bool,
    /// Interference-counter snapshot taken at enqueue; the controller
    /// materialises the cycles this request spent waiting behind other
    /// applications at issue time (see
    /// [`ChannelAccounting`](crate::accounting::ChannelAccounting)).
    pub interference_snap: InterferenceSnapshot,
}

impl QueuedRequest {
    /// Serializes the queued request (request, location, batch flag,
    /// interference snapshot) for checkpointing.
    pub fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.u64(self.req.id);
        w.u64(self.req.line.raw());
        w.u64(self.req.app.index() as u64);
        w.bool(self.req.is_write);
        w.bool(self.req.is_prefetch);
        w.u64(self.req.arrival);
        w.usize(self.loc.channel);
        w.usize(self.loc.bank);
        w.u64(self.loc.row);
        w.u64(self.loc.col);
        w.bool(self.marked);
        self.interference_snap.save_state(w);
    }

    /// Reads a queued request previously written by
    /// [`save_state`](Self::save_state). The caller validates location and
    /// application bounds against the restore target's structure.
    ///
    /// # Errors
    ///
    /// Propagates reader errors.
    pub fn restore_from(
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<Self, asm_simcore::persist::PersistError> {
        use asm_simcore::LineAddr;
        let id = r.u64()?;
        let line = LineAddr::new(r.u64()?);
        let app_idx = usize::try_from(r.u64()?).map_err(|_| {
            asm_simcore::persist::PersistError::Corrupt(
                "application index out of range".to_owned(),
            )
        })?;
        let is_write = r.bool()?;
        let is_prefetch = r.bool()?;
        let arrival = r.u64()?;
        let loc = Loc {
            channel: r.usize()?,
            bank: r.usize()?,
            row: r.u64()?,
            col: r.u64()?,
        };
        let marked = r.bool()?;
        let interference_snap = InterferenceSnapshot::restore_from(r)?;
        Ok(QueuedRequest {
            req: MemRequest {
                id,
                line,
                app: AppId::new(app_idx),
                is_write,
                is_prefetch,
                arrival,
            },
            loc,
            marked,
            interference_snap,
        })
    }
}

/// A schedulable request this cycle: its queue position plus precomputed
/// row-buffer information.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// Index into the channel's read queue.
    pub queue_idx: usize,
    /// Whether the request would hit the currently open row.
    pub row_hit: bool,
}

/// A policy deciding which ready request a channel services next.
///
/// Implementations are per-channel and stateful (PARBS batches, TCM
/// clusters). The controller calls [`maintain`](SchedulerPolicy::maintain)
/// before each scheduling attempt and
/// [`on_completion`](SchedulerPolicy::on_completion) when a read finishes,
/// giving policies the bookkeeping hooks they need.
pub trait SchedulerPolicy: std::fmt::Debug + Send {
    /// A short human-readable policy name ("FRFCFS", "PARBS", "TCM").
    fn name(&self) -> &'static str;

    /// Updates policy state (e.g. forms a new PARBS batch, re-clusters and
    /// shuffles TCM ranks). Called before each scheduling attempt.
    fn maintain(&mut self, now: Cycle, queue: &mut [QueuedRequest]);

    /// Picks one of `candidates` (all bank-ready this cycle) to service.
    /// Returns an index into `candidates`, or `None` to idle.
    fn pick(
        &mut self,
        now: Cycle,
        queue: &[QueuedRequest],
        candidates: &[Candidate],
    ) -> Option<usize>;

    /// Notifies the policy that a read for `app` finished (used for
    /// bandwidth bookkeeping).
    fn on_completion(&mut self, app: AppId) {
        let _ = app;
    }

    /// Serializes the policy's dynamic state (batch marks live on the
    /// queue entries and are saved with them) for checkpointing.
    fn save_state(&self, w: &mut asm_simcore::persist::StateWriter);

    /// Restores state captured by
    /// [`save_state`](SchedulerPolicy::save_state) into a policy built
    /// with the same configuration and application count.
    ///
    /// # Errors
    ///
    /// Propagates reader errors; `Corrupt` when the stored state does not
    /// fit this policy's structure.
    fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError>;
}

/// Which scheduling policy a [`crate::MemorySystem`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Application-unaware row-hit-first (baseline, and the substrate for
    /// ASM's epoch prioritisation / ASM-Mem).
    FrFcfs,
    /// Parallelism-aware batch scheduling.
    Parbs,
    /// Thread cluster memory scheduling.
    Tcm,
    /// Adaptive least-attained-service scheduling.
    Atlas,
    /// The blacklisting memory scheduler.
    Bliss,
}

impl SchedulerKind {
    /// Instantiates one per-channel policy object.
    #[must_use]
    pub fn build(self, app_count: usize, seed: u64) -> Box<dyn SchedulerPolicy> {
        match self {
            SchedulerKind::FrFcfs => Box::new(FrFcfs::new()),
            SchedulerKind::Parbs => Box::new(Parbs::new(ParbsConfig::default(), app_count)),
            SchedulerKind::Tcm => Box::new(Tcm::new(TcmConfig::default(), app_count, seed)),
            SchedulerKind::Atlas => Box::new(Atlas::new(AtlasConfig::default(), app_count)),
            SchedulerKind::Bliss => Box::new(Bliss::new(BlissConfig::default(), app_count)),
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SchedulerKind::FrFcfs => "FRFCFS",
            SchedulerKind::Parbs => "PARBS",
            SchedulerKind::Tcm => "TCM",
            SchedulerKind::Atlas => "ATLAS",
            SchedulerKind::Bliss => "BLISS",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use asm_simcore::LineAddr;

    /// Builds a queued read for tests.
    pub fn queued(id: u64, app: usize, arrival: Cycle, bank: usize, row: u64) -> QueuedRequest {
        QueuedRequest {
            req: MemRequest::read(id, LineAddr::new(id), AppId::new(app), arrival),
            loc: Loc {
                channel: 0,
                bank,
                row,
                col: 0,
            },
            marked: false,
            interference_snap: InterferenceSnapshot::default(),
        }
    }

    /// Candidates covering every queue entry, with the given row-hit flags.
    pub fn all_candidates(row_hits: &[bool]) -> Vec<Candidate> {
        row_hits
            .iter()
            .enumerate()
            .map(|(i, &row_hit)| Candidate {
                queue_idx: i,
                row_hit,
            })
            .collect()
    }
}
