//! TCM: thread cluster memory scheduling [Kim+, MICRO 2010].
//!
//! TCM periodically divides applications into a *latency-sensitive* cluster
//! (low memory intensity — always prioritised, since their requests are
//! rare but stall-critical) and a *bandwidth-sensitive* cluster (the rest).
//! Within the bandwidth cluster, ranks are *shuffled* periodically so that
//! no application is persistently deprioritised.

use asm_simcore::{AppId, Cycle, SimRng};

use super::{Candidate, QueuedRequest, SchedulerPolicy};

/// TCM tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcmConfig {
    /// How often clusters are recomputed, in cycles (TCM's "quantum").
    pub cluster_interval: Cycle,
    /// How often bandwidth-cluster ranks are shuffled, in cycles.
    pub shuffle_interval: Cycle,
    /// Fraction of total observed bandwidth the latency-sensitive cluster
    /// may consume (TCM's ClusterThresh).
    pub cluster_threshold: f64,
}

impl Default for TcmConfig {
    fn default() -> Self {
        TcmConfig {
            cluster_interval: 1_000_000,
            shuffle_interval: 8_000,
            cluster_threshold: 0.10,
        }
    }
}

/// The TCM scheduling policy (per channel).
///
/// # Examples
///
/// ```
/// use asm_dram::sched::{SchedulerPolicy, Tcm, TcmConfig};
/// let p = Tcm::new(TcmConfig::default(), 4, 42);
/// assert_eq!(p.name(), "TCM");
/// ```
#[derive(Debug, Clone)]
pub struct Tcm {
    config: TcmConfig,
    rng: SimRng,
    /// Requests completed per application in the current clustering window.
    window_served: Vec<u64>,
    /// Whether each application is in the latency-sensitive cluster.
    latency_sensitive: Vec<bool>,
    /// `rank[app]`: lower is higher priority within the bandwidth cluster.
    rank: Vec<usize>,
    next_cluster_at: Cycle,
    next_shuffle_at: Cycle,
}

impl Tcm {
    /// Creates the policy for `app_count` applications; `seed` drives the
    /// shuffling.
    #[must_use]
    pub fn new(config: TcmConfig, app_count: usize, seed: u64) -> Self {
        Tcm {
            config,
            rng: SimRng::seed_from(seed),
            window_served: vec![0; app_count],
            // Until the first clustering everyone is bandwidth-sensitive.
            latency_sensitive: vec![false; app_count],
            rank: (0..app_count).collect(),
            next_cluster_at: config.cluster_interval,
            next_shuffle_at: config.shuffle_interval,
        }
    }

    /// Whether `app` is currently classified latency-sensitive.
    #[must_use]
    pub fn is_latency_sensitive(&self, app: AppId) -> bool {
        self.latency_sensitive
            .get(app.index())
            .copied()
            .unwrap_or(false)
    }

    // asm-lint: allow(R9): quantum boundary — reclustering runs once per
    // TCM quantum, not per cycle; the order scratch is apps-sized
    fn recluster(&mut self) {
        let total: u64 = self.window_served.iter().sum();
        let budget = (total as f64 * self.config.cluster_threshold) as u64;
        // Take applications in increasing bandwidth order into the latency
        // cluster while their combined demand fits the budget.
        let mut order: Vec<usize> = (0..self.window_served.len()).collect();
        order.sort_by_key(|&a| (self.window_served[a], a));
        let mut used = 0u64;
        self.latency_sensitive.fill(false);
        for &a in &order {
            if used + self.window_served[a] <= budget {
                used += self.window_served[a];
                self.latency_sensitive[a] = true;
            } else {
                break;
            }
        }
        self.window_served.fill(0);
    }

    // asm-lint: allow(R9): shuffle boundary — runs once per shuffle
    // interval, not per cycle; the candidate list is apps-sized
    fn shuffle_ranks(&mut self) {
        // Shuffle only the bandwidth-cluster applications' relative order.
        let mut bw_apps: Vec<usize> = (0..self.rank.len())
            .filter(|&a| !self.latency_sensitive[a])
            .collect();
        self.rng.shuffle(&mut bw_apps);
        for (r, &a) in bw_apps.iter().enumerate() {
            self.rank[a] = r;
        }
    }

    fn rank_of(&self, app: AppId) -> usize {
        self.rank.get(app.index()).copied().unwrap_or(usize::MAX)
    }
}

impl SchedulerPolicy for Tcm {
    fn name(&self) -> &'static str {
        "TCM"
    }

    fn maintain(&mut self, now: Cycle, _queue: &mut [QueuedRequest]) {
        if now >= self.next_cluster_at {
            self.recluster();
            self.next_cluster_at = now + self.config.cluster_interval;
        }
        if now >= self.next_shuffle_at {
            self.shuffle_ranks();
            self.next_shuffle_at = now + self.config.shuffle_interval;
        }
    }

    fn pick(
        &mut self,
        _now: Cycle,
        queue: &[QueuedRequest],
        candidates: &[Candidate],
    ) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| {
                let q = &queue[c.queue_idx];
                (
                    !self.is_latency_sensitive(q.req.app),
                    self.rank_of(q.req.app),
                    !c.row_hit,
                    q.req.arrival,
                )
            })
            .map(|(i, _)| i)
    }

    fn on_completion(&mut self, app: AppId) {
        if let Some(s) = self.window_served.get_mut(app.index()) {
            *s += 1;
        }
    }

    fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        self.rng.save_state(w);
        w.u64_slice(&self.window_served);
        w.usize(self.latency_sensitive.len());
        for &b in &self.latency_sensitive {
            w.bool(b);
        }
        w.usize(self.rank.len());
        for &r in &self.rank {
            w.usize(r);
        }
        w.u64(self.next_cluster_at);
        w.u64(self.next_shuffle_at);
    }

    fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        let corrupt = |what: &str| PersistError::Corrupt(what.to_owned());
        let apps = self.rank.len();
        self.rng.restore_state(r)?;
        let window_served = r.u64_vec()?;
        if window_served.len() != apps {
            return Err(corrupt("window-served length mismatch"));
        }
        let n = r.usize()?;
        if n != apps {
            return Err(corrupt("cluster flag length mismatch"));
        }
        let mut latency_sensitive = Vec::with_capacity(n);
        for _ in 0..n {
            latency_sensitive.push(r.bool()?);
        }
        let n = r.usize()?;
        if n != apps {
            return Err(corrupt("rank length mismatch"));
        }
        let mut rank = Vec::with_capacity(n);
        for _ in 0..n {
            let v = r.usize()?;
            if v >= apps {
                return Err(corrupt("rank value out of range"));
            }
            rank.push(v);
        }
        self.window_served = window_served;
        self.latency_sensitive = latency_sensitive;
        self.rank = rank;
        self.next_cluster_at = r.u64()?;
        self.next_shuffle_at = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::{all_candidates, queued};

    fn clustered_tcm() -> Tcm {
        let mut p = Tcm::new(
            TcmConfig {
                cluster_interval: 100,
                shuffle_interval: 50,
                cluster_threshold: 0.2,
            },
            2,
            7,
        );
        // app0 light (5 requests), app1 heavy (95): 0.2 * 100 = 20 budget
        // admits app0 only.
        for _ in 0..5 {
            p.on_completion(AppId::new(0));
        }
        for _ in 0..95 {
            p.on_completion(AppId::new(1));
        }
        p.maintain(100, &mut []);
        p
    }

    #[test]
    fn light_app_becomes_latency_sensitive() {
        let p = clustered_tcm();
        assert!(p.is_latency_sensitive(AppId::new(0)));
        assert!(!p.is_latency_sensitive(AppId::new(1)));
    }

    #[test]
    fn latency_cluster_beats_row_hits() {
        let mut p = clustered_tcm();
        let queue = vec![
            queued(0, 1, 1, 0, 1), // heavy app, row hit, older
            queued(1, 0, 9, 1, 1), // light app, row miss, newer
        ];
        let cands = all_candidates(&[true, false]);
        let pick = p.pick(200, &queue, &cands).unwrap();
        assert_eq!(cands[pick].queue_idx, 1);
    }

    #[test]
    fn shuffle_changes_bandwidth_ranks_eventually() {
        let mut p = Tcm::new(
            TcmConfig {
                cluster_interval: 1_000_000,
                shuffle_interval: 1,
                cluster_threshold: 0.0,
            },
            4,
            3,
        );
        let initial = p.rank.clone();
        let mut changed = false;
        for t in 0..32 {
            p.maintain(t, &mut []);
            if p.rank != initial {
                changed = true;
                break;
            }
        }
        assert!(changed, "shuffling should eventually permute ranks");
    }

    #[test]
    fn window_counts_reset_after_clustering() {
        let mut p = clustered_tcm();
        assert!(p.window_served.iter().all(|&s| s == 0));
        p.on_completion(AppId::new(1));
        assert_eq!(p.window_served[1], 1);
    }
}
