//! PARBS: parallelism-aware batch scheduling [Mutlu & Moscibroda, ISCA 2008].
//!
//! PARBS groups outstanding requests into *batches* and services a whole
//! batch before starting the next, which bounds how long any application
//! can be starved. Within a batch, applications are *ranked*
//! shortest-job-first (fewest marked requests first), preserving each
//! application's bank-level parallelism. Within the same rank, FR-FCFS
//! tie-breaking applies.

use asm_simcore::{AppId, Cycle};

use super::{Candidate, QueuedRequest, SchedulerPolicy};

/// PARBS tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParbsConfig {
    /// Maximum requests marked per application per bank when a batch forms
    /// (the "marking cap"; the PARBS paper uses 5).
    pub marking_cap: usize,
}

impl Default for ParbsConfig {
    fn default() -> Self {
        ParbsConfig { marking_cap: 5 }
    }
}

/// The PARBS scheduling policy (per channel).
///
/// # Examples
///
/// ```
/// use asm_dram::sched::{Parbs, ParbsConfig, SchedulerPolicy};
/// let p = Parbs::new(ParbsConfig::default(), 4);
/// assert_eq!(p.name(), "PARBS");
/// ```
#[derive(Debug, Clone)]
pub struct Parbs {
    config: ParbsConfig,
    /// `rank[app]`: lower is higher priority. Recomputed at batch formation.
    rank: Vec<usize>,
}

impl Parbs {
    /// Creates the policy for `app_count` applications.
    #[must_use]
    pub fn new(config: ParbsConfig, app_count: usize) -> Self {
        Parbs {
            config,
            rank: (0..app_count).collect(),
        }
    }

    fn rank_of(&self, app: AppId) -> usize {
        self.rank.get(app.index()).copied().unwrap_or(usize::MAX)
    }

    /// Marks a new batch and recomputes application ranks
    /// (shortest-job-first by marked-request count, ties by app index).
    // asm-lint: allow(R9): batch boundary — runs once per batch (when
    // every marked request has drained), not per cycle; scratch vectors
    // are proportional to apps×banks
    fn form_batch(&mut self, queue: &mut [QueuedRequest]) {
        let apps = self.rank.len();
        let banks = queue.iter().map(|q| q.loc.bank).max().map_or(1, |b| b + 1);
        // Count how many requests each (app, bank) pair has marked so far.
        let mut marked_per = vec![0usize; apps * banks];
        // Mark oldest-first.
        let mut order: Vec<usize> = (0..queue.len()).collect();
        order.sort_by_key(|&i| queue[i].req.arrival);
        let mut total_marked = vec![0usize; apps];
        for i in order {
            let q = &mut queue[i];
            let a = q.req.app.index();
            if a >= apps {
                continue;
            }
            let slot = a * banks + q.loc.bank;
            if marked_per[slot] < self.config.marking_cap {
                marked_per[slot] += 1;
                total_marked[a] += 1;
                q.marked = true;
            } else {
                q.marked = false;
            }
        }
        // Shortest job first: fewest marked requests -> best (lowest) rank.
        let mut by_load: Vec<usize> = (0..apps).collect();
        by_load.sort_by_key(|&a| (total_marked[a], a));
        for (r, &a) in by_load.iter().enumerate() {
            self.rank[a] = r;
        }
    }
}

impl SchedulerPolicy for Parbs {
    fn name(&self) -> &'static str {
        "PARBS"
    }

    fn maintain(&mut self, _now: Cycle, queue: &mut [QueuedRequest]) {
        if !queue.is_empty() && queue.iter().all(|q| !q.marked) {
            self.form_batch(queue);
        }
    }

    fn pick(
        &mut self,
        _now: Cycle,
        queue: &[QueuedRequest],
        candidates: &[Candidate],
    ) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| {
                let q = &queue[c.queue_idx];
                (
                    !q.marked,
                    self.rank_of(q.req.app),
                    !c.row_hit,
                    q.req.arrival,
                )
            })
            .map(|(i, _)| i)
    }

    fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.usize(self.rank.len());
        for &r in &self.rank {
            w.usize(r);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        let corrupt = |what: &str| PersistError::Corrupt(what.to_owned());
        let n = r.usize()?;
        if n != self.rank.len() {
            return Err(corrupt("rank length mismatch"));
        }
        let mut rank = Vec::with_capacity(n);
        for _ in 0..n {
            let v = r.usize()?;
            if v >= n {
                return Err(corrupt("rank value out of range"));
            }
            rank.push(v);
        }
        self.rank = rank;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::{all_candidates, queued};

    #[test]
    fn batch_forms_when_no_marks_remain() {
        let mut p = Parbs::new(ParbsConfig::default(), 2);
        let mut queue = vec![queued(0, 0, 1, 0, 1), queued(1, 1, 2, 1, 2)];
        p.maintain(0, &mut queue);
        assert!(queue.iter().all(|q| q.marked));
    }

    #[test]
    fn marking_cap_limits_per_app_per_bank() {
        let cfg = ParbsConfig { marking_cap: 2 };
        let mut p = Parbs::new(cfg, 1);
        let mut queue: Vec<_> = (0..5).map(|i| queued(i, 0, i, 0, 1)).collect();
        p.maintain(0, &mut queue);
        let marked = queue.iter().filter(|q| q.marked).count();
        assert_eq!(marked, 2);
        // The oldest two are the marked ones.
        assert!(queue[0].marked && queue[1].marked);
    }

    #[test]
    fn marked_requests_beat_unmarked_row_hits() {
        let mut p = Parbs::new(ParbsConfig { marking_cap: 1 }, 2);
        let mut queue = vec![
            queued(0, 0, 1, 0, 1), // will be marked
            queued(1, 0, 2, 0, 2), // over cap: unmarked
        ];
        p.maintain(0, &mut queue);
        assert!(queue[0].marked && !queue[1].marked);
        // Even if the unmarked one is a row hit, the marked one wins.
        let cands = all_candidates(&[false, true]);
        let pick = p.pick(0, &queue, &cands).unwrap();
        assert_eq!(cands[pick].queue_idx, 0);
    }

    #[test]
    fn shortest_job_ranked_first() {
        let mut p = Parbs::new(ParbsConfig::default(), 2);
        // app0 has 3 requests, app1 has 1: app1 should get rank 0.
        let mut queue = vec![
            queued(0, 0, 1, 0, 1),
            queued(1, 0, 2, 1, 1),
            queued(2, 0, 3, 2, 1),
            queued(3, 1, 4, 3, 1),
        ];
        p.maintain(0, &mut queue);
        assert!(p.rank_of(AppId::new(1)) < p.rank_of(AppId::new(0)));
        // Among marked candidates with equal row-hit status, app1 wins
        // despite arriving last.
        let cands = all_candidates(&[false, false, false, false]);
        let pick = p.pick(0, &queue, &cands).unwrap();
        assert_eq!(cands[pick].queue_idx, 3);
    }

    #[test]
    fn no_rebatch_while_marks_outstanding() {
        let mut p = Parbs::new(ParbsConfig::default(), 2);
        let mut queue = vec![queued(0, 0, 1, 0, 1)];
        p.maintain(0, &mut queue);
        assert!(queue[0].marked);
        // A newer request arriving mid-batch stays unmarked.
        queue.push(queued(1, 1, 5, 1, 1));
        p.maintain(1, &mut queue);
        assert!(!queue[1].marked);
    }
}
