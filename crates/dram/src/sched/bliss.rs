//! BLISS: the blacklisting memory scheduler [Subramanian+, ICCD 2014].
//!
//! BLISS observes that most of the benefit of application-aware scheduling
//! comes from separating *interference-causing* applications from the
//! rest, which needs only a single bit per application: an application
//! that gets `threshold` consecutive requests served is temporarily
//! *blacklisted* (deprioritised); the blacklist is cleared periodically.
//! Compared to PARBS/TCM it needs no per-application ranking, making it
//! much cheaper — the paper cites it (§8) among the schedulers ASM-Mem is
//! orthogonal to.

use asm_simcore::{AppId, Cycle};

use super::{Candidate, QueuedRequest, SchedulerPolicy};

/// BLISS tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlissConfig {
    /// Consecutive served requests after which an application is
    /// blacklisted (the BLISS paper uses 4).
    pub blacklist_threshold: u32,
    /// How often (cycles) the blacklist is cleared (the BLISS paper uses
    /// 10,000).
    pub clear_interval: Cycle,
}

impl Default for BlissConfig {
    fn default() -> Self {
        BlissConfig {
            blacklist_threshold: 4,
            clear_interval: 10_000,
        }
    }
}

/// The BLISS scheduling policy (per channel).
///
/// # Examples
///
/// ```
/// use asm_dram::sched::{Bliss, BlissConfig, SchedulerPolicy};
/// let p = Bliss::new(BlissConfig::default(), 4);
/// assert_eq!(p.name(), "BLISS");
/// ```
#[derive(Debug, Clone)]
pub struct Bliss {
    config: BlissConfig,
    blacklisted: Vec<bool>,
    last_served: Option<AppId>,
    streak: u32,
    next_clear_at: Cycle,
}

impl Bliss {
    /// Creates the policy for `app_count` applications.
    #[must_use]
    pub fn new(config: BlissConfig, app_count: usize) -> Self {
        Bliss {
            config,
            blacklisted: vec![false; app_count],
            last_served: None,
            streak: 0,
            next_clear_at: config.clear_interval,
        }
    }

    /// Whether `app` is currently blacklisted.
    #[must_use]
    pub fn is_blacklisted(&self, app: AppId) -> bool {
        self.blacklisted.get(app.index()).copied().unwrap_or(false)
    }
}

impl SchedulerPolicy for Bliss {
    fn name(&self) -> &'static str {
        "BLISS"
    }

    fn maintain(&mut self, now: Cycle, _queue: &mut [QueuedRequest]) {
        if now >= self.next_clear_at {
            self.blacklisted.fill(false);
            self.next_clear_at = now + self.config.clear_interval;
        }
    }

    fn pick(
        &mut self,
        _now: Cycle,
        queue: &[QueuedRequest],
        candidates: &[Candidate],
    ) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| {
                let q = &queue[c.queue_idx];
                (self.is_blacklisted(q.req.app), !c.row_hit, q.req.arrival)
            })
            .map(|(i, _)| i)
    }

    fn on_completion(&mut self, app: AppId) {
        if self.last_served == Some(app) {
            self.streak += 1;
            if self.streak >= self.config.blacklist_threshold {
                if let Some(b) = self.blacklisted.get_mut(app.index()) {
                    *b = true;
                }
            }
        } else {
            self.last_served = Some(app);
            self.streak = 1;
        }
    }

    fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.usize(self.blacklisted.len());
        for &b in &self.blacklisted {
            w.bool(b);
        }
        w.opt_u64(self.last_served.map(|a| a.index() as u64));
        w.u32(self.streak);
        w.u64(self.next_clear_at);
    }

    fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        let corrupt = |what: &str| PersistError::Corrupt(what.to_owned());
        let n = r.usize()?;
        if n != self.blacklisted.len() {
            return Err(corrupt("blacklist length mismatch"));
        }
        let mut blacklisted = Vec::with_capacity(n);
        for _ in 0..n {
            blacklisted.push(r.bool()?);
        }
        let last_served = r
            .opt_u64()?
            .map(|i| {
                usize::try_from(i)
                    .ok()
                    .filter(|&i| i < n)
                    .map(AppId::new)
                    .ok_or_else(|| corrupt("last-served index out of range"))
            })
            .transpose()?;
        self.blacklisted = blacklisted;
        self.last_served = last_served;
        self.streak = r.u32()?;
        self.next_clear_at = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::{all_candidates, queued};

    #[test]
    fn streak_triggers_blacklist() {
        let mut p = Bliss::new(BlissConfig::default(), 2);
        for _ in 0..4 {
            p.on_completion(AppId::new(0));
        }
        assert!(p.is_blacklisted(AppId::new(0)));
        assert!(!p.is_blacklisted(AppId::new(1)));
    }

    #[test]
    fn interleaved_service_avoids_blacklist() {
        let mut p = Bliss::new(BlissConfig::default(), 2);
        for _ in 0..10 {
            p.on_completion(AppId::new(0));
            p.on_completion(AppId::new(1));
        }
        assert!(!p.is_blacklisted(AppId::new(0)));
        assert!(!p.is_blacklisted(AppId::new(1)));
    }

    #[test]
    fn blacklisted_app_loses_to_row_misses() {
        let mut p = Bliss::new(BlissConfig::default(), 2);
        for _ in 0..4 {
            p.on_completion(AppId::new(0));
        }
        let queue = vec![
            queued(0, 0, 1, 0, 1), // blacklisted, row hit, older
            queued(1, 1, 9, 1, 1), // clean, row miss, newer
        ];
        let cands = all_candidates(&[true, false]);
        let pick = p.pick(0, &queue, &cands).unwrap();
        assert_eq!(cands[pick].queue_idx, 1);
    }

    #[test]
    fn blacklist_clears_periodically() {
        let mut p = Bliss::new(
            BlissConfig {
                blacklist_threshold: 2,
                clear_interval: 100,
            },
            1,
        );
        p.on_completion(AppId::new(0));
        p.on_completion(AppId::new(0));
        assert!(p.is_blacklisted(AppId::new(0)));
        p.maintain(100, &mut []);
        assert!(!p.is_blacklisted(AppId::new(0)));
    }
}
