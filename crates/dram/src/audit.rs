//! Post-hoc timing audit.
//!
//! Production memory simulators ship validation modes (the paper's
//! in-house simulator was validated against DRAMSim2 and Micron's Verilog
//! model). This module provides the equivalent here: when enabled on a
//! [`crate::MemorySystem`], every issued command is recorded, and
//! [`TimingAudit::validate`] replays the log against the timing
//! constraints the controller is supposed to enforce — per-bank service
//! exclusivity, data-bus burst serialisation, tRRD activate spacing, and
//! the tFAW four-activate window.

use std::fmt;

use asm_simcore::Cycle;

use crate::timing::DramTiming;

/// One issued command, as recorded by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditEvent {
    /// Channel the command issued on.
    pub channel: usize,
    /// Bank within the channel.
    pub bank: usize,
    /// Issue cycle.
    pub start: Cycle,
    /// Data-burst completion cycle.
    pub finish: Cycle,
    /// Whether the command required an activate.
    pub activated: bool,
}

/// A violated timing constraint found by [`TimingAudit::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditViolation {
    /// Two commands overlapped at one bank.
    BankOverlap {
        /// The offending channel/bank.
        channel: usize,
        /// Bank index.
        bank: usize,
        /// Start of the overlapping command.
        at: Cycle,
    },
    /// Two data bursts on one channel were closer than the burst time.
    BusOverlap {
        /// The offending channel.
        channel: usize,
        /// Finish time of the second burst.
        at: Cycle,
    },
    /// Two activates on one channel violated tRRD.
    RrdViolation {
        /// The offending channel.
        channel: usize,
        /// Cycle of the second activate.
        at: Cycle,
    },
    /// More than four activates within a tFAW window on one channel.
    FawViolation {
        /// The offending channel.
        channel: usize,
        /// Cycle of the fifth activate.
        at: Cycle,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::BankOverlap { channel, bank, at } => {
                write!(f, "bank overlap at channel {channel} bank {bank}, cycle {at}")
            }
            AuditViolation::BusOverlap { channel, at } => {
                write!(f, "data-bus overlap on channel {channel}, cycle {at}")
            }
            AuditViolation::RrdViolation { channel, at } => {
                write!(f, "tRRD violation on channel {channel}, cycle {at}")
            }
            AuditViolation::FawViolation { channel, at } => {
                write!(f, "tFAW violation on channel {channel}, cycle {at}")
            }
        }
    }
}

/// A log of issued commands plus the validator over it.
#[derive(Debug, Clone, Default)]
pub struct TimingAudit {
    events: Vec<AuditEvent>,
}

impl TimingAudit {
    /// An empty audit log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one issued command (called by the controller).
    pub fn record(&mut self, event: AuditEvent) {
        self.events.push(event);
    }

    /// Number of recorded commands.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replays the log against `timing`, returning every violation found
    /// (empty = the schedule was legal).
    #[must_use]
    pub fn validate(&self, timing: &DramTiming) -> Vec<AuditViolation> {
        let mut violations = Vec::new();
        let mut events = self.events.clone();
        events.sort_by_key(|e| e.start);

        use std::collections::BTreeMap;
        let mut bank_busy_until: BTreeMap<(usize, usize), Cycle> = BTreeMap::new();
        let mut bus_finishes: BTreeMap<usize, Vec<Cycle>> = BTreeMap::new();
        let mut activates: BTreeMap<usize, Vec<Cycle>> = BTreeMap::new();

        for e in &events {
            if let Some(&busy) = bank_busy_until.get(&(e.channel, e.bank)) {
                if e.start < busy {
                    violations.push(AuditViolation::BankOverlap {
                        channel: e.channel,
                        bank: e.bank,
                        at: e.start,
                    });
                }
            }
            bank_busy_until.insert((e.channel, e.bank), e.finish);
            bus_finishes.entry(e.channel).or_default().push(e.finish);
            if e.activated {
                activates.entry(e.channel).or_default().push(e.start);
            }
        }

        for (channel, mut finishes) in bus_finishes {
            finishes.sort_unstable();
            for w in finishes.windows(2) {
                if w[1] - w[0] < timing.burst {
                    violations.push(AuditViolation::BusOverlap {
                        channel,
                        at: w[1],
                    });
                }
            }
        }

        for (channel, mut acts) in activates {
            acts.sort_unstable();
            for w in acts.windows(2) {
                if w[1] - w[0] < timing.trrd {
                    violations.push(AuditViolation::RrdViolation {
                        channel,
                        at: w[1],
                    });
                }
            }
            for w in acts.windows(5) {
                if w[4] - w[0] < timing.tfaw {
                    violations.push(AuditViolation::FawViolation {
                        channel,
                        at: w[4],
                    });
                }
            }
        }

        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(bank: usize, start: Cycle, finish: Cycle, activated: bool) -> AuditEvent {
        AuditEvent {
            channel: 0,
            bank,
            start,
            finish,
            activated,
        }
    }

    fn timing() -> DramTiming {
        DramTiming::ddr3_1333(1)
    }

    #[test]
    fn legal_schedule_passes() {
        let mut audit = TimingAudit::new();
        audit.record(ev(0, 0, 24, true));
        audit.record(ev(1, 4, 28, true)); // tRRD = 4 respected
        audit.record(ev(0, 24, 34, false)); // row hit after bank free
        assert!(audit.validate(&timing()).is_empty());
    }

    #[test]
    fn detects_bank_overlap() {
        let mut audit = TimingAudit::new();
        audit.record(ev(0, 0, 24, true));
        audit.record(ev(0, 10, 34, false));
        let v = audit.validate(&timing());
        assert!(matches!(v[0], AuditViolation::BankOverlap { bank: 0, .. }));
    }

    #[test]
    fn detects_bus_overlap() {
        let mut audit = TimingAudit::new();
        // Different banks, but bursts finish 1 cycle apart (< burst = 4).
        audit.record(ev(0, 0, 24, true));
        audit.record(ev(1, 4, 25, true));
        let v = audit.validate(&timing());
        assert!(v
            .iter()
            .any(|x| matches!(x, AuditViolation::BusOverlap { .. })));
    }

    #[test]
    fn detects_rrd_violation() {
        let mut audit = TimingAudit::new();
        audit.record(ev(0, 0, 24, true));
        audit.record(ev(1, 2, 30, true)); // 2 < tRRD = 4
        let v = audit.validate(&timing());
        assert!(v
            .iter()
            .any(|x| matches!(x, AuditViolation::RrdViolation { .. })));
    }

    #[test]
    fn detects_faw_violation() {
        let mut audit = TimingAudit::new();
        // Five activates in 16 cycles (< tFAW = 20), spaced by tRRD.
        for (i, start) in [0u64, 4, 8, 12, 16].iter().enumerate() {
            audit.record(ev(i % 8, *start, start + 100, true));
        }
        let v = audit.validate(&timing());
        assert!(v
            .iter()
            .any(|x| matches!(x, AuditViolation::FawViolation { .. })));
    }
}
