//! DDR3 timing parameters, expressed in *core* clock cycles.
//!
//! The whole simulator runs on the core clock (5.3 GHz in Table 2); DDR3
//! device timings, specified in memory bus cycles (tCK = 1.5 ns for
//! DDR3-1333), are scaled by the clock ratio once at construction.

use asm_simcore::Cycle;

/// DRAM timing parameters in core cycles.
///
/// The default is DDR3-1333 10-10-10 under a 5.3 GHz core clock, matching
/// Table 2 of the paper (core-to-bus clock ratio ≈ 8).
///
/// # Examples
///
/// ```
/// use asm_dram::DramTiming;
/// let t = DramTiming::ddr3_1333(8);
/// assert_eq!(t.cl, 80);
/// assert_eq!(t.trcd, 80);
/// assert_eq!(t.trp, 80);
/// // A row-buffer hit costs CL + burst; a conflict adds tRP + tRCD.
/// assert!(t.row_conflict_latency() > t.row_hit_latency());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// CAS latency (read command to first data).
    pub cl: Cycle,
    /// RAS-to-CAS delay (activate to read/write).
    pub trcd: Cycle,
    /// Row precharge time.
    pub trp: Cycle,
    /// Minimum time a row must stay open after activation.
    pub tras: Cycle,
    /// Write recovery time (end of write burst to precharge).
    pub twr: Cycle,
    /// Minimum spacing between column commands to the same rank.
    pub tccd: Cycle,
    /// Data burst duration on the bus (BL8 = 4 bus cycles).
    pub burst: Cycle,
    /// Activate-to-activate spacing between different banks of a rank.
    pub trrd: Cycle,
    /// Four-activate window per rank.
    pub tfaw: Cycle,
}

impl DramTiming {
    /// DDR3-1333 (10-10-10) timings scaled by `clock_ratio` core cycles per
    /// memory bus cycle.
    ///
    /// # Panics
    ///
    /// Panics if `clock_ratio` is zero.
    #[must_use]
    pub fn ddr3_1333(clock_ratio: u64) -> Self {
        assert!(clock_ratio > 0, "clock ratio must be positive");
        let r = clock_ratio;
        DramTiming {
            cl: 10 * r,
            trcd: 10 * r,
            trp: 10 * r,
            tras: 24 * r,
            twr: 10 * r,
            tccd: 4 * r,
            burst: 4 * r,
            trrd: 4 * r,
            tfaw: 20 * r,
        }
    }

    /// Latency of a read that hits the open row: CL + burst.
    #[must_use]
    pub fn row_hit_latency(&self) -> Cycle {
        self.cl + self.burst
    }

    /// Latency of a read to a precharged (closed) bank: tRCD + CL + burst.
    #[must_use]
    pub fn row_closed_latency(&self) -> Cycle {
        self.trcd + self.cl + self.burst
    }

    /// Latency of a read that conflicts with a different open row:
    /// tRP + tRCD + CL + burst.
    #[must_use]
    pub fn row_conflict_latency(&self) -> Cycle {
        self.trp + self.trcd + self.cl + self.burst
    }
}

impl Default for DramTiming {
    /// DDR3-1333 under the paper's 5.3 GHz core (ratio 8).
    fn default() -> Self {
        Self::ddr3_1333(8)
    }
}

/// The complete set of timing and geometry parameters a non-cycle-accurate
/// memory model needs, read off a [`crate::DramConfig`] via
/// [`crate::DramConfig::timing_spec`].
///
/// This is the one source of truth for analytical tiers (and future
/// trace-driven backends): instead of duplicating DDR3 constants, they take
/// a `TimingSpec` and derive service times from it, so a change to the
/// simulated device propagates to every tier.
///
/// # Examples
///
/// ```
/// use asm_dram::DramConfig;
/// let spec = DramConfig::default().timing_spec();
/// assert_eq!(spec.channels, 1);
/// assert_eq!(spec.banks, 8);
/// // Sanity: a fully row-hostile stream is slower than a streaming one.
/// assert!(spec.avg_read_latency(0.0) > spec.avg_read_latency(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingSpec {
    /// Device timing in core cycles (tRCD/tRP/CL/tBL and friends).
    pub timing: DramTiming,
    /// Independent channels (each with its own data bus and controller).
    pub channels: usize,
    /// Banks per channel.
    pub banks: usize,
    /// Cache lines per DRAM row (row-buffer reach).
    pub row_lines: u64,
}

impl TimingSpec {
    /// Mean no-contention read latency given the fraction of reads that
    /// hit the open row; misses are costed as row conflicts (open-page
    /// policy keeps rows open, so a non-hit usually finds a stale row).
    #[must_use]
    pub fn avg_read_latency(&self, row_hit_frac: f64) -> f64 {
        let hit = self.timing.row_hit_latency() as f64;
        let conflict = self.timing.row_conflict_latency() as f64;
        row_hit_frac * hit + (1.0 - row_hit_frac) * conflict
    }

    /// Data-bus occupancy per request, per channel: the burst duration
    /// divided across channels. This bounds sustainable throughput — one
    /// request per `burst_slot()` cycles system-wide.
    #[must_use]
    pub fn burst_slot(&self) -> f64 {
        self.timing.burst as f64 / self.channels.max(1) as f64
    }

    /// Mean bank occupancy per request across all banks: how long one
    /// request keeps its bank busy, divided by system bank count. Second
    /// throughput bound (binding for row-hostile streams).
    #[must_use]
    pub fn bank_slot(&self, row_hit_frac: f64) -> f64 {
        let t = &self.timing;
        let hit_busy = t.tccd.max(t.burst) as f64;
        let conflict_busy = (t.trp + t.trcd + t.burst.max(t.tccd)) as f64;
        let busy = row_hit_frac * hit_busy + (1.0 - row_hit_frac) * conflict_busy;
        busy / (self.banks.max(1) * self.channels.max(1)) as f64
    }
}

/// Periodic all-bank refresh parameters (in core cycles).
///
/// Refresh is off by default in [`crate::DramConfig`] — it is
/// application-independent and cancels out of slowdown *ratios* — but can
/// be enabled to study its effect (see the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshConfig {
    /// Refresh interval tREFI.
    pub trefi: Cycle,
    /// Refresh cycle time tRFC (all banks blocked).
    pub trfc: Cycle,
}

impl RefreshConfig {
    /// DDR3 2 Gb device refresh under a 5.3 GHz core:
    /// tREFI = 7.8 µs ≈ 41,000 cycles, tRFC = 160 ns ≈ 850 cycles.
    #[must_use]
    pub fn ddr3_2gb() -> Self {
        RefreshConfig {
            trefi: 41_000,
            trfc: 850,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let t = DramTiming::default();
        assert_eq!(t, DramTiming::ddr3_1333(8));
        // 10-10-10 at ratio 8.
        assert_eq!(t.cl, 80);
        assert_eq!(t.trcd, 80);
        assert_eq!(t.trp, 80);
    }

    #[test]
    fn latency_ordering() {
        let t = DramTiming::default();
        assert!(t.row_hit_latency() < t.row_closed_latency());
        assert!(t.row_closed_latency() < t.row_conflict_latency());
        assert_eq!(t.row_conflict_latency() - t.row_closed_latency(), t.trp);
    }

    #[test]
    fn scaling_is_linear() {
        let a = DramTiming::ddr3_1333(1);
        let b = DramTiming::ddr3_1333(4);
        assert_eq!(b.cl, 4 * a.cl);
        assert_eq!(b.tfaw, 4 * a.tfaw);
    }

    #[test]
    #[should_panic(expected = "clock ratio")]
    fn zero_ratio_rejected() {
        let _ = DramTiming::ddr3_1333(0);
    }

    #[test]
    fn timing_spec_latency_bounds() {
        let spec = TimingSpec {
            timing: DramTiming::default(),
            channels: 1,
            banks: 8,
            row_lines: 128,
        };
        // avg latency interpolates between the hit and conflict endpoints.
        assert!(
            asm_metrics_free_approx(spec.avg_read_latency(1.0), spec.timing.row_hit_latency() as f64)
        );
        assert!(asm_metrics_free_approx(
            spec.avg_read_latency(0.0),
            spec.timing.row_conflict_latency() as f64
        ));
        // Two channels halve the per-request bus slot.
        let two = TimingSpec { channels: 2, ..spec };
        assert!(asm_metrics_free_approx(two.burst_slot() * 2.0, spec.burst_slot()));
        // Bank occupancy shrinks with banks and with row locality.
        assert!(spec.bank_slot(0.0) > spec.bank_slot(1.0));
    }

    /// Local epsilon compare (this crate does not depend on asm-metrics).
    fn asm_metrics_free_approx(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }
}
