//! The memory controller front-end: request buffers, bank/bus timing
//! enforcement, write draining, epoch prioritisation, and completion
//! delivery.

use std::collections::BinaryHeap;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use asm_simcore::{AppId, Cycle, LineAddr};

use crate::accounting::ChannelAccounting;
use crate::bank::Bank;
use crate::mapping::AddressMapping;
use crate::request::{Completion, MemRequest};
use crate::sched::{Candidate, QueuedRequest, SchedulerKind, SchedulerPolicy};
use crate::timing::DramTiming;

/// Configuration of the main-memory system.
///
/// Defaults match Table 2: DDR3-1333 (10-10-10), 1 channel, 1 rank/channel,
/// 8 banks/rank, 8 KB rows, 128-entry request buffer per controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Device timing (in core cycles).
    pub timing: DramTiming,
    /// Number of channels (each with its own controller).
    pub channels: usize,
    /// Banks per channel (single rank per channel).
    pub banks: usize,
    /// Cache lines per row (8 KB row / 64 B line = 128).
    pub row_lines: u64,
    /// Read request buffer entries per controller.
    pub read_queue_capacity: usize,
    /// Write buffer entries per controller.
    pub write_queue_capacity: usize,
    /// Write occupancy at which the controller switches to draining writes.
    pub write_drain_high: usize,
    /// Write occupancy at which draining stops.
    pub write_drain_low: usize,
    /// Periodic all-bank refresh; `None` (the default) disables refresh,
    /// which is application-independent and cancels out of slowdown
    /// ratios.
    pub refresh: Option<crate::timing::RefreshConfig>,
    /// Application-aware bank partitioning; `None` (the default) lets every
    /// application use every bank.
    pub bank_partition: Option<crate::bank_partition::BankPartition>,
    /// Row-buffer management policy (open-page by default, per Table 2).
    pub row_policy: crate::bank::RowPolicy,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            timing: DramTiming::default(),
            channels: 1,
            banks: 8,
            row_lines: 128,
            read_queue_capacity: 128,
            write_queue_capacity: 64,
            write_drain_high: 48,
            write_drain_low: 8,
            refresh: None,
            bank_partition: None,
            row_policy: crate::bank::RowPolicy::Open,
        }
    }
}

impl DramConfig {
    /// Returns the address mapping implied by this configuration.
    #[must_use]
    pub fn mapping(&self) -> AddressMapping {
        AddressMapping::new(self.channels, self.banks, self.row_lines)
    }

    /// The timing/geometry parameters of this configuration, packaged for
    /// consumers that model memory service without the event loop (the
    /// analytic tier, future trace-driven backends). One source of truth:
    /// derived from the same fields the cycle-accurate controller enforces.
    #[must_use]
    pub fn timing_spec(&self) -> crate::timing::TimingSpec {
        crate::timing::TimingSpec {
            timing: self.timing,
            channels: self.channels,
            banks: self.banks,
            row_lines: self.row_lines,
        }
    }
}

/// Error returned by [`MemorySystem::enqueue`] when the target channel's
/// request buffer is full; the caller should stall and retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFullError {
    /// The channel whose buffer was full.
    pub channel: usize,
    /// Whether the rejected request was a write.
    pub is_write: bool,
}

impl fmt::Display for QueueFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} queue of channel {} is full",
            if self.is_write { "write" } else { "read" },
            self.channel
        )
    }
}

impl Error for QueueFullError {}

/// Per-application service statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppServiceStats {
    /// Reads completed.
    pub reads: u64,
    /// Reads that hit the open row.
    pub row_hits: u64,
    /// Sum of total read latencies (arrival to data).
    pub total_read_latency: Cycle,
}

#[derive(Debug)]
struct InFlight {
    finish: Cycle,
    seq: u64,
    completion: Completion,
    is_write: bool,
    is_demand: bool,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.finish == other.finish && self.seq == other.seq
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse order: the heap becomes a min-heap on (finish, seq).
        (other.finish, other.seq).cmp(&(self.finish, self.seq))
    }
}

/// The cycle value used for "nothing to schedule until an event arrives".
const IDLE: Cycle = Cycle::MAX;

#[derive(Debug)]
struct Channel {
    banks: Vec<Bank>,
    read_queue: Vec<QueuedRequest>,
    write_queue: VecDeque<QueuedRequest>,
    policy: Box<dyn SchedulerPolicy>,
    bus_free_at: Cycle,
    /// Timestamps of up to the last four activations (for tFAW).
    activates: VecDeque<Cycle>,
    last_activate: Option<Cycle>,
    draining_writes: bool,
    in_flight: BinaryHeap<InFlight>,
    accounting: ChannelAccounting,
    next_try: Cycle,
    next_refresh_at: Cycle,
    /// Read-queue indices per bank, in enqueue order. Invariant: the lists
    /// partition `0..read_queue.len()`; nothing but
    /// [`push_read`](Self::push_read)/[`remove_read`](Self::remove_read)
    /// may change the queue's length or element positions (policies'
    /// `maintain` mutates fields in place only).
    bank_members: Vec<Vec<usize>>,
    /// Per bank: how many member requests would hit the open row. Lets the
    /// scheduler skip a blocked bank in O(1) while still computing its
    /// exact wake-up cycle (row hits wait only for the bank, misses also
    /// for tRRD/tFAW).
    bank_row_hits: Vec<usize>,
    /// Reused candidate buffers: scheduling is per-cycle hot, so the
    /// controller never allocates on the tick path.
    cand_scratch: Vec<Candidate>,
    prio_scratch: Vec<Candidate>,
    /// Cumulative commands issued per bank that hit the open row (reads
    /// and writes). Unlike `bank_row_hits` (a transient queue-content
    /// count), these only grow; telemetry reads them at end of run.
    row_hit_total: Vec<u64>,
    /// Cumulative commands per bank that needed an activate (row miss /
    /// closed row).
    row_miss_total: Vec<u64>,
}

impl Channel {
    fn new(config: &DramConfig, policy: Box<dyn SchedulerPolicy>, app_count: usize) -> Self {
        Channel {
            banks: vec![Bank::new(); config.banks],
            read_queue: Vec::with_capacity(config.read_queue_capacity),
            write_queue: VecDeque::with_capacity(config.write_queue_capacity),
            policy,
            bus_free_at: 0,
            activates: VecDeque::with_capacity(4),
            last_activate: None,
            draining_writes: false,
            in_flight: BinaryHeap::new(),
            accounting: ChannelAccounting::new(app_count),
            next_try: IDLE,
            next_refresh_at: config.refresh.map_or(IDLE, |r| r.trefi),
            bank_members: vec![Vec::new(); config.banks],
            bank_row_hits: vec![0; config.banks],
            cand_scratch: Vec::with_capacity(config.read_queue_capacity),
            prio_scratch: Vec::with_capacity(config.read_queue_capacity),
            row_hit_total: vec![0; config.banks],
            row_miss_total: vec![0; config.banks],
        }
    }

    /// Appends a read to the queue, maintaining the per-bank index lists
    /// and row-hit counts.
    fn push_read(&mut self, entry: QueuedRequest) {
        let b = entry.loc.bank;
        let hit = self.banks[b].open_row() == Some(entry.loc.row);
        self.read_queue.push(entry);
        self.bank_members[b].push(self.read_queue.len() - 1);
        self.bank_row_hits[b] += usize::from(hit);
    }

    /// Removes and returns `read_queue[idx]`, maintaining the per-bank
    /// index lists across the `swap_remove` (the displaced last element's
    /// index is rewritten in its bank's list).
    ///
    /// Callers must re-derive the affected bank's row-hit count afterwards
    /// (every call site issues on that bank, which can change its open row,
    /// so they call [`recompute_row_hits`](Self::recompute_row_hits)).
    fn remove_read(&mut self, idx: usize) -> QueuedRequest {
        let removed = self.read_queue.swap_remove(idx);
        let members = &mut self.bank_members[removed.loc.bank];
        let pos = members
            .iter()
            .position(|&i| i == idx)
            .expect("per-bank lists index every queued read exactly once");
        members.remove(pos);
        let moved_from = self.read_queue.len();
        if idx < moved_from {
            let members = &mut self.bank_members[self.read_queue[idx].loc.bank];
            let pos = members
                .iter()
                .position(|&i| i == moved_from)
                .expect("per-bank lists index every queued read exactly once");
            members[pos] = idx;
        }
        removed
    }

    /// Recounts how many of bank `b`'s queued reads hit its open row.
    /// Called after any command that may change the bank's open row.
    fn recompute_row_hits(&mut self, b: usize) {
        self.bank_row_hits[b] = match self.banks[b].open_row() {
            Some(row) => self.bank_members[b]
                .iter()
                .filter(|&&i| self.read_queue[i].loc.row == row)
                .count(),
            None => 0,
        };
    }

    /// Earliest cycle at which an *activating* command may issue, honouring
    /// tRRD and tFAW for the channel's single rank.
    fn activation_earliest(&self, timing: &DramTiming) -> Cycle {
        let mut earliest = 0;
        if let Some(last) = self.last_activate {
            earliest = earliest.max(last + timing.trrd);
        }
        if self.activates.len() == 4 {
            earliest = earliest.max(self.activates[0] + timing.tfaw);
        }
        earliest
    }

    /// Earliest cycle at which queued request `q` could be scheduled.
    ///
    /// Reference implementation: the scheduling loops compute the same
    /// value per bank (see `attempt_issue`); tests cross-check the two.
    #[cfg(test)]
    fn earliest_for(&self, timing: &DramTiming, q: &QueuedRequest) -> Cycle {
        let bank = &self.banks[q.loc.bank];
        let mut earliest = bank.ready_at();
        if bank.needs_activate(q.loc.row) {
            earliest = earliest.max(self.activation_earliest(timing));
        }
        earliest
    }

    fn record_activate(&mut self, now: Cycle) {
        if self.activates.len() == 4 {
            self.activates.pop_front();
        }
        self.activates.push_back(now);
        self.last_activate = Some(now);
    }

    fn advance_accounting(&mut self, now: Cycle) {
        self.accounting.advance(now, &self.banks);
    }

    /// Serializes the channel's dynamic state. The in-flight heap is
    /// written sorted by `(finish, seq)`: iteration order over a
    /// `BinaryHeap` is arbitrary, pop order is total on that key, so the
    /// sorted form is canonical and the rebuilt heap pops identically.
    /// `bank_members` is saved explicitly — its list order encodes
    /// enqueue history that `swap_remove` makes unrecoverable from the
    /// queue alone — while `bank_row_hits` and the scratch buffers are
    /// derived and rebuilt on restore.
    fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.usize(self.banks.len());
        for b in &self.banks {
            b.save_state(w);
        }
        w.usize(self.read_queue.len());
        for q in &self.read_queue {
            q.save_state(w);
        }
        w.usize(self.write_queue.len());
        for q in &self.write_queue {
            q.save_state(w);
        }
        self.policy.save_state(w);
        w.u64(self.bus_free_at);
        w.usize(self.activates.len());
        for &c in &self.activates {
            w.u64(c);
        }
        w.opt_u64(self.last_activate);
        w.bool(self.draining_writes);
        let mut flights: Vec<&InFlight> = self.in_flight.iter().collect();
        flights.sort_by_key(|f| (f.finish, f.seq));
        w.usize(flights.len());
        for f in flights {
            w.u64(f.finish);
            w.u64(f.seq);
            w.u64(f.completion.id);
            w.u64(f.completion.line.raw());
            w.u64(f.completion.app.index() as u64);
            w.u64(f.completion.arrival);
            w.u64(f.completion.service_start);
            w.u64(f.completion.finish);
            w.u64(f.completion.interference_cycles);
            w.bool(f.completion.row_hit);
            for k in 0..3 {
                w.u64(f.completion.cause[k]);
            }
            w.u64(f.completion.induced);
            // asm-lint: allow(R5): AppId slot indices widen losslessly to u64
            w.opt_u64(f.completion.induced_by.map(|a| a.index() as u64));
            w.bool(f.is_write);
            w.bool(f.is_demand);
        }
        self.accounting.save_state(w);
        w.u64(self.next_try);
        w.u64(self.next_refresh_at);
        for members in &self.bank_members {
            w.usize(members.len());
            for &i in members {
                w.usize(i);
            }
        }
        w.u64_slice(&self.row_hit_total);
        w.u64_slice(&self.row_miss_total);
    }

    /// Restores state captured by [`save_state`](Self::save_state) into a
    /// channel built from the same configuration. Validates every index
    /// and length against the channel's structure before committing.
    fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
        app_count: usize,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        let corrupt = |what: &str| PersistError::Corrupt(what.to_owned());
        let read_app = |i: u64| {
            usize::try_from(i)
                .ok()
                .filter(|&i| i < app_count)
                .map(AppId::new)
                .ok_or_else(|| corrupt("application index out of range"))
        };
        let banks = self.banks.len();
        if r.usize()? != banks {
            return Err(corrupt("bank count mismatch"));
        }
        for b in &mut self.banks {
            b.restore_state(r, app_count)?;
        }
        let check_entry = |q: &QueuedRequest| {
            if q.loc.bank >= banks {
                return Err(corrupt("queued request bank out of range"));
            }
            if q.req.app.index() >= app_count {
                return Err(corrupt("queued request app out of range"));
            }
            Ok(())
        };
        let n_read = r.checked_len(8)?;
        let mut read_queue = Vec::with_capacity(n_read);
        for _ in 0..n_read {
            let q = QueuedRequest::restore_from(r)?;
            check_entry(&q)?;
            read_queue.push(q);
        }
        let n_write = r.checked_len(8)?;
        let mut write_queue = VecDeque::with_capacity(n_write);
        for _ in 0..n_write {
            let q = QueuedRequest::restore_from(r)?;
            check_entry(&q)?;
            write_queue.push_back(q);
        }
        self.policy.restore_state(r)?;
        let bus_free_at = r.u64()?;
        let n_act = r.checked_len(8)?;
        if n_act > 4 {
            return Err(corrupt("too many recorded activations"));
        }
        let mut activates = VecDeque::with_capacity(4);
        for _ in 0..n_act {
            activates.push_back(r.u64()?);
        }
        let last_activate = r.opt_u64()?;
        let draining_writes = r.bool()?;
        let n_flight = r.checked_len(8)?;
        let mut in_flight = BinaryHeap::with_capacity(n_flight);
        for _ in 0..n_flight {
            let finish = r.u64()?;
            let seq = r.u64()?;
            let mut completion = Completion {
                id: r.u64()?,
                line: asm_simcore::LineAddr::new(r.u64()?),
                app: read_app(r.u64()?)?,
                arrival: r.u64()?,
                service_start: r.u64()?,
                finish: r.u64()?,
                interference_cycles: r.u64()?,
                row_hit: r.bool()?,
                cause: [0; 3],
                induced: 0,
                induced_by: None,
            };
            for k in 0..3 {
                completion.cause[k] = r.u64()?;
            }
            completion.induced = r.u64()?;
            completion.induced_by = r.opt_u64()?.map(|i| read_app(i)).transpose()?;
            if completion.finish != finish {
                return Err(corrupt("in-flight completion finish mismatch"));
            }
            let is_write = r.bool()?;
            let is_demand = r.bool()?;
            in_flight.push(InFlight {
                finish,
                seq,
                completion,
                is_write,
                is_demand,
            });
        }
        self.accounting.restore_state(r)?;
        let next_try = r.u64()?;
        let next_refresh_at = r.u64()?;
        let mut bank_members = vec![Vec::new(); banks];
        let mut seen = vec![false; read_queue.len()];
        for (b, members) in bank_members.iter_mut().enumerate() {
            let n = r.checked_len(8)?;
            members.reserve(n);
            for _ in 0..n {
                let i = r.usize()?;
                if i >= read_queue.len() || seen[i] || read_queue[i].loc.bank != b {
                    return Err(corrupt("bank member lists are not a partition"));
                }
                seen[i] = true;
                members.push(i);
            }
        }
        if !seen.iter().all(|&s| s) {
            return Err(corrupt("queued read missing from bank lists"));
        }
        let row_hit_total = r.u64_vec()?;
        let row_miss_total = r.u64_vec()?;
        if row_hit_total.len() != banks || row_miss_total.len() != banks {
            return Err(corrupt("row-outcome counter length mismatch"));
        }
        self.read_queue = read_queue;
        self.write_queue = write_queue;
        self.bus_free_at = bus_free_at;
        self.activates = activates;
        self.last_activate = last_activate;
        self.draining_writes = draining_writes;
        self.in_flight = in_flight;
        self.next_try = next_try;
        self.next_refresh_at = next_refresh_at;
        self.bank_members = bank_members;
        self.row_hit_total = row_hit_total;
        self.row_miss_total = row_miss_total;
        for b in 0..banks {
            self.recompute_row_hits(b);
        }
        Ok(())
    }
}

/// The main-memory system: one controller per channel, a pluggable
/// scheduling policy, and the epoch-priority hook ASM relies on.
///
/// Call [`tick`](Self::tick) exactly once per core cycle with
/// monotonically increasing `now`; completions of reads are appended to the
/// output vector.
///
/// # Examples
///
/// ```
/// use asm_dram::{DramConfig, MemRequest, MemorySystem, SchedulerKind};
/// use asm_simcore::{AppId, LineAddr};
///
/// let mut mem = MemorySystem::new(DramConfig::default(), SchedulerKind::FrFcfs, 1);
/// mem.enqueue(MemRequest::read(7, LineAddr::new(0), AppId::new(0), 0)).expect("fresh queue has free capacity");
/// let mut done = Vec::new();
/// let mut now = 0;
/// while done.is_empty() {
///     mem.tick(now, &mut done);
///     now += 1;
/// }
/// assert_eq!(done[0].id, 7);
/// assert!(done[0].finish <= now);
/// ```
#[derive(Debug)]
pub struct MemorySystem {
    config: DramConfig,
    mapping: AddressMapping,
    channels: Vec<Channel>,
    priority_app: Option<AppId>,
    app_stats: Vec<AppServiceStats>,
    seq: u64,
    last_tick: Option<Cycle>,
    audit: Option<crate::audit::TimingAudit>,
    /// Monotonic count of state mutations (enqueues, command issues,
    /// completion pops). Drivers compare snapshots to prove "nothing that
    /// could clear a core's stall has changed" (see
    /// [`mutation_count`](Self::mutation_count)).
    mutations: u64,
}

impl MemorySystem {
    /// Creates the memory system with `app_count` applications and the
    /// given scheduling policy (seeded deterministically).
    #[must_use]
    pub fn new(config: DramConfig, scheduler: SchedulerKind, app_count: usize) -> Self {
        Self::with_seed(config, scheduler, app_count, 0x5EED)
    }

    /// Like [`new`](Self::new) but with an explicit seed for stochastic
    /// policies (TCM's shuffling).
    #[must_use]
    pub fn with_seed(
        config: DramConfig,
        scheduler: SchedulerKind,
        app_count: usize,
        seed: u64,
    ) -> Self {
        let mapping = config.mapping();
        let channels = (0..config.channels)
            .map(|ch| {
                Channel::new(
                    &config,
                    scheduler.build(app_count, seed ^ (ch as u64).wrapping_mul(0x9E37)),
                    app_count,
                )
            })
            .collect();
        MemorySystem {
            config,
            mapping,
            channels,
            priority_app: None,
            app_stats: vec![AppServiceStats::default(); app_count],
            seq: 0,
            last_tick: None,
            audit: None,
            mutations: 0,
        }
    }

    /// A counter that increases whenever the memory system's externally
    /// observable state changes: a request enqueued, a command issued (a
    /// queue slot freed), or a completion popped. While two snapshots of
    /// this counter are equal, answers from [`can_accept_read`]
    /// (Self::can_accept_read) and friends are guaranteed unchanged — the
    /// skip loop uses this to elide provably identical stall retries
    /// (DESIGN.md §8).
    #[must_use]
    pub fn mutation_count(&self) -> u64 {
        self.mutations
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The address mapping in force.
    #[must_use]
    pub fn mapping(&self) -> AddressMapping {
        self.mapping
    }

    /// Whether the read buffer for `line`'s channel can accept a request.
    #[must_use]
    pub fn can_accept_read(&self, line: LineAddr) -> bool {
        let ch = self.mapping.decode(line).channel;
        self.channels[ch].read_queue.len() < self.config.read_queue_capacity
    }

    /// Whether the write buffer for `line`'s channel can accept a request.
    #[must_use]
    pub fn can_accept_write(&self, line: LineAddr) -> bool {
        let ch = self.mapping.decode(line).channel;
        self.channels[ch].write_queue.len() < self.config.write_queue_capacity
    }

    /// Submits a request.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFullError`] if the target channel's buffer is full;
    /// the request is not enqueued and the caller should stall and retry.
    pub fn enqueue(&mut self, req: MemRequest) -> Result<(), QueueFullError> {
        let mut loc = self.mapping.decode(req.line);
        if let Some(p) = &self.config.bank_partition {
            loc = p.remap(req.app, loc);
        }
        let cap_r = self.config.read_queue_capacity;
        let cap_w = self.config.write_queue_capacity;
        let ch = &mut self.channels[loc.channel];
        // Advance before snapshotting so the request is not charged for
        // any interval preceding its arrival.
        ch.advance_accounting(req.arrival);
        let entry = QueuedRequest {
            req,
            loc,
            marked: false,
            interference_snap: ch.accounting.interference_snapshot(loc.bank, req.app),
        };
        if req.is_write {
            if ch.write_queue.len() >= cap_w {
                return Err(QueueFullError {
                    channel: loc.channel,
                    is_write: true,
                });
            }
            ch.write_queue.push_back(entry);
        } else {
            if ch.read_queue.len() >= cap_r {
                return Err(QueueFullError {
                    channel: loc.channel,
                    is_write: false,
                });
            }
            ch.push_read(entry);
            if req.is_demand_read() {
                ch.accounting.on_read_enqueued(req.app, loc.bank);
            }
        }
        ch.next_try = ch.next_try.min(req.arrival);
        self.mutations += 1;
        Ok(())
    }

    /// Sets (or clears) the highest-priority application — the epoch-owner
    /// hook of §3.2 step 1. Takes effect immediately.
    pub fn set_priority_app(&mut self, now: Cycle, app: Option<AppId>) {
        self.priority_app = app;
        for ch in &mut self.channels {
            ch.advance_accounting(now);
            ch.accounting.set_priority_app(app);
            ch.next_try = ch.next_try.min(now);
        }
    }

    /// The application currently holding highest priority, if any.
    #[must_use]
    pub fn priority_app(&self) -> Option<AppId> {
        self.priority_app
    }

    /// Accumulated §4.3 queueing cycles for `app` across all channels.
    #[must_use]
    pub fn queueing_cycles(&self, app: AppId) -> Cycle {
        self.channels
            .iter()
            .map(|ch| ch.accounting.queueing_cycles(app))
            .sum()
    }

    /// Clears queueing-cycle counters on all channels.
    pub fn reset_queueing_cycles(&mut self) {
        for ch in &mut self.channels {
            ch.accounting.reset_queueing_cycles();
        }
    }

    /// Starts recording every issued command for post-hoc timing
    /// validation (see [`crate::TimingAudit`]). Adds one Vec push per
    /// command; intended for tests and validation runs.
    pub fn enable_audit(&mut self) {
        self.audit = Some(crate::audit::TimingAudit::new());
    }

    /// Turns on ground-truth attribution counters on every channel. Call
    /// once, before simulation starts (and before restoring a snapshot
    /// that was captured with attribution on).
    pub fn enable_attribution(&mut self) {
        for ch in &mut self.channels {
            ch.accounting.enable_attrib();
        }
    }

    /// Whether attribution counters are being maintained.
    #[must_use]
    pub fn attribution_enabled(&self) -> bool {
        self.channels
            .first()
            .is_some_and(|ch| ch.accounting.attrib_enabled())
    }

    /// Sums the cumulative victim × offender × busy-kind blame counters
    /// across channels into `out` (length `app_count² × 3`, flattened
    /// `(victim * app_count + offender) * 3 + kind`). Deliberately does
    /// *not* advance the lazy accounting: advancing here would split the
    /// §4.3 queueing-cycle accrual intervals differently from an
    /// attribution-off run and perturb its floating-point sums. The
    /// not-yet-accrued tail simply lands in the next reading — a
    /// deterministic, documented smear (DESIGN.md §13).
    pub fn attrib_blame_into(&self, app_count: usize, out: &mut [Cycle]) {
        debug_assert_eq!(out.len(), app_count * app_count * 3);
        out.fill(0);
        for ch in &self.channels {
            let blame = ch.accounting.blame();
            for (slot, v) in out.iter_mut().zip(blame.iter()) {
                *slot += v;
            }
        }
    }

    /// Reconciliation check between the central blame counters and the
    /// per-request snapshot accounting (test/debug API — this *does*
    /// advance the lazy accounting to `now`). Returns, per application,
    /// `(blame_row_total, materialized + pending)`: the two sides of the
    /// identity "every blamed cycle is a demand read's interference,
    /// settled at issue or still accruing in the queue". Equal whenever
    /// attribution was enabled from cycle 0.
    pub fn attrib_reconciliation(&mut self, now: Cycle) -> Vec<(Cycle, Cycle)> {
        let n = self.app_stats.len();
        let mut out = vec![(0, 0); n];
        for ch in &mut self.channels {
            ch.advance_accounting(now);
            let blame = ch.accounting.blame();
            for v in 0..n {
                let row: Cycle = (0..n).map(|o| (0..3).map(|k| blame[(v * n + o) * 3 + k]).sum::<Cycle>()).sum();
                out[v].0 += row;
                out[v].1 += ch.accounting.materialized().get(v).copied().unwrap_or(0);
            }
            for q in &ch.read_queue {
                if q.req.is_demand_read() {
                    out[q.req.app.index()].1 += ch
                        .accounting
                        .interference_since(q.interference_snap, q.loc.bank, q.req.app);
                }
            }
        }
        out
    }

    /// The audit log, when auditing is enabled.
    #[must_use]
    pub fn audit(&self) -> Option<&crate::audit::TimingAudit> {
        self.audit.as_ref()
    }

    /// Cumulative `(row_hits, row_misses)` per bank, flattened
    /// channel-major (`channel * banks + bank`). Counts every issued
    /// command — reads and writes — against the row-buffer state it met.
    #[must_use]
    pub fn bank_row_outcomes(&self) -> Vec<(u64, u64)> {
        self.channels
            .iter()
            .flat_map(|ch| {
                ch.row_hit_total
                    .iter()
                    .zip(&ch.row_miss_total)
                    .map(|(&h, &m)| (h, m))
            })
            .collect()
    }

    /// Completed-read statistics for `app`.
    #[must_use]
    pub fn app_stats(&self, app: AppId) -> AppServiceStats {
        self.app_stats.get(app.index()).copied().unwrap_or_default()
    }

    /// Serializes all dynamic controller state (queues, banks, in-flight
    /// commands, policy state, accounting) for checkpointing. The
    /// configuration, address mapping and audit log are excluded: restore
    /// targets are built from the same configuration, and auditing is a
    /// test-only diagnostic.
    pub fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.usize(self.channels.len());
        for ch in &self.channels {
            ch.save_state(w);
        }
        w.opt_u64(self.priority_app.map(|a| a.index() as u64));
        w.usize(self.app_stats.len());
        for s in &self.app_stats {
            w.u64(s.reads);
            w.u64(s.row_hits);
            w.u64(s.total_read_latency);
        }
        w.u64(self.seq);
        w.opt_u64(self.last_tick);
        w.u64(self.mutations);
    }

    /// Restores state captured by [`save_state`](Self::save_state) into a
    /// memory system built with the same configuration, scheduler and
    /// application count. Subsequent [`tick`](Self::tick)s reproduce the
    /// original run bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates reader errors; `Corrupt` when the stored state does not
    /// fit this system's structure.
    pub fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        let corrupt = |what: &str| PersistError::Corrupt(what.to_owned());
        let app_count = self.app_stats.len();
        if r.usize()? != self.channels.len() {
            return Err(corrupt("channel count mismatch"));
        }
        for ch in &mut self.channels {
            ch.restore_state(r, app_count)?;
        }
        self.priority_app = r
            .opt_u64()?
            .map(|i| {
                usize::try_from(i)
                    .ok()
                    .filter(|&i| i < app_count)
                    .map(AppId::new)
                    .ok_or_else(|| corrupt("priority app index out of range"))
            })
            .transpose()?;
        if r.usize()? != app_count {
            return Err(corrupt("app stats length mismatch"));
        }
        for s in &mut self.app_stats {
            s.reads = r.u64()?;
            s.row_hits = r.u64()?;
            s.total_read_latency = r.u64()?;
        }
        self.seq = r.u64()?;
        self.last_tick = r.opt_u64()?;
        self.mutations = r.u64()?;
        Ok(())
    }

    /// Total reads currently outstanding (queued or in flight) for `app`.
    #[must_use]
    pub fn outstanding_reads(&self, app: AppId) -> u64 {
        self.channels
            .iter()
            .map(|ch| ch.accounting.outstanding_reads(app))
            .sum()
    }

    /// The next cycle at which [`tick`](Self::tick) could change any
    /// state: the earliest in-flight completion, pending scheduler retry
    /// (`next_try`, meaningful only while a queue is non-empty), or
    /// refresh deadline across all channels. `None` means the memory
    /// system is inert until the next [`enqueue`](Self::enqueue).
    ///
    /// Ticking at any cycle strictly between `now` and the returned cycle
    /// is a no-op: completions pop at exactly `finish`, refresh fires at
    /// exactly `next_refresh_at`, and `attempt_issue` only runs once `now`
    /// reaches `next_try` — so a driver that jumps the clock straight to
    /// this cycle reproduces the per-cycle run bit for bit (DESIGN.md §8).
    #[must_use]
    #[inline]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut next = IDLE;
        for ch in &self.channels {
            if let Some(entry) = ch.in_flight.peek() {
                next = next.min(entry.finish);
            }
            if !ch.read_queue.is_empty() || !ch.write_queue.is_empty() {
                next = next.min(ch.next_try);
            }
            next = next.min(ch.next_refresh_at);
        }
        (next != IDLE).then(|| next.max(now + 1))
    }

    /// Advances the memory system to cycle `now`, appending read
    /// completions to `out`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if called with a non-monotonic `now`.
    pub fn tick(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        debug_assert!(
            self.last_tick.is_none_or(|t| now >= t),
            "tick must be called with monotonically increasing cycles"
        );
        self.last_tick = Some(now);

        for ch_idx in 0..self.channels.len() {
            self.maybe_refresh(ch_idx, now);
            self.pop_completions(ch_idx, now, out);
            let retry = {
                let ch = &self.channels[ch_idx];
                now >= ch.next_try && (!ch.read_queue.is_empty() || !ch.write_queue.is_empty())
            };
            if retry {
                self.attempt_issue(ch_idx, now);
            }
        }
    }

    /// Performs an all-bank refresh when tREFI elapses: every bank is
    /// blocked for tRFC with its row closed, and no application is charged
    /// interference for the gap.
    fn maybe_refresh(&mut self, ch_idx: usize, now: Cycle) {
        let Some(refresh) = self.config.refresh else {
            return;
        };
        let ch = &mut self.channels[ch_idx];
        if now < ch.next_refresh_at {
            return;
        }
        ch.advance_accounting(now);
        let until = now + refresh.trfc;
        for bank in &mut ch.banks {
            bank.refresh_until(until);
        }
        // Refresh closes every row, so no queued read can be a hit.
        ch.bank_row_hits.fill(0);
        ch.bus_free_at = ch.bus_free_at.max(until);
        ch.next_refresh_at = now + refresh.trefi;
    }

    fn pop_completions(&mut self, ch_idx: usize, now: Cycle, out: &mut Vec<Completion>) {
        let ch = &mut self.channels[ch_idx];
        let any_done = ch.in_flight.peek().is_some_and(|entry| entry.finish <= now);
        if !any_done {
            return;
        }
        ch.advance_accounting(now);
        while let Some(entry) = ch.in_flight.peek() {
            if entry.finish > now {
                break;
            }
            let entry = ch.in_flight.pop().expect("peeked entry");
            if !entry.is_write {
                let c = entry.completion;
                ch.policy.on_completion(c.app);
                if entry.is_demand {
                    ch.accounting.on_read_completed(c.app);
                }
                let stats = &mut self.app_stats[c.app.index()];
                stats.reads += 1;
                stats.row_hits += u64::from(c.row_hit);
                stats.total_read_latency += c.total_latency();
                out.push(c);
            }
            // A bank just freed: scheduling may now be possible.
            ch.next_try = now;
            self.mutations += 1;
        }
    }

    fn attempt_issue(&mut self, ch_idx: usize, now: Cycle) {
        let timing = self.config.timing;
        let high = self.config.write_drain_high;
        let low = self.config.write_drain_low;
        let ch = &mut self.channels[ch_idx];

        ch.advance_accounting(now);

        // Write-drain hysteresis.
        if ch.draining_writes {
            if ch.write_queue.len() <= low {
                ch.draining_writes = false;
            }
        } else if ch.write_queue.len() >= high {
            ch.draining_writes = true;
        }
        let write_mode =
            ch.draining_writes || (ch.read_queue.is_empty() && !ch.write_queue.is_empty());

        if write_mode {
            if Self::issue_write(
                ch,
                ch_idx,
                self.audit.as_mut(),
                &timing,
                self.config.row_policy,
                now,
                low,
            ) {
                self.mutations += 1;
            }
            return;
        }

        // Collect bank-ready read candidates, bank by bank. A blocked bank
        // is skipped in O(1): `bank_row_hits` tells us — without touching
        // its requests — whether its earliest schedulable cycle is bounded
        // by the bank alone (some member row-hits) or also by tRRD/tFAW
        // (all members need an activate). The scratch buffers are reused
        // across ticks so this path never allocates.
        ch.policy.maintain(now, &mut ch.read_queue);
        let mut candidates = std::mem::take(&mut ch.cand_scratch);
        let mut priority_candidates = std::mem::take(&mut ch.prio_scratch);
        candidates.clear();
        priority_candidates.clear();
        let act_ch = ch.activation_earliest(&timing);
        let mut earliest_any = IDLE;
        for b in 0..ch.banks.len() {
            if ch.bank_members[b].is_empty() {
                continue;
            }
            let bank = &ch.banks[b];
            let ready = bank.ready_at();
            let act = ready.max(act_ch);
            if ready > now || (act > now && ch.bank_row_hits[b] == 0) {
                // Nothing in this bank can issue now. Its exact wake-up:
                // a row-hit member waits only for the bank; with no hits,
                // every member also waits for the activation window.
                earliest_any = earliest_any.min(if ch.bank_row_hits[b] > 0 { ready } else { act });
                continue;
            }
            let open = bank.open_row();
            for &i in &ch.bank_members[b] {
                let q = &ch.read_queue[i];
                let row_hit = open == Some(q.loc.row);
                let earliest = if row_hit { ready } else { act };
                if earliest <= now {
                    let cand = Candidate { queue_idx: i, row_hit };
                    if self.priority_app == Some(q.req.app) {
                        priority_candidates.push(cand);
                    }
                    candidates.push(cand);
                } else {
                    earliest_any = earliest_any.min(earliest);
                }
            }
        }

        // Epoch prioritisation: if the priority application has ready
        // requests, the scheduler chooses among those only.
        let pool = if priority_candidates.is_empty() {
            &candidates
        } else {
            &priority_candidates
        };

        let picked = if pool.is_empty() {
            None
        } else {
            ch.policy.pick(now, &ch.read_queue, pool)
        };
        let queue_idx = picked.map(|p| pool[p].queue_idx);
        let pool_was_empty = pool.is_empty();
        ch.cand_scratch = candidates;
        ch.prio_scratch = priority_candidates;

        let Some(queue_idx) = queue_idx else {
            ch.next_try = if pool_was_empty {
                earliest_any
            } else {
                earliest_any.max(now + 1)
            };
            return;
        };
        // Classify the ready candidates we are *not* issuing, before
        // `remove_read` invalidates queue indices: they bound how soon the
        // next attempt can possibly issue, which lets the retry wake-up
        // below be exact instead of a blanket `now + 1`.
        let picked_bank = ch.read_queue[queue_idx].loc.bank;
        let mut other_bank_ready = false;
        let mut same_bank_ready = false;
        for c in &ch.cand_scratch {
            if c.queue_idx == queue_idx {
                continue;
            }
            if ch.read_queue[c.queue_idx].loc.bank == picked_bank {
                same_bank_ready = true;
            } else {
                other_bank_ready = true;
            }
        }
        let q = ch.remove_read(queue_idx);
        let bank = q.loc.bank;
        Self::issue_request(
            ch,
            ch_idx,
            self.audit.as_mut(),
            &timing,
            self.config.row_policy,
            now,
            q,
            false,
            &mut self.seq,
        );
        ch.recompute_row_hits(bank);
        // Precise retry wake-up. A candidate in another bank may issue on
        // the very next cycle; with none, the earliest possible issue is
        // bounded below by `earliest_any` (issuing only *adds* bank/tFAW
        // constraints, so the pre-issue bound stays valid) and by the
        // picked bank's own post-issue readiness for its remaining ready
        // members. Waking exactly there skips the attempts in between,
        // which provably cannot issue — unless a write drain could begin,
        // where the next attempt re-evaluates the hysteresis.
        let drain_pending = !ch.write_queue.is_empty()
            && (ch.write_queue.len() >= high || ch.read_queue.is_empty());
        ch.next_try = if other_bank_ready || drain_pending {
            now + 1
        } else {
            let mut wake = earliest_any;
            if same_bank_ready {
                let ready = ch.banks[bank].ready_at();
                wake = wake.min(if ch.bank_row_hits[bank] > 0 {
                    ready
                } else {
                    ready.max(ch.activation_earliest(&timing))
                });
            }
            wake.max(now + 1)
        };
        self.mutations += 1;
    }

    /// Returns whether a write was issued. `low` is the write-drain
    /// low-water mark, used to predict whether the drain survives the
    /// next attempt.
    #[allow(clippy::too_many_arguments)]
    fn issue_write(
        ch: &mut Channel,
        ch_idx: usize,
        audit: Option<&mut crate::audit::TimingAudit>,
        timing: &DramTiming,
        row_policy: crate::bank::RowPolicy,
        now: Cycle,
        low: usize,
    ) -> bool {
        // FR-FCFS among ready writes. The write queue is at most 64 deep,
        // so a linear scan (with the channel-wide activation bound hoisted
        // out of the loop) stays cheap.
        let act_ch = ch.activation_earliest(timing);
        let mut best: Option<(usize, bool, Cycle)> = None; // (idx, row_hit, arrival)
        let mut earliest_any = IDLE;
        for (i, q) in ch.write_queue.iter().enumerate() {
            let bank = &ch.banks[q.loc.bank];
            let ready = bank.ready_at();
            let row_hit = bank.open_row() == Some(q.loc.row);
            let earliest = if row_hit { ready } else { ready.max(act_ch) };
            if earliest <= now {
                let better = match best {
                    None => true,
                    Some((_, bh, ba)) => (!row_hit, q.req.arrival) < (!bh, ba),
                };
                if better {
                    best = Some((i, row_hit, q.req.arrival));
                }
            } else {
                earliest_any = earliest_any.min(earliest);
            }
        }
        match best {
            Some((idx, _, _)) => {
                let q = ch.write_queue.remove(idx).expect("index valid");
                let bank = q.loc.bank;
                let mut seq = 0;
                Self::issue_request(ch, ch_idx, audit, timing, row_policy, now, q, true, &mut seq);
                // The write may have opened/closed the row under queued
                // reads of the same bank.
                ch.recompute_row_hits(bank);
                // Precise retry wake-up, mirroring the read path: while
                // the drain continues, the next attempt can only issue at
                // the earliest post-issue write readiness. If the drain
                // will exit at the next attempt (queue at/under the low
                // mark with reads waiting), reads become eligible and the
                // blanket `now + 1` stands.
                let drain_continues = if ch.draining_writes {
                    ch.write_queue.len() > low
                } else {
                    ch.read_queue.is_empty() && !ch.write_queue.is_empty()
                };
                ch.next_try = if drain_continues {
                    let act_ch = ch.activation_earliest(timing);
                    let mut wake = IDLE;
                    for w in &ch.write_queue {
                        let b = &ch.banks[w.loc.bank];
                        let ready = b.ready_at();
                        wake = wake.min(if b.open_row() == Some(w.loc.row) {
                            ready
                        } else {
                            ready.max(act_ch)
                        });
                    }
                    wake.max(now + 1)
                } else {
                    now + 1
                };
                true
            }
            None => {
                ch.next_try = earliest_any;
                false
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_request(
        ch: &mut Channel,
        ch_idx: usize,
        audit: Option<&mut crate::audit::TimingAudit>,
        timing: &DramTiming,
        row_policy: crate::bank::RowPolicy,
        now: Cycle,
        q: QueuedRequest,
        is_write: bool,
        seq: &mut u64,
    ) {
        // Materialise the request's interference before the bank mutates:
        // writes never accrue any (only the read queue is accounted).
        let (interference_cycles, cause) = if is_write {
            (0, [0; 3])
        } else {
            (
                ch.accounting
                    .interference_since(q.interference_snap, q.loc.bank, q.req.app),
                ch.accounting
                    .interference_causes_since(q.interference_snap, q.loc.bank, q.req.app),
            )
        };
        let bank = &mut ch.banks[q.loc.bank];
        let needs_activate = bank.needs_activate(q.loc.row);
        // A conflict whose open row was (re)opened by *another* application
        // carries an induced penalty: the precharge+activate this request
        // would not have paid had its own row survived. Computed before the
        // bank mutates (scheduling replaces the opener).
        let (induced, induced_by) = if !is_write
            && matches!(bank.classify(q.loc.row), crate::bank::RowOutcome::Conflict)
        {
            match bank.row_opener() {
                Some(opener) if opener != q.req.app => (timing.trp + timing.trcd, Some(opener)),
                _ => (0, None),
            }
        } else {
            (0, None)
        };
        let (outcome, bank_finish) =
            bank.schedule_with_policy(timing, now, q.loc.row, q.req.app, is_write, row_policy);
        // Serialise data bursts on the channel bus.
        let finish = bank_finish.max(ch.bus_free_at + timing.burst);
        if finish > bank_finish {
            bank.extend_reservation(finish);
        }
        ch.bus_free_at = finish;
        if needs_activate {
            ch.record_activate(now);
        }
        let row_hit = matches!(outcome, crate::bank::RowOutcome::Hit);
        if row_hit {
            ch.row_hit_total[q.loc.bank] += 1;
        } else {
            ch.row_miss_total[q.loc.bank] += 1;
        }
        if let Some(audit) = audit {
            audit.record(crate::audit::AuditEvent {
                channel: ch_idx,
                bank: q.loc.bank,
                start: now,
                finish,
                activated: needs_activate,
            });
        }
        ch.accounting
            .on_issue(q.req.app, q.req.is_demand_read(), q.loc.bank);
        if q.req.is_demand_read() {
            ch.accounting.note_materialized(q.req.app, interference_cycles);
        }
        *seq += 1;
        ch.in_flight.push(InFlight {
            finish,
            seq: *seq,
            is_demand: q.req.is_demand_read(),
            completion: Completion {
                id: q.req.id,
                line: q.req.line,
                app: q.req.app,
                arrival: q.req.arrival,
                service_start: now,
                finish,
                interference_cycles,
                row_hit,
                cause,
                induced,
                induced_by,
            },
            is_write,
        });
    }
}

#[cfg(test)]
impl MemorySystem {
    /// Asserts the incremental scheduling state (per-bank member lists,
    /// row-hit counts) against a from-scratch recomputation, and the
    /// per-bank earliest-cycle formula against [`Channel::earliest_for`].
    fn assert_tracking_invariants(&self) {
        let timing = self.config.timing;
        for ch in &self.channels {
            let mut seen = vec![false; ch.read_queue.len()];
            for (b, members) in ch.bank_members.iter().enumerate() {
                for &i in members {
                    assert!(i < ch.read_queue.len(), "stale index {i} in bank {b}");
                    assert!(!seen[i], "index {i} listed twice");
                    seen[i] = true;
                    assert_eq!(ch.read_queue[i].loc.bank, b, "index {i} in wrong bank list");
                }
                let expected = match ch.banks[b].open_row() {
                    Some(row) => members
                        .iter()
                        .filter(|&&i| ch.read_queue[i].loc.row == row)
                        .count(),
                    None => 0,
                };
                assert_eq!(ch.bank_row_hits[b], expected, "bank {b} row-hit count drifted");
            }
            assert!(
                seen.iter().all(|&s| s),
                "some queued read is in no bank list"
            );
            let act_ch = ch.activation_earliest(&timing);
            for q in &ch.read_queue {
                let bank = &ch.banks[q.loc.bank];
                let ready = bank.ready_at();
                let fast = if bank.open_row() == Some(q.loc.row) {
                    ready
                } else {
                    ready.max(act_ch)
                };
                assert_eq!(fast, ch.earliest_for(&timing, q), "earliest-cycle mismatch");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(channels: usize) -> MemorySystem {
        let config = DramConfig {
            channels,
            ..DramConfig::default()
        };
        MemorySystem::new(config, SchedulerKind::FrFcfs, 4)
    }

    fn run_until(mem: &mut MemorySystem, start: Cycle, end: Cycle) -> Vec<Completion> {
        let mut out = Vec::new();
        for now in start..end {
            mem.tick(now, &mut out);
        }
        out
    }

    #[test]
    fn single_read_completes_with_closed_row_latency() {
        let mut mem = system(1);
        mem.enqueue(MemRequest::read(1, LineAddr::new(0), AppId::new(0), 0))
            .expect("queue has free capacity in this test");
        let done = run_until(&mut mem, 0, 1_000);
        assert_eq!(done.len(), 1);
        let t = mem.config().timing;
        assert_eq!(done[0].finish, t.row_closed_latency());
        assert!(!done[0].row_hit);
    }

    #[test]
    fn second_access_to_same_row_is_a_row_hit() {
        let mut mem = system(1);
        mem.enqueue(MemRequest::read(1, LineAddr::new(0), AppId::new(0), 0))
            .expect("queue has free capacity in this test");
        mem.enqueue(MemRequest::read(2, LineAddr::new(1), AppId::new(0), 0))
            .expect("queue has free capacity in this test");
        let done = run_until(&mut mem, 0, 2_000);
        assert_eq!(done.len(), 2);
        assert!(done.iter().any(|c| c.row_hit));
    }

    #[test]
    fn bank_row_outcomes_accumulate_per_bank() {
        let mut mem = system(1);
        let target = mem.mapping().decode(LineAddr::new(0));
        mem.enqueue(MemRequest::read(1, LineAddr::new(0), AppId::new(0), 0))
            .expect("queue has free capacity in this test");
        mem.enqueue(MemRequest::read(2, LineAddr::new(1), AppId::new(0), 0))
            .expect("queue has free capacity in this test");
        run_until(&mut mem, 0, 2_000);
        let outcomes = mem.bank_row_outcomes();
        let banks = mem.config().banks;
        assert_eq!(outcomes.len(), mem.config().channels * banks);
        let (hits, misses) = outcomes[target.channel * banks + target.bank];
        // First access activates (miss), second hits the open row.
        assert_eq!((hits, misses), (1, 1));
        let total: u64 = outcomes.iter().map(|&(h, m)| h + m).sum();
        assert_eq!(total, 2, "only the touched bank has outcomes");
    }

    #[test]
    fn bank_parallelism_overlaps_requests() {
        // Two requests to different banks should finish much sooner than
        // two serialised conflict accesses.
        let mut mem = system(1);
        let m = mem.mapping();
        // Find two lines in different banks.
        let l0 = LineAddr::new(0);
        let l1 = (1..10_000)
            .map(LineAddr::new)
            .find(|&l| m.decode(l).bank != m.decode(l0).bank)
            .expect("scan range holds a line mapping to another bank");
        mem.enqueue(MemRequest::read(1, l0, AppId::new(0), 0))
            .expect("queue has free capacity in this test");
        mem.enqueue(MemRequest::read(2, l1, AppId::new(0), 0))
            .expect("queue has free capacity in this test");
        let done = run_until(&mut mem, 0, 4_000);
        assert_eq!(done.len(), 2);
        let t = mem.config().timing;
        let last = done.iter().map(|c| c.finish).max().expect("at least one completion was collected");
        // Banks overlap: only the bus burst serialises.
        assert!(last <= t.row_closed_latency() + t.burst);
    }

    #[test]
    fn same_bank_different_row_serialises_with_conflict() {
        let mut mem = system(1);
        let m = mem.mapping();
        let l0 = LineAddr::new(0);
        let same_bank_other_row = (1..1_000_000)
            .map(LineAddr::new)
            .find(|&l| {
                let a = m.decode(l0);
                let b = m.decode(l);
                a.bank == b.bank && a.channel == b.channel && a.row != b.row
            })
            .expect("scan range holds a same-bank different-row line");
        mem.enqueue(MemRequest::read(1, l0, AppId::new(0), 0))
            .expect("queue has free capacity in this test");
        mem.enqueue(MemRequest::read(2, same_bank_other_row, AppId::new(0), 0))
            .expect("queue has free capacity in this test");
        let done = run_until(&mut mem, 0, 4_000);
        assert_eq!(done.len(), 2);
        let t = mem.config().timing;
        let last = done.iter().map(|c| c.finish).max().expect("at least one completion was collected");
        assert_eq!(
            last,
            t.row_closed_latency() + t.row_conflict_latency(),
            "second access waits for the first, then pays a conflict"
        );
    }

    #[test]
    fn priority_app_jumps_the_queue() {
        // Fill the queue with app1 requests to one bank, then add one app0
        // request to the same bank; with priority, app0 is serviced next
        // despite arriving last and row-hitting worse.
        let mut mem = system(1);
        mem.set_priority_app(0, Some(AppId::new(0)));
        let m = mem.mapping();
        let l0 = LineAddr::new(0);
        let bank0 = m.decode(l0).bank;
        let same_bank_lines: Vec<LineAddr> = (0..2_000_000u64)
            .map(LineAddr::new)
            .filter(|&l| m.decode(l).bank == bank0)
            .take(6)
            .collect();
        for (i, &l) in same_bank_lines.iter().enumerate().take(5) {
            mem.enqueue(MemRequest::read(i as u64, l, AppId::new(1), 0))
                .expect("queue has free capacity in this test");
        }
        mem.enqueue(MemRequest::read(99, same_bank_lines[5], AppId::new(0), 0))
            .expect("queue has free capacity in this test");
        let done = run_until(&mut mem, 0, 10_000);
        assert_eq!(done.len(), 6);
        let pos_app0 = done.iter().position(|c| c.id == 99).expect("priority request 99 completed in the run window");
        // One app1 request may already be in service; app0 must be within
        // the first two completions.
        assert!(
            pos_app0 <= 1,
            "priority request finished at position {pos_app0}"
        );
    }

    #[test]
    fn attrib_blame_reconciles_with_request_snapshots() {
        use asm_simcore::SimRng;
        // Randomized multi-app traffic: the central victim×offender×kind
        // blame counters must equal, per victim, the sum of materialized
        // demand-read interference plus what is still accruing in the
        // queue — and every completion's cause split must sum exactly to
        // its undifferentiated interference.
        let mut mem = system(2);
        mem.enable_attribution();
        let mut rng = SimRng::seed_from(0xB1A3E);
        let mut out = Vec::new();
        let mut id = 0u64;
        let mut total_interference = 0u64;
        let mut cause_sum = 0u64;
        for now in 0..30_000u64 {
            if rng.next_u64() % 7 == 0 {
                let app = AppId::new((rng.next_u64() % 4) as usize);
                let line = LineAddr::new(rng.next_u64() % (1 << 18));
                id += 1;
                let req = match rng.next_u64() % 4 {
                    0 => MemRequest::write(id, line, app, now),
                    1 => MemRequest::prefetch(id, line, app, now),
                    _ => MemRequest::read(id, line, app, now),
                };
                let _ = mem.enqueue(req);
            }
            mem.tick(now, &mut out);
        }
        for c in &out {
            total_interference += c.interference_cycles;
            cause_sum += c.cause.iter().sum::<u64>();
        }
        assert!(total_interference > 0, "traffic produced no interference");
        assert_eq!(
            cause_sum, total_interference,
            "busy-kind cause split must sum to the undifferentiated interference"
        );
        for (app, (blamed, settled)) in mem.attrib_reconciliation(30_000).iter().enumerate() {
            assert_eq!(
                blamed, settled,
                "app {app}: central blame diverged from per-request accounting"
            );
        }
    }

    #[test]
    fn attrib_off_reports_zero_causes() {
        let mut mem = system(1);
        let m = mem.mapping();
        let l0 = LineAddr::new(0);
        let bank0 = m.decode(l0).bank;
        let l1 = (1..2_000_000u64)
            .map(LineAddr::new)
            .find(|&l| m.decode(l).bank == bank0 && m.decode(l).row != m.decode(l0).row)
            .expect("scan range holds a same-bank different-row line");
        mem.enqueue(MemRequest::read(1, l0, AppId::new(0), 0))
            .expect("queue has free capacity in this test");
        mem.enqueue(MemRequest::read(2, l1, AppId::new(1), 0))
            .expect("queue has free capacity in this test");
        let done = run_until(&mut mem, 0, 10_000);
        assert_eq!(done.len(), 2);
        assert!(done.iter().any(|c| c.interference_cycles > 0));
        // The cause split is attribution-gated; the induced-penalty fields
        // are cheap pure functions of bank state and stay populated either
        // way (they are simply never read when attribution is off).
        for c in &done {
            assert_eq!(c.cause, [0; 3], "cause split must stay zero when attribution is off");
        }
    }

    #[test]
    fn induced_penalty_names_the_row_replacer() {
        // app0 opens a row; app1 conflicts it; app0's next access to its
        // original row pays a conflict induced by app1.
        let mut mem = system(1);
        mem.enable_attribution();
        let m = mem.mapping();
        let l0 = LineAddr::new(0);
        let bank0 = m.decode(l0).bank;
        let l1 = (1..2_000_000u64)
            .map(LineAddr::new)
            .find(|&l| m.decode(l).bank == bank0 && m.decode(l).row != m.decode(l0).row)
            .expect("scan range holds a same-bank different-row line");
        let a0 = AppId::new(0);
        let a1 = AppId::new(1);
        mem.enqueue(MemRequest::read(1, l0, a0, 0))
            .expect("queue has free capacity in this test");
        let mut done = run_until(&mut mem, 0, 5_000);
        mem.enqueue(MemRequest::read(2, l1, a1, 5_000))
            .expect("queue has free capacity in this test");
        done.extend(run_until(&mut mem, 5_000, 10_000));
        mem.enqueue(MemRequest::read(3, l0, a0, 10_000))
            .expect("queue has free capacity in this test");
        done.extend(run_until(&mut mem, 10_000, 15_000));
        assert_eq!(done.len(), 3);
        let t = mem.config().timing;
        let c3 = done.iter().find(|c| c.id == 3).expect("request 3 completed");
        assert_eq!(c3.induced, t.trp + t.trcd);
        assert_eq!(c3.induced_by, Some(a1));
        // app1's own conflict against app0's row is induced by app0.
        let c2 = done.iter().find(|c| c.id == 2).expect("request 2 completed");
        assert_eq!(c2.induced_by, Some(a0));
    }

    #[test]
    fn queue_full_is_reported() {
        let config = DramConfig {
            read_queue_capacity: 2,
            ..DramConfig::default()
        };
        let mut mem = MemorySystem::new(config, SchedulerKind::FrFcfs, 1);
        let a = AppId::new(0);
        // Use same-bank conflicting rows so nothing drains instantly.
        mem.enqueue(MemRequest::read(1, LineAddr::new(0), a, 0))
            .expect("queue has free capacity in this test");
        mem.enqueue(MemRequest::read(2, LineAddr::new(1 << 12), a, 0))
            .expect("queue has free capacity in this test");
        let err = mem
            .enqueue(MemRequest::read(3, LineAddr::new(2 << 12), a, 0))
            .unwrap_err();
        assert!(!err.is_write);
        assert_eq!(err.to_string(), "read queue of channel 0 is full");
    }

    #[test]
    fn writes_complete_silently_and_dont_block_reads_forever() {
        let mut mem = system(1);
        let a = AppId::new(0);
        for i in 0..10 {
            mem.enqueue(MemRequest::write(i, LineAddr::new(i * 128), a, 0))
                .expect("queue has free capacity in this test");
        }
        mem.enqueue(MemRequest::read(100, LineAddr::new(50 * 128), a, 0))
            .expect("queue has free capacity in this test");
        let done = run_until(&mut mem, 0, 50_000);
        // Only the read surfaces.
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 100);
    }

    #[test]
    fn interference_cycles_reported_for_blocked_app() {
        let mut mem = system(1);
        let m = mem.mapping();
        let l0 = LineAddr::new(0);
        let same_bank = (1..2_000_000u64)
            .map(LineAddr::new)
            .find(|&l| {
                let a = m.decode(l0);
                let b = m.decode(l);
                a.bank == b.bank && a.row != b.row
            })
            .expect("scan range holds a same-bank different-row line");
        mem.enqueue(MemRequest::read(1, l0, AppId::new(0), 0))
            .expect("queue has free capacity in this test");
        mem.enqueue(MemRequest::read(2, same_bank, AppId::new(1), 0))
            .expect("queue has free capacity in this test");
        let done = run_until(&mut mem, 0, 4_000);
        let blocked = done.iter().find(|c| c.id == 2).expect("request 2 completed in the run window");
        assert!(
            blocked.interference_cycles > 0,
            "app1 waited behind app0's bank occupancy"
        );
        let first = done.iter().find(|c| c.id == 1).expect("request 1 completed in the run window");
        assert_eq!(first.interference_cycles, 0);
    }

    #[test]
    fn queueing_cycles_accrue_for_priority_app() {
        let mut mem = system(1);
        let m = mem.mapping();
        let l0 = LineAddr::new(0);
        let same_bank = (1..2_000_000u64)
            .map(LineAddr::new)
            .find(|&l| {
                let a = m.decode(l0);
                let b = m.decode(l);
                a.bank == b.bank && a.row != b.row
            })
            .expect("scan range holds a same-bank different-row line");
        // app1's request is in service when app0 (priority) arrives.
        mem.enqueue(MemRequest::read(1, l0, AppId::new(1), 0))
            .expect("queue has free capacity in this test");
        let mut out = Vec::new();
        for now in 0..10 {
            mem.tick(now, &mut out);
        }
        mem.set_priority_app(10, Some(AppId::new(0)));
        mem.enqueue(MemRequest::read(2, same_bank, AppId::new(0), 10))
            .expect("queue has free capacity in this test");
        for now in 10..4_000 {
            mem.tick(now, &mut out);
        }
        assert!(mem.queueing_cycles(AppId::new(0)) > 0);
        mem.reset_queueing_cycles();
        assert_eq!(mem.queueing_cycles(AppId::new(0)), 0);
    }

    #[test]
    fn multi_channel_requests_route_independently() {
        let mut mem = system(2);
        let m = mem.mapping();
        let l0 = LineAddr::new(0);
        let other_channel = (1..10_000u64)
            .map(LineAddr::new)
            .find(|&l| m.decode(l).channel != m.decode(l0).channel)
            .expect("scan range holds a line on another channel");
        mem.enqueue(MemRequest::read(1, l0, AppId::new(0), 0))
            .expect("queue has free capacity in this test");
        mem.enqueue(MemRequest::read(2, other_channel, AppId::new(0), 0))
            .expect("queue has free capacity in this test");
        let done = run_until(&mut mem, 0, 2_000);
        assert_eq!(done.len(), 2);
        let t = mem.config().timing;
        // Fully parallel: both finish at the closed-row latency.
        for c in &done {
            assert_eq!(c.finish, t.row_closed_latency());
        }
    }

    #[test]
    fn app_stats_track_reads_and_row_hits() {
        let mut mem = system(1);
        let a = AppId::new(0);
        mem.enqueue(MemRequest::read(1, LineAddr::new(0), a, 0))
            .expect("queue has free capacity in this test");
        mem.enqueue(MemRequest::read(2, LineAddr::new(1), a, 0))
            .expect("queue has free capacity in this test");
        run_until(&mut mem, 0, 2_000);
        let stats = mem.app_stats(a);
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.row_hits, 1);
        assert!(stats.total_read_latency > 0);
    }

    #[test]
    fn incremental_tracking_matches_recomputation_under_stress() {
        // Drive a mixed read/write stream (plus refresh and priority
        // switches) through the controller and continuously cross-check
        // the incremental per-bank state against a from-scratch rebuild.
        let mut config = DramConfig {
            read_queue_capacity: 32,
            write_queue_capacity: 16,
            write_drain_high: 12,
            write_drain_low: 2,
            ..DramConfig::default()
        };
        config.refresh = Some(crate::timing::RefreshConfig {
            trefi: 700,
            trfc: 120,
        });
        let mut mem = MemorySystem::new(config, SchedulerKind::FrFcfs, 3);
        let mut out = Vec::new();
        let mut state: u64 = 0xDECAF_BAD;
        let mut issued = 0u64;
        for now in 0..30_000u64 {
            // xorshift64: a deterministic request stream with bank/row reuse.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state % 16 < 2 {
                let line = LineAddr::new((state >> 8) % 4_096);
                let app = AppId::new((state % 3) as usize);
                let req = if (state >> 33) % 8 == 0 {
                    MemRequest::write(issued, line, app, now)
                } else {
                    MemRequest::read(issued, line, app, now)
                };
                if mem.enqueue(req).is_ok() {
                    issued += 1;
                }
            }
            if now % 2_500 == 0 {
                let app = (now / 2_500) % 4;
                mem.set_priority_app(now, (app < 3).then(|| AppId::new(app as usize)));
            }
            mem.tick(now, &mut out);
            mem.assert_tracking_invariants();
        }
        assert!(out.len() > 100, "stress stream should complete many reads");
        assert!(issued > 500, "stress stream should accept many requests");
    }

    fn stress_step(mem: &mut MemorySystem, now: u64, state: &mut u64, issued: &mut u64) {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        if *state % 16 < 2 {
            let line = LineAddr::new((*state >> 8) % 4_096);
            let app = AppId::new((*state % 3) as usize);
            let req = if (*state >> 33) % 8 == 0 {
                MemRequest::write(*issued, line, app, now)
            } else {
                MemRequest::read(*issued, line, app, now)
            };
            if mem.enqueue(req).is_ok() {
                *issued += 1;
            }
        }
        if now % 2_500 == 0 {
            let app = (now / 2_500) % 4;
            mem.set_priority_app(now, (app < 3).then(|| AppId::new(app as usize)));
        }
    }

    fn checkpoint_roundtrip(scheduler: SchedulerKind) {
        use asm_simcore::persist::{StateReader, StateWriter};
        let mut config = DramConfig {
            read_queue_capacity: 32,
            write_queue_capacity: 16,
            write_drain_high: 12,
            write_drain_low: 2,
            ..DramConfig::default()
        };
        config.refresh = Some(crate::timing::RefreshConfig {
            trefi: 700,
            trfc: 120,
        });
        let mut mem = MemorySystem::with_seed(config.clone(), scheduler, 3, 0xBEEF);
        let mut out = Vec::new();
        let mut state: u64 = 0xDECAF_BAD;
        let mut issued = 0u64;
        let cut = 10_000u64;
        for now in 0..cut {
            stress_step(&mut mem, now, &mut state, &mut issued);
            mem.tick(now, &mut out);
        }
        let mut w = StateWriter::new("test-dram", 1);
        mem.save_state(&mut w);
        let bytes = w.finish();
        let mut restored = MemorySystem::with_seed(config, scheduler, 3, 0xBEEF);
        let mut r = StateReader::new(&bytes, "test-dram", 1).expect("header valid");
        restored.restore_state(&mut r).expect("state restores");
        r.finish().expect("no trailing bytes");
        // Both copies must now evolve identically under the same stream.
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        let mut state_b = state;
        let mut issued_b = issued;
        for now in cut..cut + 20_000 {
            stress_step(&mut mem, now, &mut state, &mut issued);
            stress_step(&mut restored, now, &mut state_b, &mut issued_b);
            mem.tick(now, &mut out_a);
            restored.tick(now, &mut out_b);
            restored.assert_tracking_invariants();
        }
        assert_eq!(out_a, out_b, "restored system diverged from original");
        assert_eq!(mem.mutation_count(), restored.mutation_count());
        assert!(!out_a.is_empty(), "stress stream should complete reads");
    }

    #[test]
    fn checkpoint_roundtrip_frfcfs() {
        checkpoint_roundtrip(SchedulerKind::FrFcfs);
    }

    #[test]
    fn checkpoint_roundtrip_stateful_policies() {
        checkpoint_roundtrip(SchedulerKind::Atlas);
        checkpoint_roundtrip(SchedulerKind::Bliss);
        checkpoint_roundtrip(SchedulerKind::Parbs);
        checkpoint_roundtrip(SchedulerKind::Tcm);
    }

    #[test]
    fn idle_system_ticks_cheaply() {
        let mut mem = system(1);
        let mut out = Vec::new();
        for now in 0..100_000 {
            mem.tick(now, &mut out);
        }
        assert!(out.is_empty());
    }
}

#[cfg(test)]
mod refresh_tests {
    use super::*;
    use crate::timing::RefreshConfig;

    #[test]
    fn refresh_delays_requests_landing_in_the_blackout() {
        let mut config = DramConfig::default();
        config.refresh = Some(RefreshConfig {
            trefi: 1_000,
            trfc: 500,
        });
        let mut with_refresh = MemorySystem::new(config, SchedulerKind::FrFcfs, 1);
        let mut without = MemorySystem::new(DramConfig::default(), SchedulerKind::FrFcfs, 1);
        // Enqueue a read right at the refresh boundary.
        let run = |mem: &mut MemorySystem| {
            let mut out = Vec::new();
            for now in 0..1_000 {
                mem.tick(now, &mut out);
            }
            mem.enqueue(MemRequest::read(1, LineAddr::new(0), AppId::new(0), 1_000))
                .expect("queue has free capacity in this test");
            for now in 1_000..10_000 {
                mem.tick(now, &mut out);
            }
            out[0].finish
        };
        let delayed = run(&mut with_refresh);
        let normal = run(&mut without);
        assert!(
            delayed >= normal + 400,
            "refresh should delay the request: {delayed} vs {normal}"
        );
    }

    #[test]
    fn refresh_closes_open_rows() {
        let mut config = DramConfig::default();
        config.refresh = Some(RefreshConfig {
            trefi: 2_000,
            trfc: 100,
        });
        let mut mem = MemorySystem::new(config, SchedulerKind::FrFcfs, 1);
        let mut out = Vec::new();
        mem.enqueue(MemRequest::read(1, LineAddr::new(0), AppId::new(0), 0))
            .expect("queue has free capacity in this test");
        for now in 0..2_500 {
            mem.tick(now, &mut out);
        }
        // Same row after the refresh: must pay an activate again (row was
        // closed), i.e. be slower than a pure row hit.
        mem.enqueue(MemRequest::read(2, LineAddr::new(1), AppId::new(0), 2_500))
            .expect("queue has free capacity in this test");
        for now in 2_500..5_000 {
            mem.tick(now, &mut out);
        }
        assert_eq!(out.len(), 2);
        assert!(!out[1].row_hit, "refresh should have closed the row");
    }

    #[test]
    fn refresh_steals_no_interference_cycles() {
        let mut config = DramConfig::default();
        config.refresh = Some(RefreshConfig {
            trefi: 500,
            trfc: 400,
        });
        let mut mem = MemorySystem::new(config, SchedulerKind::FrFcfs, 2);
        mem.set_priority_app(0, Some(AppId::new(0)));
        let mut out = Vec::new();
        for now in 0..400 {
            mem.tick(now, &mut out);
        }
        // A request arriving during the refresh blackout waits, but no
        // other application issued: queueing may accrue (last issue was
        // nobody), and crucially its interference counter stays zero.
        mem.enqueue(MemRequest::read(1, LineAddr::new(0), AppId::new(0), 500))
            .expect("queue has free capacity in this test");
        for now in 500..5_000 {
            mem.tick(now, &mut out);
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].interference_cycles, 0);
    }
}

#[cfg(test)]
mod row_policy_tests {
    use super::*;
    use crate::bank::RowPolicy;

    fn streaming_latency(policy: RowPolicy) -> u64 {
        let mut config = DramConfig::default();
        config.row_policy = policy;
        let mut mem = MemorySystem::new(config, SchedulerKind::FrFcfs, 1);
        // Sequential lines within one row: open-page turns these into row
        // hits, closed-page pays an activate each time.
        for i in 0..8u64 {
            mem.enqueue(MemRequest::read(i, LineAddr::new(i), AppId::new(0), 0))
                .expect("queue has free capacity in this test");
        }
        let mut out = Vec::new();
        for now in 0..50_000 {
            mem.tick(now, &mut out);
            if out.len() == 8 {
                break;
            }
        }
        out.iter().map(|c| c.finish).max().expect("at least one completion was collected")
    }

    #[test]
    fn closed_page_is_slower_for_streaming() {
        let open = streaming_latency(RowPolicy::Open);
        let closed = streaming_latency(RowPolicy::Closed);
        assert!(
            closed > open,
            "closed-page should lose row hits: open {open} vs closed {closed}"
        );
    }

    #[test]
    fn closed_page_never_reports_row_hits() {
        let mut config = DramConfig::default();
        config.row_policy = RowPolicy::Closed;
        let mut mem = MemorySystem::new(config, SchedulerKind::FrFcfs, 1);
        for i in 0..6u64 {
            mem.enqueue(MemRequest::read(i, LineAddr::new(i), AppId::new(0), 0))
                .expect("queue has free capacity in this test");
        }
        let mut out = Vec::new();
        for now in 0..50_000 {
            mem.tick(now, &mut out);
        }
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|c| !c.row_hit));
    }
}
