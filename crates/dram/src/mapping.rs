//! Physical address → (channel, bank, row, column) mapping.
//!
//! The mapping interleaves consecutive cache lines within a DRAM row
//! (preserving row-buffer locality for streaming access), then spreads rows
//! across channels and banks:
//!
//! ```text
//! line address bits:  [ row | bank | channel | column ]
//! ```
//!
//! With 8 KB rows and 64 B lines, a row holds 128 lines (7 column bits).

use asm_simcore::LineAddr;

/// Where a cache line lives in the DRAM system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loc {
    /// Channel index.
    pub channel: usize,
    /// Bank index within the channel's single rank.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Column (line offset within the row).
    pub col: u64,
}

/// Decodes line addresses into DRAM coordinates.
///
/// # Examples
///
/// ```
/// use asm_dram::AddressMapping;
/// use asm_simcore::LineAddr;
///
/// let m = AddressMapping::new(1, 8, 128);
/// let a = m.decode(LineAddr::new(0));
/// let b = m.decode(LineAddr::new(1));
/// // Consecutive lines share a row (streaming gets row-buffer hits).
/// assert_eq!(a.row, b.row);
/// assert_eq!(a.bank, b.bank);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapping {
    channels: usize,
    banks: usize,
    row_lines: u64,
}

impl AddressMapping {
    /// Creates a mapping for `channels` channels, `banks` banks per channel
    /// and `row_lines` cache lines per row (8 KB row / 64 B line = 128).
    ///
    /// # Panics
    ///
    /// Panics unless `channels`, `banks` and `row_lines` are powers of two.
    #[must_use]
    pub fn new(channels: usize, banks: usize, row_lines: u64) -> Self {
        assert!(
            channels.is_power_of_two(),
            "channels must be a power of two"
        );
        assert!(banks.is_power_of_two(), "banks must be a power of two");
        assert!(
            row_lines.is_power_of_two(),
            "row_lines must be a power of two"
        );
        AddressMapping {
            channels,
            banks,
            row_lines,
        }
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of banks per channel.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Cache lines per DRAM row.
    #[must_use]
    pub fn row_lines(&self) -> u64 {
        self.row_lines
    }

    /// Decodes a line address into its DRAM location.
    #[inline]
    #[must_use]
    pub fn decode(&self, line: LineAddr) -> Loc {
        let mut a = line.raw();
        let col = a & (self.row_lines - 1);
        a >>= self.row_lines.trailing_zeros();
        let channel = (a as usize) & (self.channels - 1);
        a >>= self.channels.trailing_zeros();
        let bank = (a as usize) & (self.banks - 1);
        a >>= self.banks.trailing_zeros();
        Loc {
            channel,
            bank,
            row: a,
            col,
        }
    }
}

impl Default for AddressMapping {
    /// The paper's main configuration: 1 channel, 8 banks, 8 KB rows.
    fn default() -> Self {
        AddressMapping::new(1, 8, 128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_within_row_is_row_hit_friendly() {
        let m = AddressMapping::default();
        let base = m.decode(LineAddr::new(0));
        for i in 1..128 {
            let l = m.decode(LineAddr::new(i));
            assert_eq!(l.row, base.row);
            assert_eq!(l.bank, base.bank);
            assert_eq!(l.col, i);
        }
        // Crossing the row boundary moves to another bank.
        let next = m.decode(LineAddr::new(128));
        assert!(next.bank != base.bank || next.row != base.row);
    }

    #[test]
    fn channels_interleave_at_row_granularity() {
        let m = AddressMapping::new(2, 8, 128);
        let a = m.decode(LineAddr::new(0));
        let b = m.decode(LineAddr::new(128));
        assert_eq!(a.channel, 0);
        assert_eq!(b.channel, 1);
    }

    #[test]
    fn decode_is_injective_over_a_window() {
        let m = AddressMapping::new(2, 8, 128);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let loc = m.decode(LineAddr::new(i));
            assert!(seen.insert((loc.channel, loc.bank, loc.row, loc.col)));
        }
    }

    #[test]
    fn bank_spread_covers_all_banks() {
        let m = AddressMapping::default();
        let banks: std::collections::HashSet<_> = (0..64u64)
            .map(|r| m.decode(LineAddr::new(r * 128)).bank)
            .collect();
        assert_eq!(banks.len(), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_geometry() {
        let _ = AddressMapping::new(3, 8, 128);
    }
}
