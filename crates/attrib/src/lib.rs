#![warn(missing_docs)]
//! Ground-truth cycle attribution for the ASM reproduction.
//!
//! ASM *estimates* slowdown from cache-access rates; this crate provides the
//! exact accounting that estimate should be judged against. Every core cycle
//! of every quantum is classified into an exhaustive, integer-exact ledger
//! ([`Component`]), and every interference cycle is blamed on the specific
//! co-runner that caused it, yielding a per-quantum app×app blame matrix
//! whose rows sum *exactly* to the quantum length.
//!
//! The crate is deliberately free of simulator dependencies beyond
//! `asm-simcore`: it consumes small, already-decided facts (per-tick head
//! state from `asm-cpu`, per-request cause splits from `asm-dram`, eviction
//! owner pairs from the LLC) and does pure ledger arithmetic. All hooks are
//! driven by `asm-core::System`, which calls them only when attribution is
//! enabled — the ledger itself never branches on an "enabled" flag.
//!
//! # Conservation invariant
//!
//! For every app `a` and every finalized quantum `[start, end)`:
//!
//! ```text
//! sum_k ledger[a][k] == end - start          (integer equality)
//! sum_o blame[a][o]  == end - start          (integer equality)
//! ```
//!
//! Both are `debug_assert`ed at quantum finalization and pinned by property
//! tests here and by a randomized-`SystemConfig` proptest in `asm-core`.

use asm_simcore::persist::{PersistError, StateReader, StateWriter};
use asm_simcore::Cycle;

/// Number of ledger components ([`Component`] variants).
pub const COMPONENTS: usize = 11;

/// Exhaustive classification of a core cycle.
///
/// The first three components are decided purely from the core's
/// reorder-buffer head; the DRAM components split a memory-stall episode
/// using the completed request's cause accounting; `Unresolved` absorbs
/// stalls truncated by a quantum boundary (their episode has not completed,
/// so their cause is not yet known — they are *not* silently reclassified).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Component {
    /// The core retired work this cycle (or was fetching/issuing normally).
    Compute = 0,
    /// Head is an LLC/L1 hit still in flight: pure hit latency, no DRAM.
    HitWait = 1,
    /// Head could not issue to memory (MSHR/queue backpressure).
    Backpressure = 2,
    /// DRAM service time of the blocking request (own bank/bus occupancy).
    DramService = 3,
    /// Queueing delay not caused by any co-runner (own earlier requests,
    /// refresh, bus serialization of the app's own stream).
    DramQueueSelf = 4,
    /// Queueing behind a co-runner's *row-miss* access occupying the bank.
    DramBankConflict = 5,
    /// Queueing behind a co-runner's *row-hit* stream the FR-FCFS scheduler
    /// kept prioritizing (the starvation-cliff component).
    DramFrfcfs = 6,
    /// Queueing behind a write-drain burst triggered by co-runner writes.
    DramWriteDrain = 7,
    /// Extra activate+precharge the blocking request paid because a
    /// co-runner closed/replaced the row this app had open.
    RowMissInduced = 8,
    /// The blocking miss itself was manufactured by co-runner cache
    /// pollution (ATS-sampled): the whole DRAM trip is interference.
    CachePollution = 9,
    /// Stall cycles cut off by the quantum boundary before their episode
    /// completed; resolved (as fresh cycles) in the next quantum.
    Unresolved = 10,
}

impl Component {
    /// All components, in ledger order.
    pub const ALL: [Component; COMPONENTS] = [
        Component::Compute,
        Component::HitWait,
        Component::Backpressure,
        Component::DramService,
        Component::DramQueueSelf,
        Component::DramBankConflict,
        Component::DramFrfcfs,
        Component::DramWriteDrain,
        Component::RowMissInduced,
        Component::CachePollution,
        Component::Unresolved,
    ];

    /// Stable snake_case name used in CSV headers and telemetry counters.
    pub fn name(self) -> &'static str {
        match self {
            Component::Compute => "compute",
            Component::HitWait => "llc_hit_wait",
            Component::Backpressure => "backpressure",
            Component::DramService => "dram_service",
            Component::DramQueueSelf => "dram_queue_self",
            Component::DramBankConflict => "dram_bank_conflict",
            Component::DramFrfcfs => "dram_frfcfs",
            Component::DramWriteDrain => "dram_write_drain",
            Component::RowMissInduced => "row_miss_induced",
            Component::CachePollution => "cache_pollution",
            Component::Unresolved => "unresolved",
        }
    }

    /// Ledger row index of this component.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Does this component blame a co-runner (off-diagonal in the blame
    /// matrix)? `DramQueueSelf` and `DramService` are the app's own cost.
    pub fn is_interference(self) -> bool {
        matches!(
            self,
            Component::DramBankConflict
                | Component::DramFrfcfs
                | Component::DramWriteDrain
                | Component::RowMissInduced
                | Component::CachePollution
        )
    }
}

/// What the core's reorder-buffer head was blocked on after a tick — the
/// per-cycle fact `asm-cpu` reports and the only input the per-tick
/// classifier needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum StallKind {
    /// Retiring/fetching/issuing normally (also: source drained).
    Progress = 0,
    /// Head completed in the future: cache-hit latency.
    HitWait = 1,
    /// Head wants to issue but memory would not accept it.
    Backpressure = 2,
    /// Head is an outstanding memory request; classified when it returns.
    MemStall = 3,
}

impl StallKind {
    fn encode(self) -> u8 {
        self as u8
    }

    fn decode(v: u8) -> Result<StallKind, PersistError> {
        match v {
            0 => Ok(StallKind::Progress),
            1 => Ok(StallKind::HitWait),
            2 => Ok(StallKind::Backpressure),
            3 => Ok(StallKind::MemStall),
            other => Err(PersistError::Corrupt(format!("stall kind byte {other}"))),
        }
    }

    /// Ledger component for gap/tick cycles of this kind (memory stalls are
    /// deferred to episode completion and have no immediate component).
    fn immediate_component(self) -> Option<Component> {
        match self {
            StallKind::Progress => Some(Component::Compute),
            StallKind::HitWait => Some(Component::HitWait),
            StallKind::Backpressure => Some(Component::Backpressure),
            StallKind::MemStall => None,
        }
    }
}

/// Cause accounting of one completed blocking memory request, as
/// materialized by `asm-dram` at issue time.
///
/// `cause` is indexed by the DRAM busy-kind taxonomy: `[0]` the bank was
/// busy with a write (write drain), `[1]` with a co-runner row *hit*
/// (FR-FCFS prioritization), `[2]` with a co-runner row *miss* (bank
/// conflict).
#[derive(Clone, Copy, Debug, Default)]
pub struct MemEpisode {
    /// Bank + bus service latency of the request itself.
    pub service: Cycle,
    /// Co-runner-caused queueing, split by what occupied the bank.
    pub cause: [Cycle; 3],
    /// Extra activate+precharge paid because a co-runner replaced the row.
    pub induced: Cycle,
    /// The co-runner that replaced the row, if any.
    pub induced_by: Option<usize>,
    /// The miss only happened because co-runner insertions evicted the
    /// line (ATS-sampled pollution verdict).
    pub pollution: bool,
}

/// Split a memory-stall episode of `n` core cycles into ledger components.
///
/// The split is integer-exact: the returned components always sum to `n`.
/// Components are carved off in priority order (service first, then the
/// co-runner-caused queueing causes, then self queueing as the remainder),
/// each clipped to what is still unassigned — the DRAM-side cause counters
/// are measured in controller time and can overlap or exceed the core-side
/// stall, so clipping (not scaling) keeps the ledger exact.
///
/// Blame rule for pollution (documented in DESIGN.md §13): a polluted miss
/// converts the *self* components (service + self-queueing) to
/// `CachePollution`, while queueing caused by specific DRAM offenders keeps
/// its DRAM component — those cycles have a more precise culprit.
pub fn split_stall(n: Cycle, ep: &MemEpisode) -> [Cycle; COMPONENTS] {
    let mut out = [0; COMPONENTS];
    let s_part = ep.service.min(n);
    let induced_part = ep.induced.min(s_part);
    let service_rest = s_part - induced_part;
    let r1 = n - s_part;
    let wd = ep.cause[0].min(r1);
    let fr = ep.cause[1].min(r1 - wd);
    let bc = ep.cause[2].min(r1 - wd - fr);
    let queue_self = r1 - wd - fr - bc;
    out[Component::DramService.index()] = service_rest;
    out[Component::RowMissInduced.index()] = induced_part;
    out[Component::DramWriteDrain.index()] = wd;
    out[Component::DramFrfcfs.index()] = fr;
    out[Component::DramBankConflict.index()] = bc;
    out[Component::DramQueueSelf.index()] = queue_self;
    if ep.pollution {
        out[Component::CachePollution.index()] = service_rest + queue_self;
        out[Component::DramService.index()] = 0;
        out[Component::DramQueueSelf.index()] = 0;
    }
    out
}

/// Largest-remainder apportionment of `total` cycles over integer
/// `weights`, added into `out` (same length). Exact: the added shares sum
/// to `total`. Remainder ties go to the lowest index, and all arithmetic is
/// in `u128`, so the result is deterministic and overflow-free for any
/// realistic cycle counts. A zero weight vector puts everything on index 0
/// (callers substitute a fallback weight vector before that matters).
// asm-lint: allow(R9): quantum-boundary apportionment — runs once per
// quantum close (never per cycle); the remainder vector is short-lived
pub fn apportion(total: Cycle, weights: &[u64], out: &mut [Cycle]) {
    debug_assert_eq!(weights.len(), out.len());
    if total == 0 || out.is_empty() {
        return;
    }
    let wsum: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    if wsum == 0 {
        out[0] += total;
        return;
    }
    let t = u128::from(total);
    let mut assigned: Cycle = 0;
    // (remainder, index) pairs for the leftover distribution; quantum-
    // boundary path, so a short-lived allocation is acceptable here.
    let mut rems: Vec<(u128, usize)> = Vec::with_capacity(weights.len());
    for (i, &w) in weights.iter().enumerate() {
        let prod = t * u128::from(w);
        let share = (prod / wsum) as Cycle;
        out[i] += share;
        assigned += share;
        rems.push((prod % wsum, i));
    }
    // Largest remainder first; ties to the lowest index.
    rems.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let leftover = (total - assigned) as usize;
    for &(_, i) in rems.iter().take(leftover) {
        out[i] += 1;
    }
}

/// One finalized quantum's ground truth: the per-app component ledger and
/// the app×app blame matrix. Both flattened row-major.
#[derive(Clone, Debug)]
pub struct QuantumLedger {
    /// First cycle of the quantum (inclusive).
    pub start: Cycle,
    /// One past the last cycle of the quantum.
    pub end: Cycle,
    /// `app_count × COMPONENTS` cycles; row `a` sums to `end - start`.
    pub ledger: Vec<Cycle>,
    /// `app_count × app_count` cycles, victim-major; `blame[v][o]` is how
    /// many of victim `v`'s cycles offender `o` is responsible for, with
    /// the diagonal holding the app's own (non-interference) cycles. Row
    /// `v` sums to `end - start`.
    pub blame: Vec<Cycle>,
}

impl QuantumLedger {
    /// Cycles of `app`'s quantum attributed to `comp`.
    pub fn component(&self, app: usize, comp: Component) -> Cycle {
        self.ledger[app * COMPONENTS + comp.index()]
    }

    /// Cycles of victim `v`'s quantum blamed on offender `o`.
    pub fn blamed(&self, v: usize, o: usize) -> Cycle {
        let n = self.ledger.len() / COMPONENTS;
        self.blame[v * n + o]
    }

    /// Quantum length in cycles.
    pub fn len(&self) -> Cycle {
        self.end - self.start
    }

    /// True when the quantum spans zero cycles.
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// Check the conservation invariant: every ledger row and every blame
    /// row sums exactly to the quantum length.
    pub fn conserved(&self) -> bool {
        let n = self.ledger.len() / COMPONENTS;
        let q = self.len();
        (0..n).all(|a| {
            let lsum: Cycle = self.ledger[a * COMPONENTS..(a + 1) * COMPONENTS].iter().sum();
            let bsum: Cycle = self.blame[a * n..(a + 1) * n].iter().sum();
            lsum == q && bsum == q
        })
    }
}

/// Per-core incremental classifier state.
#[derive(Clone, Debug)]
struct CoreTracker {
    /// First cycle not yet accounted for.
    last_acct: Cycle,
    /// Classification of cycles between the last tick and the next event
    /// (skipped fast-forward cycles inherit the post-tick head state).
    gap: StallKind,
    /// Memory-stall cycles awaiting their episode's completion.
    pending_mem: Cycle,
    /// Cycle the pending memory stall began (for starvation trace spans).
    episode_start: Cycle,
}

/// Per-run attribution state: incremental per-core trackers, the current
/// quantum's accumulators, and every finalized [`QuantumLedger`].
#[derive(Clone, Debug)]
pub struct RunAttrib {
    app_count: usize,
    trackers: Vec<CoreTracker>,
    /// Current quantum, `app_count × COMPONENTS`.
    ledger: Vec<Cycle>,
    /// Current quantum's row-miss-induced penalty cycles, victim-major
    /// `app_count × app_count` (exact per-offender, no apportionment).
    induced_blame: Vec<Cycle>,
    /// Current quantum's cross-app LLC evictions, victim-major
    /// `app_count × app_count` (weights for CachePollution blame).
    evictions: Vec<u64>,
    /// Cumulative DRAM blame counters `victim × offender × busy-kind` as of
    /// the last quantum close (to difference the controller's running
    /// totals into per-quantum weights).
    prev_dram_blame: Vec<Cycle>,
    quantum_start: Cycle,
    quanta: Vec<QuantumLedger>,
}

impl RunAttrib {
    /// Fresh state for `app_count` cores, starting at cycle 0.
    pub fn new(app_count: usize) -> RunAttrib {
        RunAttrib {
            app_count,
            trackers: vec![
                CoreTracker {
                    last_acct: 0,
                    gap: StallKind::Progress,
                    pending_mem: 0,
                    episode_start: 0,
                };
                app_count
            ],
            ledger: vec![0; app_count * COMPONENTS],
            induced_blame: vec![0; app_count * app_count],
            evictions: vec![0; app_count * app_count],
            prev_dram_blame: vec![0; app_count * app_count * 3],
            quantum_start: 0,
            quanta: Vec::new(),
        }
    }

    /// Number of apps/cores tracked.
    pub fn app_count(&self) -> usize {
        self.app_count
    }

    fn close_gap(
        tracker: &mut CoreTracker,
        ledger: &mut [Cycle],
        app: usize,
        now: Cycle,
    ) {
        let span = now.saturating_sub(tracker.last_acct);
        if span > 0 {
            match tracker.gap.immediate_component() {
                Some(c) => ledger[app * COMPONENTS + c.index()] += span,
                None => {
                    if tracker.pending_mem == 0 {
                        tracker.episode_start = tracker.last_acct;
                    }
                    tracker.pending_mem += span;
                }
            }
        }
        tracker.last_acct = now;
    }

    /// Account one executed core tick at `now`. `progressed` is whether the
    /// core retired at least one instruction this tick; `head` is the
    /// post-tick head state, which also classifies any fast-forwarded
    /// cycles until the core's next tick.
    pub fn on_tick(&mut self, app: usize, now: Cycle, progressed: bool, head: StallKind) {
        let t = &mut self.trackers[app];
        Self::close_gap(t, &mut self.ledger, app, now);
        let class = if progressed { StallKind::Progress } else { head };
        match class.immediate_component() {
            Some(c) => self.ledger[app * COMPONENTS + c.index()] += 1,
            None => {
                if t.pending_mem == 0 {
                    t.episode_start = now;
                }
                t.pending_mem += 1;
            }
        }
        t.gap = head;
        t.last_acct = now + 1;
    }

    /// The completion unblocking `app`'s reorder-buffer head arrived at
    /// `now`: split the pending stall cycles by the episode's cause
    /// accounting. Returns the `(start, length)` of the resolved stall for
    /// starvation trace spans (None when no cycles were pending).
    pub fn on_blocking_completion(
        &mut self,
        app: usize,
        now: Cycle,
        ep: &MemEpisode,
    ) -> Option<(Cycle, Cycle)> {
        let t = &mut self.trackers[app];
        Self::close_gap(t, &mut self.ledger, app, now);
        let stalled = t.pending_mem;
        if stalled == 0 {
            return None;
        }
        t.pending_mem = 0;
        let start = t.episode_start;
        let parts = split_stall(stalled, ep);
        let row = &mut self.ledger[app * COMPONENTS..(app + 1) * COMPONENTS];
        for (slot, part) in row.iter_mut().zip(parts.iter()) {
            *slot += part;
        }
        // Induced-row-miss cycles have an exact offender; remember it so
        // the blame matrix does not need to apportion this component.
        let induced_part = parts[Component::RowMissInduced.index()];
        if induced_part > 0 {
            if let Some(o) = ep.induced_by {
                if o != app && o < self.app_count {
                    self.induced_blame[app * self.app_count + o] += induced_part;
                }
            }
        }
        Some((start, now - start))
    }

    /// A co-runner (`evicter`) evicted a line owned by `victim` from the
    /// LLC; eviction counts weight the CachePollution blame split.
    pub fn on_eviction(&mut self, victim: usize, evicter: usize) {
        self.evictions[victim * self.app_count + evicter] += 1;
    }

    /// Close the quantum ending at `now`. `dram_blame_cum` is the
    /// controller's *cumulative* per-victim/per-offender/per-busy-kind
    /// blame counters (`app × app × 3`, victim-major); this function
    /// differences them against the previous quantum close to weight the
    /// queueing components. Returns the finalized ledger.
    // asm-lint: allow(R9): quantum-boundary finalization — allocates the
    // outgoing ledger/blame rows once per quantum close, never per cycle
    pub fn end_quantum(&mut self, now: Cycle, dram_blame_cum: &[Cycle]) -> &QuantumLedger {
        let n = self.app_count;
        debug_assert_eq!(dram_blame_cum.len(), n * n * 3);
        for app in 0..n {
            let t = &mut self.trackers[app];
            Self::close_gap(t, &mut self.ledger, app, now);
            // Stalls cut off by the boundary have no completed episode yet.
            self.ledger[app * COMPONENTS + Component::Unresolved.index()] += t.pending_mem;
            t.pending_mem = 0;
        }
        let q = now - self.quantum_start;
        let mut blame = vec![0; n * n];
        // (queueing component, busy-kind index) pairs sharing the DRAM
        // blame-counter weights.
        const QUEUE_COMPONENTS: [(Component, usize); 3] = [
            (Component::DramWriteDrain, 0),
            (Component::DramFrfcfs, 1),
            (Component::DramBankConflict, 2),
        ];
        let mut weights = vec![0u64; n];
        for v in 0..n {
            if n > 1 {
                let fallback = (0..n).position(|o| o != v).unwrap_or(0);
                for &(comp, k) in QUEUE_COMPONENTS.iter() {
                    let total = self.ledger[v * COMPONENTS + comp.index()];
                    if total == 0 {
                        continue;
                    }
                    let mut wsum = 0u64;
                    for (o, w) in weights.iter_mut().enumerate() {
                        let idx = (v * n + o) * 3 + k;
                        *w = dram_blame_cum[idx] - self.prev_dram_blame[idx];
                        wsum += *w;
                    }
                    if wsum == 0 {
                        // No accrual this quantum (clipping smear from an
                        // earlier quantum): weight by the run totals, else
                        // by the lowest-index co-runner.
                        for (o, w) in weights.iter_mut().enumerate() {
                            *w = dram_blame_cum[(v * n + o) * 3 + k];
                            wsum += *w;
                        }
                    }
                    if wsum == 0 {
                        weights.fill(0);
                        weights[fallback] = 1;
                    }
                    apportion(total, &weights, &mut blame[v * n..(v + 1) * n]);
                }
                // Induced row misses carry their exact offender.
                let induced_total = self.ledger[v * COMPONENTS + Component::RowMissInduced.index()];
                if induced_total > 0 {
                    weights.copy_from_slice(&self.induced_blame[v * n..(v + 1) * n]);
                    if weights.iter().all(|&w| w == 0) {
                        weights[fallback] = 1;
                    }
                    apportion(induced_total, &weights, &mut blame[v * n..(v + 1) * n]);
                }
                // Pollution stalls: weight by who evicted this app's lines.
                let poll_total = self.ledger[v * COMPONENTS + Component::CachePollution.index()];
                if poll_total > 0 {
                    let mut wsum = 0u64;
                    for (o, w) in weights.iter_mut().enumerate() {
                        *w = if o == v { 0 } else { self.evictions[v * n + o] };
                        wsum += *w;
                    }
                    if wsum == 0 {
                        weights.fill(0);
                        weights[fallback] = 1;
                    }
                    apportion(poll_total, &weights, &mut blame[v * n..(v + 1) * n]);
                }
            }
            // Everything not blamed on a co-runner is the app's own cost.
            let off_diag: Cycle = blame[v * n..(v + 1) * n].iter().sum();
            debug_assert!(off_diag <= q, "blame overflow: {off_diag} > quantum {q}");
            blame[v * n + v] = q - off_diag + blame[v * n + v];
        }
        let ledger = std::mem::replace(&mut self.ledger, vec![0; n * COMPONENTS]);
        let finalized = QuantumLedger {
            start: self.quantum_start,
            end: now,
            ledger,
            blame,
        };
        debug_assert!(finalized.conserved(), "cycle-attribution conservation violated");
        self.induced_blame.fill(0);
        self.evictions.fill(0);
        self.prev_dram_blame.copy_from_slice(dram_blame_cum);
        self.quantum_start = now;
        self.quanta.push(finalized);
        self.quanta.last().expect("just pushed")
    }

    /// All finalized quanta, oldest first.
    pub fn quanta(&self) -> &[QuantumLedger] {
        &self.quanta
    }

    /// Whole-run component totals (`app_count × COMPONENTS`), summed over
    /// finalized quanta.
    pub fn totals(&self) -> Vec<Cycle> {
        let mut out = vec![0; self.app_count * COMPONENTS];
        for q in &self.quanta {
            for (slot, v) in out.iter_mut().zip(q.ledger.iter()) {
                *slot += v;
            }
        }
        out
    }

    /// Whole-run blame totals (`app_count × app_count`, victim-major),
    /// summed over finalized quanta.
    pub fn blame_totals(&self) -> Vec<Cycle> {
        let mut out = vec![0; self.app_count * self.app_count];
        for q in &self.quanta {
            for (slot, v) in out.iter_mut().zip(q.blame.iter()) {
                *slot += v;
            }
        }
        out
    }

    /// Serialize into `w` (field order is the wire format; see
    /// `restore_state`).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.app_count);
        for t in &self.trackers {
            w.u64(t.last_acct);
            w.u8(t.gap.encode());
            w.u64(t.pending_mem);
            w.u64(t.episode_start);
        }
        w.u64_slice(&self.ledger);
        w.u64_slice(&self.induced_blame);
        w.u64_slice(&self.evictions);
        w.u64_slice(&self.prev_dram_blame);
        w.u64(self.quantum_start);
        w.usize(self.quanta.len());
        for q in &self.quanta {
            w.u64(q.start);
            w.u64(q.end);
            w.u64_slice(&q.ledger);
            w.u64_slice(&q.blame);
        }
    }

    /// Restore state saved by [`RunAttrib::save_state`] into a tracker of
    /// the same shape.
    pub fn restore_state(&mut self, r: &mut StateReader) -> Result<(), PersistError> {
        let corrupt = |what: &str| PersistError::Corrupt(what.to_owned());
        let n = r.usize()?;
        if n != self.app_count {
            return Err(corrupt("attrib app count mismatch"));
        }
        for t in self.trackers.iter_mut() {
            t.last_acct = r.u64()?;
            t.gap = StallKind::decode(r.u8()?)?;
            t.pending_mem = r.u64()?;
            t.episode_start = r.u64()?;
        }
        let ledger = r.u64_vec()?;
        if ledger.len() != n * COMPONENTS {
            return Err(corrupt("attrib ledger shape"));
        }
        let induced = r.u64_vec()?;
        if induced.len() != n * n {
            return Err(corrupt("attrib induced-blame shape"));
        }
        let evictions = r.u64_vec()?;
        if evictions.len() != n * n {
            return Err(corrupt("attrib eviction shape"));
        }
        let prev = r.u64_vec()?;
        if prev.len() != n * n * 3 {
            return Err(corrupt("attrib dram-blame shape"));
        }
        self.ledger = ledger;
        self.induced_blame = induced;
        self.evictions = evictions;
        self.prev_dram_blame = prev;
        self.quantum_start = r.u64()?;
        let count = r.usize()?;
        self.quanta.clear();
        for _ in 0..count {
            let start = r.u64()?;
            let end = r.u64()?;
            let ledger = r.u64_vec()?;
            let blame = r.u64_vec()?;
            if ledger.len() != n * COMPONENTS || blame.len() != n * n || end < start {
                return Err(corrupt("attrib quantum shape"));
            }
            self.quanta.push(QuantumLedger { start, end, ledger, blame });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn component_names_unique_and_stable() {
        let mut seen: Vec<&str> = Component::ALL.iter().map(|c| c.name()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), COMPONENTS);
        assert_eq!(Component::ALL[0].index(), 0);
        assert_eq!(Component::Unresolved.index(), COMPONENTS - 1);
    }

    #[test]
    fn split_prioritizes_service_then_causes() {
        let ep = MemEpisode {
            service: 40,
            cause: [10, 20, 30],
            induced: 15,
            induced_by: Some(1),
            pollution: false,
        };
        let parts = split_stall(100, &ep);
        assert_eq!(parts[Component::DramService.index()], 25);
        assert_eq!(parts[Component::RowMissInduced.index()], 15);
        assert_eq!(parts[Component::DramWriteDrain.index()], 10);
        assert_eq!(parts[Component::DramFrfcfs.index()], 20);
        assert_eq!(parts[Component::DramBankConflict.index()], 30);
        assert_eq!(parts[Component::DramQueueSelf.index()], 0);
        assert_eq!(parts.iter().sum::<Cycle>(), 100);
    }

    #[test]
    fn split_clips_to_stall_length() {
        // Short core-side stall: service swallows everything.
        let ep = MemEpisode {
            service: 500,
            cause: [100, 100, 100],
            induced: 0,
            induced_by: None,
            pollution: false,
        };
        let parts = split_stall(7, &ep);
        assert_eq!(parts[Component::DramService.index()], 7);
        assert_eq!(parts.iter().sum::<Cycle>(), 7);
    }

    #[test]
    fn split_pollution_converts_self_components_only() {
        let ep = MemEpisode {
            service: 30,
            cause: [0, 25, 0],
            induced: 0,
            induced_by: None,
            pollution: true,
        };
        let parts = split_stall(100, &ep);
        assert_eq!(parts[Component::DramService.index()], 0);
        assert_eq!(parts[Component::DramQueueSelf.index()], 0);
        assert_eq!(parts[Component::DramFrfcfs.index()], 25);
        assert_eq!(parts[Component::CachePollution.index()], 75);
        assert_eq!(parts.iter().sum::<Cycle>(), 100);
    }

    #[test]
    fn apportion_is_exact_with_ties_to_lowest_index() {
        let mut out = [0; 3];
        apportion(10, &[1, 1, 1], &mut out);
        assert_eq!(out, [4, 3, 3]);
        let mut out = [0; 3];
        apportion(2, &[0, 5, 5], &mut out);
        assert_eq!(out, [0, 1, 1]);
        let mut out = [0; 2];
        apportion(9, &[0, 0], &mut out);
        assert_eq!(out, [9, 0]);
    }

    /// Drive a tiny two-core scenario end to end and check conservation.
    #[test]
    fn tracker_scenario_conserves_and_blames() {
        let mut run = RunAttrib::new(2);
        // Core 0: compute 0..10, mem stall 10..60 resolved by a completion
        // whose episode is all FR-FCFS interference from core 1.
        for now in 0..10 {
            run.on_tick(0, now, true, StallKind::Progress);
        }
        run.on_tick(0, 10, false, StallKind::MemStall);
        let span = run.on_blocking_completion(
            0,
            60,
            &MemEpisode {
                service: 20,
                cause: [0, 100, 0],
                induced: 0,
                induced_by: None,
                pollution: false,
            },
        );
        assert_eq!(span, Some((10, 50)));
        run.on_tick(0, 60, true, StallKind::Progress);
        // Core 1 computes the whole quantum (gap classification).
        run.on_tick(1, 0, true, StallKind::Progress);
        let mut blame = vec![0; 2 * 2 * 3];
        blame[(0 * 2 + 1) * 3 + 1] = 999; // victim 0, offender 1, row-hit kind
        let q = run.end_quantum(100, &blame);
        assert!(q.conserved());
        assert_eq!(q.len(), 100);
        assert_eq!(q.component(0, Component::DramService), 20);
        assert_eq!(q.component(0, Component::DramFrfcfs), 30);
        assert_eq!(q.component(0, Component::Compute), 50);
        assert_eq!(q.component(1, Component::Compute), 100);
        assert_eq!(q.blamed(0, 1), 30);
        assert_eq!(q.blamed(0, 0), 70);
        assert_eq!(q.blamed(1, 1), 100);
    }

    #[test]
    fn boundary_truncation_lands_in_unresolved() {
        let mut run = RunAttrib::new(1);
        run.on_tick(0, 0, false, StallKind::MemStall);
        let q = run.end_quantum(50, &[0, 0, 0]);
        assert_eq!(q.component(0, Component::Unresolved), 50);
        assert!(q.conserved());
    }

    #[test]
    fn save_restore_roundtrip() {
        let mut run = RunAttrib::new(2);
        run.on_tick(0, 0, true, StallKind::Progress);
        run.on_tick(1, 0, false, StallKind::MemStall);
        run.on_eviction(0, 1);
        run.end_quantum(10, &vec![0; 12]);
        run.on_tick(0, 10, false, StallKind::HitWait);
        let mut w = StateWriter::new("attrib-test", 1);
        run.save_state(&mut w);
        let bytes = w.finish();
        let mut restored = RunAttrib::new(2);
        let mut r = StateReader::new(&bytes, "attrib-test", 1).expect("header");
        restored.restore_state(&mut r).expect("restore");
        r.finish().expect("drained");
        let mut w1 = StateWriter::new("attrib-test", 1);
        run.save_state(&mut w1);
        let mut w2 = StateWriter::new("attrib-test", 1);
        restored.save_state(&mut w2);
        assert_eq!(w1.finish(), w2.finish());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn split_always_sums_to_n(
            n in 0u64..100_000,
            service in 0u64..200_000,
            c0 in 0u64..100_000,
            c1 in 0u64..100_000,
            c2 in 0u64..100_000,
            induced in 0u64..100_000,
            pollution_bit in 0u64..2,
        ) {
            let ep = MemEpisode {
                service,
                cause: [c0, c1, c2],
                induced,
                induced_by: Some(0),
                pollution: pollution_bit == 1,
            };
            let parts = split_stall(n, &ep);
            prop_assert_eq!(parts.iter().sum::<Cycle>(), n);
        }

        #[test]
        fn apportion_always_exact(
            total in 0u64..1_000_000,
            weights in prop::collection::vec(0u64..1_000_000_000, 1..9),
        ) {
            let mut out = vec![0; weights.len()];
            apportion(total, &weights, &mut out);
            prop_assert_eq!(out.iter().sum::<Cycle>(), total);
        }
    }
}
