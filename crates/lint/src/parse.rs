//! The item-level parser: one [`FileModel`] per source file.
//!
//! This is not a full Rust parser — it is the smallest syntactic layer
//! that the v2 passes need on top of the [`crate::tokens`] lexer:
//!
//! - **Delimiter matching** (`match_of`): every `(`/`[`/`{` knows its
//!   partner, so item extents and fn bodies are O(1) jumps. Unmatched
//!   delimiters match themselves; nothing panics on malformed input.
//! - **Test masking**: tokens covered by a `#[cfg(test)]` item (or a
//!   `#[test]` fn) are flagged so rules skip test code exactly like v1.
//! - **Allow directives**: `// asm-lint: allow(R#, ...): reason`
//!   comments, trailing or standalone, now covering R1–R12.
//! - **Items**: `use` trees (with `as` renames, groups, `self`, globs),
//!   `type` aliases (name, right-hand-side head path and ident set),
//!   struct/enum generic-parameter defaults, `fn` definitions (name,
//!   signature line, body token range, enclosing `impl` type), `impl`
//!   block self-types, and every `unsafe` occurrence.
//!
//! The symbol-resolution ([`crate::resolve`]) and call-graph
//! ([`crate::callgraph`]) layers are built from these models; the
//! per-file rules ([`crate::rules`]) walk the token stream directly.

use std::collections::BTreeSet;

use crate::tokens::{lex, Comment, Delim, TokKind, Token};
use crate::RuleId;

/// One local name introduced by a `use` declaration.
#[derive(Debug, Clone)]
pub struct UseBinding {
    /// The name visible in this file (`Map` for `use x::HashMap as Map`).
    pub name: String,
    /// Full path segments as written (`["std", "collections", "HashMap"]`).
    pub path: Vec<String>,
    /// 0-based line of the binding (the segment or rename token).
    pub line: usize,
    /// Whether the `use` is `pub` (a re-export other files can reach).
    pub is_pub: bool,
    /// Whether the binding renames (`as`): renames are what the lexical
    /// v1 rules could not see through.
    pub renamed: bool,
}

/// A `type Name = …;` alias (free or associated).
#[derive(Debug, Clone)]
pub struct TypeAlias {
    /// Alias name.
    pub name: String,
    /// Leading path of the right-hand side (`["std", "collections",
    /// "HashMap"]` for `type F = std::collections::HashMap<u64, u64>`).
    pub rhs_head: Vec<String>,
    /// Every identifier appearing anywhere in the right-hand side
    /// (generic arguments included) — taint propagates through any of
    /// them.
    pub rhs_idents: Vec<String>,
    /// 0-based line of the `type` keyword.
    pub line: usize,
}

/// A generic parameter default on a struct/enum (`struct S<H = Foo>`).
#[derive(Debug, Clone)]
pub struct GenericDefault {
    /// The type that declares the default.
    pub owner: String,
    /// Identifiers of the default's path.
    pub default_idents: Vec<String>,
    /// 0-based line of the declaration.
    pub line: usize,
}

/// One `fn` definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Self type of the enclosing `impl`, if any.
    pub impl_type: Option<String>,
    /// 0-based line of the `fn` keyword (fn-level allow directives bind
    /// here).
    pub sig_line: usize,
    /// Token index of the `fn` keyword.
    pub sig_tok: usize,
    /// Body as a token index range `(open_brace, close_brace)`, or
    /// `None` for body-less declarations (traits, externs).
    pub body: Option<(usize, usize)>,
    /// Whether the first parameter is a `self` receiver. Method-call
    /// syntax (`x.f(…)`) can only reach fns with a receiver, so call
    /// resolution uses this to keep constructors and free fns out of
    /// method edges.
    pub has_self: bool,
    /// Whether the definition sits inside test-masked code.
    pub is_test: bool,
}

/// What an `unsafe` keyword introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { … }` block.
    Block,
    /// `unsafe fn` definition (or fn-pointer type).
    Fn,
    /// `unsafe impl`.
    Impl,
    /// `unsafe trait`.
    Trait,
}

impl UnsafeKind {
    /// Stable lower-case name for the inventory.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            UnsafeKind::Block => "block",
            UnsafeKind::Fn => "fn",
            UnsafeKind::Impl => "impl",
            UnsafeKind::Trait => "trait",
        }
    }
}

/// One `unsafe` occurrence (rule R10's subject).
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Token index of the `unsafe` keyword.
    pub tok: usize,
    /// 0-based line.
    pub line: usize,
    /// 0-based byte column.
    pub col: usize,
    /// Block / fn / impl / trait.
    pub kind: UnsafeKind,
    /// Name of the smallest enclosing fn body, if any.
    pub enclosing_fn: Option<String>,
    /// Whether an adjacent `// SAFETY:` comment justifies it.
    pub has_safety: bool,
    /// Whether the site is inside test-masked code.
    pub is_test: bool,
}

/// A fully analysed source file.
pub struct FileModel {
    /// Display path used in diagnostics.
    pub path: String,
    /// The source text.
    pub src: String,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Comments (allow directives and `SAFETY:` text live here).
    pub comments: Vec<Comment>,
    /// For delimiter tokens: index of the matching partner (self when
    /// unmatched). For all other tokens: the token's own index.
    pub match_of: Vec<usize>,
    /// Per-token: inside a `#[cfg(test)]` item or `#[test]` fn.
    pub test_tokens: Vec<bool>,
    /// 0-based lines covered by test-masked items.
    pub test_lines: BTreeSet<usize>,
    /// `(line, rule)` pairs suppressed by allow directives.
    pub allows: BTreeSet<(usize, RuleId)>,
    /// `use` bindings.
    pub uses: Vec<UseBinding>,
    /// `type` aliases.
    pub aliases: Vec<TypeAlias>,
    /// Struct/enum generic defaults.
    pub generic_defaults: Vec<GenericDefault>,
    /// `fn` definitions.
    pub fns: Vec<FnDef>,
    /// `unsafe` occurrences.
    pub unsafes: Vec<UnsafeSite>,
    /// Lines that carry at least one token (code lines).
    pub line_has_token: BTreeSet<usize>,
}

impl FileModel {
    /// Lexes and parses `content`, labelled `path` in diagnostics.
    #[must_use]
    pub fn new(path: &str, content: &str) -> Self {
        let lexed = lex(content);
        let mut model = FileModel {
            path: path.to_owned(),
            src: content.to_owned(),
            tokens: lexed.tokens,
            comments: lexed.comments,
            match_of: Vec::new(),
            test_tokens: Vec::new(),
            test_lines: BTreeSet::new(),
            allows: BTreeSet::new(),
            uses: Vec::new(),
            aliases: Vec::new(),
            generic_defaults: Vec::new(),
            fns: Vec::new(),
            unsafes: Vec::new(),
            line_has_token: BTreeSet::new(),
        };
        model.match_delims();
        model.line_has_token = model.tokens.iter().map(|t| t.line).collect();
        model.mark_tests();
        model.find_allows();
        model.scan_items();
        model.attach_contexts();
        model.mark_safety_comments();
        model
    }

    /// The source text of token `i` (empty for out-of-range indices).
    #[must_use]
    pub fn text(&self, i: usize) -> &str {
        self.tokens
            .get(i)
            .and_then(|t| self.src.get(t.lo..t.hi))
            .unwrap_or("")
    }

    /// Whether token `i` is the identifier `word`.
    #[must_use]
    pub fn is_ident(&self, i: usize, word: &str) -> bool {
        self.tokens.get(i).is_some_and(|t| t.kind == TokKind::Ident) && self.text(i) == word
    }

    /// Whether token `i` is the punctuation `p`.
    #[must_use]
    pub fn is_punct(&self, i: usize, p: &str) -> bool {
        self.tokens.get(i).is_some_and(|t| t.kind == TokKind::Punct) && self.text(i) == p
    }

    /// Whether 0-based `line` is inside test-masked code.
    #[must_use]
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.contains(&line)
    }

    /// Whether token `i` is inside test-masked code.
    #[must_use]
    pub fn is_test_token(&self, i: usize) -> bool {
        self.test_tokens.get(i).copied().unwrap_or(false)
    }

    /// Whether `rule` is suppressed on 0-based `line`.
    #[must_use]
    pub fn is_allowed(&self, line: usize, rule: RuleId) -> bool {
        self.allows.contains(&(line, rule))
    }

    fn match_delims(&mut self) {
        self.match_of = (0..self.tokens.len()).collect();
        self.test_tokens = vec![false; self.tokens.len()];
        let mut stack: Vec<(Delim, usize)> = Vec::new();
        for (i, t) in self.tokens.iter().enumerate() {
            match t.kind {
                TokKind::Open(d) => stack.push((d, i)),
                TokKind::Close(d) => {
                    // Pop until a matching open; non-matching opens on
                    // top are abandoned (they match themselves).
                    if let Some(pos) = stack.iter().rposition(|&(od, _)| od == d) {
                        let (_, open) = stack[pos];
                        stack.truncate(pos);
                        self.match_of[open] = i;
                        self.match_of[i] = open;
                    }
                }
                _ => {}
            }
        }
    }

    /// Marks `#[cfg(test)]` / `#[test]` item extents.
    fn mark_tests(&mut self) {
        let n = self.tokens.len();
        let mut i = 0usize;
        while i < n {
            if self.is_punct(i, "#")
                && self
                    .tokens
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokKind::Open(Delim::Bracket))
            {
                let close = self.match_of[i + 1];
                if close <= i + 1 {
                    i += 1;
                    continue;
                }
                let inner: Vec<&str> = ((i + 2)..close).map(|j| self.text(j)).collect();
                let is_test_attr = (inner.len() == 1 && inner[0] == "test")
                    || (inner.contains(&"cfg") && inner.contains(&"test"));
                if is_test_attr {
                    // Skip any further attributes, then mask the item.
                    let mut start = close + 1;
                    while self.is_punct(start, "#")
                        && self
                            .tokens
                            .get(start + 1)
                            .is_some_and(|t| t.kind == TokKind::Open(Delim::Bracket))
                        && self.match_of[start + 1] > start + 1
                    {
                        start = self.match_of[start + 1] + 1;
                    }
                    let end = self.item_extent(start);
                    for j in i..=end.min(n.saturating_sub(1)) {
                        self.test_tokens[j] = true;
                        self.test_lines.insert(self.tokens[j].line);
                    }
                    // Attribute lines count as test lines too (v1 did).
                    self.test_lines.insert(self.tokens[i].line);
                    i = close + 1;
                    continue;
                }
                i = close + 1;
                continue;
            }
            i += 1;
        }
    }

    /// The last token index of the item starting at token `start`:
    /// through the matching `}` of the first top-level brace, or the
    /// first top-level `;`.
    fn item_extent(&self, start: usize) -> usize {
        let n = self.tokens.len();
        let mut j = start;
        while j < n {
            match self.tokens[j].kind {
                TokKind::Open(Delim::Brace) => return self.match_of[j].max(j),
                TokKind::Open(_) => {
                    j = self.match_of[j].max(j) + 1;
                    continue;
                }
                TokKind::Close(_) => return j.saturating_sub(1).max(start),
                TokKind::Punct if self.text(j) == ";" => return j,
                _ => {}
            }
            j += 1;
        }
        n.saturating_sub(1).max(start)
    }

    /// Parses `asm-lint: allow(R…): reason` directives out of comments.
    fn find_allows(&mut self) {
        for c in &self.comments {
            let text = self.src.get(c.lo..c.hi).unwrap_or("");
            let Some(rules) = parse_allow(text) else {
                continue;
            };
            // Trailing directive: a token earlier on the same line.
            let trailing = self
                .tokens
                .iter()
                .any(|t| t.line == c.line && t.col < c.col);
            let target = if trailing {
                c.line
            } else {
                // Standalone: the next line carrying code.
                match self.line_has_token.range(c.line..).next() {
                    Some(&l) => l,
                    None => continue,
                }
            };
            for r in rules {
                self.allows.insert((target, r));
            }
        }
    }

    /// One linear walk collecting uses, aliases, defaults, impls, fns,
    /// and unsafe sites.
    fn scan_items(&mut self) {
        let n = self.tokens.len();
        let mut i = 0usize;
        let mut uses = Vec::new();
        let mut aliases = Vec::new();
        let mut defaults = Vec::new();
        let mut fns = Vec::new();
        let mut unsafes = Vec::new();
        while i < n {
            if self.tokens[i].kind != TokKind::Ident {
                i += 1;
                continue;
            }
            match self.text(i) {
                "use" => {
                    let next = self.parse_use(i, &mut uses);
                    i = next.max(i + 1);
                }
                "type" => {
                    if let Some(next) = self.parse_type_alias(i, &mut aliases) {
                        i = next.max(i + 1);
                    } else {
                        i += 1;
                    }
                }
                "struct" | "enum" | "trait" => {
                    self.parse_generic_defaults(i, &mut defaults);
                    i += 1;
                }
                "fn" => {
                    let next = self.parse_fn(i, &mut fns);
                    i = next.max(i + 1);
                }
                "unsafe" => {
                    let kind = if self.is_ident(i + 1, "fn") {
                        UnsafeKind::Fn
                    } else if self.is_ident(i + 1, "impl") {
                        UnsafeKind::Impl
                    } else if self.is_ident(i + 1, "trait") {
                        UnsafeKind::Trait
                    } else {
                        UnsafeKind::Block
                    };
                    unsafes.push(UnsafeSite {
                        tok: i,
                        line: self.tokens[i].line,
                        col: self.tokens[i].col,
                        kind,
                        enclosing_fn: None,
                        has_safety: false,
                        is_test: self.is_test_token(i),
                    });
                    i += 1;
                }
                _ => i += 1,
            }
        }
        self.uses = uses;
        self.aliases = aliases;
        self.generic_defaults = defaults;
        self.fns = fns;
        self.unsafes = unsafes;
    }

    /// Parses one `use` declaration starting at the `use` keyword.
    /// Returns the index just past the terminating `;`.
    fn parse_use(&self, use_tok: usize, out: &mut Vec<UseBinding>) -> usize {
        let is_pub = use_tok > 0
            && (self.is_ident(use_tok - 1, "pub")
                || (self
                    .tokens
                    .get(use_tok - 1)
                    .is_some_and(|t| t.kind == TokKind::Close(Delim::Paren))
                    && self.match_of[use_tok - 1] > 0
                    && self.is_ident(self.match_of[use_tok - 1] - 1, "pub")));
        let mut i = use_tok + 1;
        self.use_tree(&mut i, &mut Vec::new(), is_pub, out, 0);
        // Consume through the `;` if present.
        let n = self.tokens.len();
        while i < n && !self.is_punct(i, ";") {
            i += 1;
        }
        i + 1
    }

    /// Recursive `use`-tree walker. `prefix` is the path so far.
    fn use_tree(
        &self,
        i: &mut usize,
        prefix: &mut Vec<String>,
        is_pub: bool,
        out: &mut Vec<UseBinding>,
        depth: usize,
    ) {
        let n = self.tokens.len();
        if depth > 32 {
            return; // pathological nesting: bail rather than recurse forever
        }
        let base_len = prefix.len();
        let mut seg_line = self.tokens.get(*i).map_or(0, |t| t.line);
        loop {
            let Some(t) = self.tokens.get(*i) else { return };
            match t.kind {
                TokKind::Ident if self.text(*i) == "as" => {
                    // Rename: bind the new name to the accumulated path.
                    let name_tok = *i + 1;
                    if self
                        .tokens
                        .get(name_tok)
                        .is_some_and(|t| t.kind == TokKind::Ident)
                    {
                        out.push(UseBinding {
                            name: self.text(name_tok).to_owned(),
                            path: prefix.clone(),
                            line: self.tokens[name_tok].line,
                            is_pub,
                            renamed: true,
                        });
                        *i = name_tok + 1;
                    } else {
                        *i += 1;
                    }
                    prefix.truncate(base_len);
                    return;
                }
                TokKind::Ident if self.text(*i) == "self" && !prefix.is_empty() => {
                    // `use foo::{self}`: binds the prefix's last segment.
                    if let Some(last) = prefix.last().cloned() {
                        out.push(UseBinding {
                            name: last,
                            path: prefix.clone(),
                            line: t.line,
                            is_pub,
                            renamed: false,
                        });
                    }
                    *i += 1;
                    // An `as` may still follow (`self as x`): loop handles it.
                }
                TokKind::Ident => {
                    prefix.push(self.text(*i).to_owned());
                    seg_line = t.line;
                    *i += 1;
                }
                TokKind::Punct if self.text(*i) == "::" => {
                    *i += 1;
                    match self.tokens.get(*i).map(|t| t.kind) {
                        Some(TokKind::Open(Delim::Brace)) => {
                            let close = self.match_of[*i];
                            *i += 1;
                            while *i < n && *i < close.max(*i) {
                                let before = *i;
                                self.use_tree(i, &mut prefix.clone(), is_pub, out, depth + 1);
                                if self.is_punct(*i, ",") {
                                    *i += 1;
                                }
                                if *i >= close || *i <= before {
                                    break;
                                }
                            }
                            *i = close.max(*i) + 1;
                            prefix.truncate(base_len);
                            return;
                        }
                        Some(TokKind::Punct) if self.text(*i) == "*" => {
                            // Glob: no named binding (literal names are
                            // already caught by R1/R4 at use sites).
                            *i += 1;
                            prefix.truncate(base_len);
                            return;
                        }
                        _ => {}
                    }
                }
                TokKind::Punct if self.text(*i) == "," || self.text(*i) == ";" => {
                    // End of this tree: bind the last segment plainly.
                    self.bind_plain(prefix, seg_line, is_pub, out);
                    prefix.truncate(base_len);
                    return;
                }
                TokKind::Close(Delim::Brace) => {
                    self.bind_plain(prefix, seg_line, is_pub, out);
                    prefix.truncate(base_len);
                    return;
                }
                _ => {
                    *i += 1;
                    prefix.truncate(base_len);
                    return;
                }
            }
        }
    }

    /// Emits the implicit binding for `use a::b::C;` (name = last seg).
    fn bind_plain(&self, prefix: &[String], line: usize, is_pub: bool, out: &mut Vec<UseBinding>) {
        if let Some(last) = prefix.last() {
            if last != "*" {
                out.push(UseBinding {
                    name: last.clone(),
                    path: prefix.to_vec(),
                    line,
                    is_pub,
                    renamed: false,
                });
            }
        }
    }

    /// Parses `type Name<…>? = rhs;`. Returns the index past the `;`,
    /// or `None` when this `type` is a body-less associated-type decl.
    fn parse_type_alias(&self, type_tok: usize, out: &mut Vec<TypeAlias>) -> Option<usize> {
        let name_tok = type_tok + 1;
        if !self
            .tokens
            .get(name_tok)
            .is_some_and(|t| t.kind == TokKind::Ident)
        {
            return None;
        }
        let name = self.text(name_tok).to_owned();
        let mut i = name_tok + 1;
        if self.is_punct(i, "<") {
            i = self.skip_generics(i);
        }
        // Bounds (`type X: Bound = …` in traits) or straight `=`.
        let n = self.tokens.len();
        while i < n && !self.is_punct(i, "=") && !self.is_punct(i, ";") {
            match self.tokens[i].kind {
                TokKind::Open(_) => i = self.match_of[i].max(i) + 1,
                TokKind::Close(_) => return None, // ran out of the item
                _ => i += 1,
            }
        }
        if !self.is_punct(i, "=") {
            return None;
        }
        i += 1;
        // Right-hand side up to the top-level `;`.
        let rhs_start = i;
        let mut rhs_idents = Vec::new();
        while i < n && !self.is_punct(i, ";") {
            match self.tokens[i].kind {
                TokKind::Open(_) => {
                    // Collect idents inside groups too.
                    let close = self.match_of[i].max(i);
                    for j in i..=close.min(n - 1) {
                        if self.tokens[j].kind == TokKind::Ident {
                            rhs_idents.push(self.text(j).to_owned());
                        }
                    }
                    i = close + 1;
                }
                TokKind::Close(_) => break,
                TokKind::Ident => {
                    rhs_idents.push(self.text(i).to_owned());
                    i += 1;
                }
                _ => i += 1,
            }
        }
        // Head path: leading `a::b::C` chain of the rhs.
        let mut rhs_head = Vec::new();
        let mut j = rhs_start;
        while j < n {
            if self.tokens[j].kind == TokKind::Ident {
                rhs_head.push(self.text(j).to_owned());
                j += 1;
                if self.is_punct(j, "::") {
                    j += 1;
                    continue;
                }
            }
            break;
        }
        out.push(TypeAlias {
            name,
            rhs_head,
            rhs_idents,
            line: self.tokens[type_tok].line,
        });
        Some(i + 1)
    }

    /// Records `struct S<…, H = Path>` generic defaults.
    fn parse_generic_defaults(&self, kw_tok: usize, out: &mut Vec<GenericDefault>) {
        let name_tok = kw_tok + 1;
        if !self
            .tokens
            .get(name_tok)
            .is_some_and(|t| t.kind == TokKind::Ident)
        {
            return;
        }
        let owner = self.text(name_tok).to_owned();
        let open = name_tok + 1;
        if !self.is_punct(open, "<") {
            return;
        }
        let close = self.skip_generics(open);
        let mut j = open + 1;
        while j + 1 < close {
            if self.tokens[j].kind == TokKind::Ident && self.is_punct(j + 1, "=") {
                // Collect the default's idents until `,` or the end.
                let mut idents = Vec::new();
                let mut k = j + 2;
                while k < close && !self.is_punct(k, ",") {
                    if self.tokens[k].kind == TokKind::Ident {
                        idents.push(self.text(k).to_owned());
                    }
                    if matches!(self.tokens[k].kind, TokKind::Open(_)) {
                        k = self.match_of[k].max(k);
                    }
                    k += 1;
                }
                if !idents.is_empty() {
                    out.push(GenericDefault {
                        owner: owner.clone(),
                        default_idents: idents,
                        line: self.tokens[j].line,
                    });
                }
                j = k;
            } else {
                j += 1;
            }
        }
    }

    /// Skips a `<…>` generic group starting at the `<`. Returns the
    /// index just past the closing `>` (best-effort on malformed input).
    /// Public so the call-graph layer can step over turbofish.
    #[must_use]
    pub fn skip_generics_pub(&self, open: usize) -> usize {
        self.skip_generics(open)
    }

    fn skip_generics(&self, open: usize) -> usize {
        let n = self.tokens.len();
        let mut depth = 0i64;
        let mut i = open;
        while i < n {
            match self.text(i) {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                ";" => return i, // malformed: stop at statement end
                _ => {
                    if matches!(self.tokens[i].kind, TokKind::Open(_)) {
                        i = self.match_of[i].max(i);
                    }
                }
            }
            i += 1;
            if depth <= 0 {
                return i;
            }
        }
        n
    }

    /// Parses a `fn` definition starting at the `fn` keyword. Returns
    /// the index to resume scanning from (just past the signature — the
    /// body is scanned for nested items by the main loop).
    fn parse_fn(&self, fn_tok: usize, out: &mut Vec<FnDef>) -> usize {
        let name_tok = fn_tok + 1;
        if !self
            .tokens
            .get(name_tok)
            .is_some_and(|t| t.kind == TokKind::Ident)
        {
            return fn_tok + 1; // fn-pointer type `fn(u32)` — not a def
        }
        let name = self.text(name_tok).to_owned();
        let n = self.tokens.len();
        // Find the parameter list: first `(` outside generics.
        let mut i = name_tok + 1;
        if self.is_punct(i, "<") {
            i = self.skip_generics(i);
        }
        if !self
            .tokens
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Open(Delim::Paren))
        {
            return name_tok + 1;
        }
        let params_close = self.match_of[i].max(i);
        // Receiver check: `self` in the first parameter (`self`,
        // `&mut self`, `mut self`, `self: Pin<&mut Self>` all qualify).
        let mut has_self = false;
        let mut k = i + 1;
        while k < params_close {
            match self.tokens[k].kind {
                TokKind::Ident if self.text(k) == "self" => {
                    has_self = true;
                    break;
                }
                TokKind::Punct if self.text(k) == "," => break,
                TokKind::Open(_) => k = self.match_of[k].max(k),
                _ => {}
            }
            k += 1;
        }
        // Find the body `{` (or `;` for body-less declarations), jumping
        // groups and skipping generic angles in the return type.
        let mut j = params_close + 1;
        let mut angle = 0i64;
        let mut body = None;
        while j < n {
            match self.tokens[j].kind {
                TokKind::Open(Delim::Brace) if angle <= 0 => {
                    body = Some((j, self.match_of[j].max(j)));
                    break;
                }
                TokKind::Open(_) => {
                    j = self.match_of[j].max(j);
                }
                TokKind::Close(_) => break, // malformed / trait default end
                TokKind::Punct => match self.text(j) {
                    ";" if angle <= 0 => break,
                    "<" => angle += 1,
                    "<<" => angle += 2,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    _ => {}
                },
                _ => {}
            }
            j += 1;
        }
        out.push(FnDef {
            name,
            impl_type: None,
            sig_line: self.tokens[fn_tok].line,
            sig_tok: fn_tok,
            body,
            has_self,
            is_test: self.is_test_token(fn_tok),
        });
        params_close + 1
    }

    /// Post-pass: attach impl self-types to fns and enclosing fns to
    /// unsafe sites by interval containment.
    fn attach_contexts(&mut self) {
        // Impl ranges: (body_open, body_close, self_type).
        let mut impls: Vec<(usize, usize, String)> = Vec::new();
        let n = self.tokens.len();
        let mut i = 0usize;
        while i < n {
            if self.tokens[i].kind == TokKind::Ident && self.text(i) == "impl" {
                if let Some((open, close, ty)) = self.parse_impl_header(i) {
                    impls.push((open, close, ty));
                    i += 1;
                    continue;
                }
            }
            i += 1;
        }
        for f in &mut self.fns {
            // Innermost impl range containing the fn keyword.
            let mut best: Option<(usize, usize, &String)> = None;
            for (open, close, ty) in &impls {
                if *open < f.sig_tok && f.sig_tok < *close {
                    if best.is_none_or(|(bo, bc, _)| close - open < bc - bo) {
                        best = Some((*open, *close, ty));
                    }
                }
            }
            f.impl_type = best.map(|(_, _, ty)| ty.clone());
        }
        // Enclosing fn for unsafe sites: smallest fn body containing it.
        let bodies: Vec<(usize, usize, String)> = self
            .fns
            .iter()
            .filter_map(|f| f.body.map(|(o, c)| (o, c, f.name.clone())))
            .collect();
        for u in &mut self.unsafes {
            let mut best: Option<(usize, usize, &String)> = None;
            for (o, c, name) in &bodies {
                if *o < u.tok && u.tok < *c && best.is_none_or(|(bo, bc, _)| c - o < bc - bo) {
                    best = Some((*o, *c, name));
                }
            }
            u.enclosing_fn = best.map(|(_, _, name)| name.clone());
        }
    }

    /// Parses an `impl` header at `impl_tok`: returns the body brace
    /// range and the self type name.
    fn parse_impl_header(&self, impl_tok: usize) -> Option<(usize, usize, String)> {
        let n = self.tokens.len();
        let mut i = impl_tok + 1;
        if self.is_punct(i, "<") {
            i = self.skip_generics(i);
        }
        let mut angle = 0i64;
        let mut candidate: Option<String> = None;
        let mut in_where = false;
        while i < n {
            match self.tokens[i].kind {
                TokKind::Open(Delim::Brace) if angle <= 0 => {
                    let close = self.match_of[i].max(i);
                    return candidate.map(|ty| (i, close, ty));
                }
                TokKind::Open(_) => i = self.match_of[i].max(i),
                TokKind::Close(_) => return None,
                TokKind::Punct => match self.text(i) {
                    ";" if angle <= 0 => return None,
                    "<" => angle += 1,
                    "<<" => angle += 2,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    _ => {}
                },
                TokKind::Ident if angle <= 0 => match self.text(i) {
                    "for" => candidate = None, // self type follows `for`
                    "where" => in_where = true,
                    "dyn" | "mut" | "const" => {}
                    w if !in_where => candidate = Some(w.to_owned()),
                    _ => {}
                },
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// Marks unsafe sites that carry an adjacent `// SAFETY:` comment:
    /// trailing on the same line, or a contiguous comment block ending
    /// on one of the lines directly above (only comment-only lines may
    /// intervene).
    fn mark_safety_comments(&mut self) {
        // Comment lines (any line touched by a comment) and SAFETY lines.
        let mut comment_lines = BTreeSet::new();
        let mut safety_lines = BTreeSet::new();
        for c in &self.comments {
            let text = self.src.get(c.lo..c.hi).unwrap_or("");
            for l in c.line..=c.end_line {
                comment_lines.insert(l);
            }
            if text.contains("SAFETY:") {
                for l in c.line..=c.end_line {
                    safety_lines.insert(l);
                }
            }
        }
        let line_has_token = self.line_has_token.clone();
        for u in &mut self.unsafes {
            if safety_lines.contains(&u.line) {
                u.has_safety = true;
                continue;
            }
            // Walk upward over comment-only lines.
            let mut l = u.line;
            while l > 0 {
                l -= 1;
                let code = line_has_token.contains(&l);
                let comment = comment_lines.contains(&l);
                if comment && safety_lines.contains(&l) {
                    u.has_safety = true;
                    break;
                }
                if code || !comment {
                    break; // hit a code line or a blank line
                }
            }
        }
    }
}

/// Extracts the rule list from one comment's text, if it is an
/// `asm-lint: allow(...)` directive.
fn parse_allow(comment: &str) -> Option<Vec<RuleId>> {
    let idx = comment.find("asm-lint:")?;
    let rest = comment[idx + "asm-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<RuleId> = rest[..close].split(',').filter_map(RuleId::parse).collect();
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::new("t.rs", src)
    }

    #[test]
    fn cfg_test_region_covers_module_body() {
        let src = "\
fn prod() { }

#[cfg(test)]
mod tests {
    fn helper() { }
}

fn also_prod() { }
";
        let m = model(src);
        assert!(!m.is_test_line(0));
        assert!(m.is_test_line(2));
        assert!(m.is_test_line(3));
        assert!(m.is_test_line(4));
        assert!(m.is_test_line(5));
        assert!(!m.is_test_line(7));
        let fns: Vec<(&str, bool)> = m.fns.iter().map(|f| (f.name.as_str(), f.is_test)).collect();
        assert_eq!(fns, vec![("prod", false), ("helper", true), ("also_prod", false)]);
    }

    #[test]
    fn braceless_cfg_test_item_stops_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() { }\n";
        let m = model(src);
        assert!(m.is_test_line(1));
        assert!(!m.is_test_line(2));
    }

    #[test]
    fn allow_directive_trailing_and_standalone() {
        let src = "\
let a = frob(); // asm-lint: allow(R2): invariant stated elsewhere
// asm-lint: allow(R1, R3): migration pending
let b = frob();
let c = frob();
// asm-lint: allow(R9): quantum-boundary path
fn boundary() { }
";
        let m = model(src);
        assert!(m.is_allowed(0, RuleId::R2));
        assert!(!m.is_allowed(0, RuleId::R1));
        assert!(m.is_allowed(2, RuleId::R1));
        assert!(m.is_allowed(2, RuleId::R3));
        assert!(!m.is_allowed(3, RuleId::R1));
        assert!(m.is_allowed(5, RuleId::R9));
    }

    #[test]
    fn use_trees_expand_groups_renames_and_self() {
        let src = "\
use std::collections::{BTreeMap, HashMap as Map};
pub use crate::inner::{self, Fast as Public};
use a::b::*;
";
        let m = model(src);
        let names: Vec<(&str, String, bool, bool)> = m
            .uses
            .iter()
            .map(|u| (u.name.as_str(), u.path.join("::"), u.renamed, u.is_pub))
            .collect();
        assert!(names.contains(&("BTreeMap".into(), "std::collections::BTreeMap".into(), false, false)), "{names:?}");
        assert!(names.contains(&("Map".into(), "std::collections::HashMap".into(), true, false)), "{names:?}");
        assert!(names.contains(&("inner".into(), "crate::inner".into(), false, true)), "{names:?}");
        assert!(names.contains(&("Public".into(), "crate::inner::Fast".into(), true, true)), "{names:?}");
    }

    #[test]
    fn type_aliases_capture_head_and_generic_idents() {
        let src = "type Fast = std::collections::HashMap<u64, MyVal>;\ntype Plain = Vec<u8>;\n";
        let m = model(src);
        assert_eq!(m.aliases.len(), 2);
        assert_eq!(m.aliases[0].name, "Fast");
        assert_eq!(m.aliases[0].rhs_head, vec!["std", "collections", "HashMap"]);
        assert!(m.aliases[0].rhs_idents.contains(&"MyVal".to_owned()));
        assert_eq!(m.aliases[1].rhs_head, vec!["Vec"]);
    }

    #[test]
    fn generic_defaults_are_recorded() {
        let src = "struct S<K, V, H = RandomState> { k: K, v: V, h: H }\n";
        let m = model(src);
        assert_eq!(m.generic_defaults.len(), 1);
        assert_eq!(m.generic_defaults[0].owner, "S");
        assert_eq!(m.generic_defaults[0].default_idents, vec!["RandomState"]);
    }

    #[test]
    fn fns_get_impl_context_and_bodies() {
        let src = "\
struct System;
impl System {
    pub fn step(&mut self) { self.tick(); }
    fn tick(&self) { }
}
impl std::fmt::Display for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
}
fn free() -> u64 { 3 }
";
        let m = model(src);
        let sigs: Vec<(String, Option<String>, bool)> = m
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.impl_type.clone(), f.body.is_some()))
            .collect();
        assert!(sigs.contains(&("step".into(), Some("System".into()), true)), "{sigs:?}");
        assert!(sigs.contains(&("tick".into(), Some("System".into()), true)), "{sigs:?}");
        assert!(sigs.contains(&("fmt".into(), Some("System".into()), true)), "{sigs:?}");
        assert!(sigs.contains(&("free".into(), None, true)), "{sigs:?}");
    }

    #[test]
    fn unsafe_sites_and_safety_adjacency() {
        let src = "\
fn a() {
    // SAFETY: the slice is length-checked above.
    let x = unsafe { load() };
}
fn b() {
    let y = unsafe { load() };
}
fn c() {
    let z = unsafe { load() }; // SAFETY: trailing form
}
";
        let m = model(src);
        assert_eq!(m.unsafes.len(), 3);
        assert!(m.unsafes[0].has_safety);
        assert!(!m.unsafes[1].has_safety);
        assert!(m.unsafes[2].has_safety);
        assert_eq!(m.unsafes[0].enclosing_fn.as_deref(), Some("a"));
        assert_eq!(m.unsafes[1].enclosing_fn.as_deref(), Some("b"));
        assert_eq!(m.unsafes[0].kind, UnsafeKind::Block);
    }

    #[test]
    fn multiline_safety_comment_blocks_count() {
        let src = "\
fn a() {
    // SAFETY: SSE2 is baseline and the load
    // reads inside the length-checked slice;
    // branchless beats the fallback here.
    let m = unsafe { go() };
}
";
        let m = model(src);
        assert!(m.unsafes[0].has_safety);
    }

    #[test]
    fn malformed_input_never_panics() {
        for src in [
            "fn f( {",
            "impl {",
            "use ::;",
            "type = ;",
            "unsafe",
            "fn",
            "}}}",
            "#[cfg(test)",
            "struct S<",
        ] {
            let m = model(src);
            let _ = (&m.fns, &m.uses, &m.aliases);
        }
    }
}
