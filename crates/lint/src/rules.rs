//! The seven determinism & simulation-safety rules (R1–R7).
//!
//! Each rule scans a [`SourceModel`] line by line over the cleaned text
//! (comments and literal bodies blanked), skips `#[cfg(test)]` regions
//! where the rule permits test code, and honours per-line
//! `// asm-lint: allow(Rn): reason` directives.

use crate::source::{is_ident_byte, RuleId, SourceModel};

/// One rule violation, with a 1-based line for display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Display path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: RuleId,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Runs every rule against one analysed file.
#[must_use]
pub fn check(model: &SourceModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    rule_r1_hash_collections(model, &mut out);
    rule_r2_unwrap(model, &mut out);
    rule_r3_float_eq(model, &mut out);
    rule_r4_entropy(model, &mut out);
    rule_r5_lossy_casts(model, &mut out);
    rule_r6_thread_sync(model, &mut out);
    rule_r7_print(model, &mut out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

fn push(
    model: &SourceModel,
    out: &mut Vec<Diagnostic>,
    line: usize,
    rule: RuleId,
    message: String,
) {
    if model.is_allowed(line, rule) {
        return;
    }
    out.push(Diagnostic {
        path: model.path.clone(),
        line: line + 1,
        rule,
        message,
    });
}

/// Finds `needle` as a whole word in `hay`, starting at `from`.
fn find_word(hay: &str, needle: &str, from: usize) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut start = from;
    while let Some(pos) = hay.get(start..).and_then(|s| s.find(needle)) {
        let abs = start + pos;
        let before_ok = abs == 0 || !is_ident_byte(bytes[abs - 1]);
        let after = abs + needle.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(abs);
        }
        start = abs + 1;
    }
    None
}

fn contains_word(hay: &str, needle: &str) -> bool {
    find_word(hay, needle, 0).is_some()
}

/// R1: no `HashMap`/`HashSet` in simulation code. Hash iteration order is
/// randomized per process and feeds simulated event order.
fn rule_r1_hash_collections(model: &SourceModel, out: &mut Vec<Diagnostic>) {
    for (i, line) in model.cleaned.iter().enumerate() {
        if model.is_test_line(i) {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            if contains_word(line, ty) {
                push(
                    model,
                    out,
                    i,
                    RuleId::R1,
                    format!(
                        "simulation code uses `{ty}` — iteration order is \
                         process-randomized and can reorder simulated events; \
                         use `BTreeMap`/`BTreeSet` or an explicitly sorted drain"
                    ),
                );
            }
        }
    }
}

/// Minimum length for an `expect` message to count as a stated invariant.
const MIN_INVARIANT_LEN: usize = 10;

/// R2: no `unwrap()` and no bare `expect` outside `#[cfg(test)]`.
fn rule_r2_unwrap(model: &SourceModel, out: &mut Vec<Diagnostic>) {
    for (i, line) in model.cleaned.iter().enumerate() {
        if model.is_test_line(i) {
            continue;
        }
        // `.unwrap()` — exact method name, not unwrap_or/unwrap_err/...
        let mut from = 0;
        while let Some(pos) = find_word(line, "unwrap", from) {
            from = pos + 6;
            let preceded_by_dot = line[..pos].trim_end().ends_with('.');
            let followed_by_call = line[pos + 6..].trim_start().starts_with('(');
            if preceded_by_dot && followed_by_call {
                push(
                    model,
                    out,
                    i,
                    RuleId::R2,
                    "`unwrap()` in simulation code — state the invariant with \
                     `expect(\"...\")` or propagate the error"
                        .to_owned(),
                );
            }
        }
        // `.expect("msg")` — message must state an invariant.
        let mut from = 0;
        while let Some(pos) = find_word(line, "expect", from) {
            from = pos + 6;
            let preceded_by_dot = line[..pos].trim_end().ends_with('.');
            if !preceded_by_dot {
                continue;
            }
            let after = &line[pos + 6..];
            if !after.trim_start().starts_with('(') {
                continue;
            }
            // Read the original text (literals intact), possibly spanning
            // lines, and extract the first string-literal argument.
            let window = model.original_window(i, pos, 4);
            match expect_message(&window) {
                Some(msg) if msg.chars().count() >= MIN_INVARIANT_LEN => {}
                Some(_) => push(
                    model,
                    out,
                    i,
                    RuleId::R2,
                    "bare `expect` — the message is too short to state an \
                     invariant; explain why this cannot fail"
                        .to_owned(),
                ),
                None => push(
                    model,
                    out,
                    i,
                    RuleId::R2,
                    "`expect` without a literal invariant message — state why \
                     this cannot fail in a string literal"
                        .to_owned(),
                ),
            }
        }
    }
}

/// Extracts the first string-literal argument after `expect(` in `window`
/// (which starts at the `expect` token).
fn expect_message(window: &str) -> Option<String> {
    let open = window.find('(')?;
    let rest = &window[open + 1..];
    // Only accept a literal that starts the argument list (after
    // whitespace); `expect(&format!(...))` and friends are not literals.
    let trimmed = rest.trim_start();
    let inner = trimmed.strip_prefix('"')?;
    let mut msg = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(msg),
            '\\' => {
                if let Some(e) = chars.next() {
                    msg.push(e);
                }
            }
            _ => msg.push(c),
        }
    }
    None
}

/// Operand-boundary characters for R3's textual operand extraction.
const OPERAND_BOUNDARY: &[char] = &[
    ',', ';', '(', '{', '[', ')', '}', ']', '&', '|', '<', '>', '?',
];

/// R3: no `f64`/`f32` `==`/`!=` comparisons. Detection is textual: either
/// operand mentions a float literal, an `f64`/`f32` type, or a float-ish
/// accessor. Slowdown/CAR ratios must be compared with an epsilon (see
/// `asm_metrics::approx`) or in integer cycle math.
fn rule_r3_float_eq(model: &SourceModel, out: &mut Vec<Diagnostic>) {
    for (i, line) in model.cleaned.iter().enumerate() {
        if model.is_test_line(i) {
            continue;
        }
        let bytes = line.as_bytes();
        for pos in 0..bytes.len().saturating_sub(1) {
            let op = &bytes[pos..pos + 2];
            let is_eq = op == b"==";
            let is_ne = op == b"!=";
            if !is_eq && !is_ne {
                continue;
            }
            // Reject `===`/`!==`/`<=`/`>=`/`=>`-adjacent forms.
            if pos > 0 && matches!(bytes[pos - 1], b'=' | b'!' | b'<' | b'>') {
                continue;
            }
            if bytes.get(pos + 2) == Some(&b'=') {
                continue;
            }
            let left = &line[..pos];
            let right = &line[pos + 2..];
            let left_op = left.rsplit(OPERAND_BOUNDARY).next().unwrap_or("");
            let right_op = right.split(OPERAND_BOUNDARY).next().unwrap_or("");
            if is_floaty(left_op) || is_floaty(right_op) {
                push(
                    model,
                    out,
                    i,
                    RuleId::R3,
                    format!(
                        "float `{}` comparison — exact equality on f64/f32 is \
                         fragile; use an epsilon helper or integer cycle math",
                        if is_eq { "==" } else { "!=" }
                    ),
                );
            }
        }
    }
}

/// Whether an operand snippet is textually float-typed: a float literal
/// (`1.0`, `0.5`), an `f64`/`f32` mention (type ascription or cast), or
/// the float constants `NAN`/`INFINITY`.
fn is_floaty(operand: &str) -> bool {
    let op = operand.trim();
    if contains_word(op, "f64") || contains_word(op, "f32") {
        return true;
    }
    if contains_word(op, "NAN") || contains_word(op, "INFINITY") {
        return true;
    }
    // Float literal: digit '.' digit (excludes ranges `0..1` and tuple
    // field access `x.0` which lacks a digit before the dot).
    let b = op.as_bytes();
    (0..b.len().saturating_sub(2)).any(|i| {
        b[i].is_ascii_digit()
            && b[i + 1] == b'.'
            && b[i + 2].is_ascii_digit()
            && (i == 0 || !is_ident_byte(b[i - 1]))
    })
}

/// R4: no wall-clock or OS entropy in simulation crates — `SimRng` only.
/// (`std::time::Duration` is a plain value type and stays legal.)
fn rule_r4_entropy(model: &SourceModel, out: &mut Vec<Diagnostic>) {
    const BANNED: &[(&str, &str)] = &[
        ("Instant", "wall-clock time is not simulated time"),
        ("SystemTime", "wall-clock time is not simulated time"),
        ("thread_rng", "OS entropy breaks seed-reproducibility"),
        ("from_entropy", "OS entropy breaks seed-reproducibility"),
        ("getrandom", "OS entropy breaks seed-reproducibility"),
        (
            "RandomState",
            "per-process hash randomization breaks seed-reproducibility",
        ),
    ];
    for (i, line) in model.cleaned.iter().enumerate() {
        if model.is_test_line(i) {
            continue;
        }
        for &(word, why) in BANNED {
            if contains_word(line, word) {
                push(
                    model,
                    out,
                    i,
                    RuleId::R4,
                    format!("`{word}` in simulation code — {why}; derive all randomness from `SimRng`"),
                );
            }
        }
        // External `rand` crate paths (`rand::...` / `use rand`).
        if let Some(pos) = find_word(line, "rand", 0) {
            let after = line[pos + 4..].trim_start();
            let before = line[..pos].trim_end();
            let is_path_root = after.starts_with("::")
                && !before.ends_with("::")
                && !before.ends_with('.');
            let is_use = before.ends_with("use") && (after.starts_with("::") || after.starts_with(';'));
            if is_path_root || is_use {
                push(
                    model,
                    out,
                    i,
                    RuleId::R4,
                    "external `rand` crate in simulation code — OS-seeded RNGs \
                     break seed-reproducibility; derive all randomness from `SimRng`"
                        .to_owned(),
                );
            }
        }
    }
}

/// Numeric cast target types R5 watches for.
const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64", "Cycle",
];

/// Path fragments that place a file inside billing/accounting arithmetic.
const MONEY_PATHS: &[&str] = &["billing.rs", "accounting.rs"];

/// R5: in billing/accounting arithmetic, every numeric `as` cast must be
/// justified (allow directive) or replaced with a lossless conversion —
/// silent truncation or precision loss there corrupts what tenants are
/// charged.
fn rule_r5_lossy_casts(model: &SourceModel, out: &mut Vec<Diagnostic>) {
    if !MONEY_PATHS.iter().any(|p| model.path.ends_with(p)) {
        return;
    }
    for (i, line) in model.cleaned.iter().enumerate() {
        if model.is_test_line(i) {
            continue;
        }
        let mut from = 0;
        while let Some(pos) = find_word(line, "as", from) {
            from = pos + 2;
            let target = line[pos + 2..].trim_start();
            let casts_to_numeric = NUMERIC_TYPES
                .iter()
                .any(|ty| target.starts_with(ty) && !is_ident_byte(*target.as_bytes().get(ty.len()).unwrap_or(&b' ')));
            if casts_to_numeric {
                push(
                    model,
                    out,
                    i,
                    RuleId::R5,
                    "numeric `as` cast in billing/accounting arithmetic — \
                     potential silent truncation/precision loss; use `From`/`try_from` \
                     or justify with an allow directive"
                        .to_owned(),
                );
            }
        }
    }
}

/// Synchronisation primitives R6 bans in simulation code. `Arc` is
/// deliberately absent: shared *ownership* is deterministic; shared
/// *mutable state behind a lock* is not.
const SYNC_PRIMITIVES: &[&str] = &[
    "Mutex", "RwLock", "Condvar", "Barrier", "OnceLock", "LazyLock", "mpsc", "JoinHandle",
];

/// R6: no threads or synchronisation primitives in simulation crates.
///
/// The simulator must be a pure single-threaded function of its inputs:
/// lock acquisition order and atomic read-modify-write interleavings
/// depend on the OS scheduler, so any `std::thread` / `std::sync` use
/// (beyond `Arc`, which is mere shared ownership) could make simulated
/// event order vary run to run. Parallelism lives exclusively in the
/// harness crates (`experiments`/`bench`), which fan out *whole*
/// simulations and merge results in submission order.
///
/// Emits at most one diagnostic per line (first trigger wins).
fn rule_r6_thread_sync(model: &SourceModel, out: &mut Vec<Diagnostic>) {
    for (i, line) in model.cleaned.iter().enumerate() {
        if model.is_test_line(i) {
            continue;
        }
        if let Some(msg) = r6_violation(line) {
            push(model, out, i, RuleId::R6, msg);
        }
    }
}

/// First R6 trigger on a cleaned line, if any.
fn r6_violation(line: &str) -> Option<String> {
    // `std::thread` / `thread::spawn` / `use std::thread;` — the word
    // `thread` in path position (next to `::`). Plain identifiers named
    // `thread` and words like `thread_rng` (R4's business) stay out.
    let mut from = 0;
    while let Some(pos) = find_word(line, "thread", from) {
        from = pos + 6;
        let is_path = line[..pos].trim_end().ends_with("::")
            || line[pos + 6..].trim_start().starts_with("::");
        if is_path {
            return Some(
                "`std::thread` in simulation code — the simulator must stay \
                 single-threaded; parallelism lives in the harness crates \
                 (`experiments`/`bench`)"
                    .to_owned(),
            );
        }
    }
    // `std::sync::*` paths other than `std::sync::Arc`.
    let mut from = 0;
    while let Some(pos) = find_word(line, "std", from) {
        from = pos + 3;
        let after = &line[pos + 3..];
        let Some(rest) = after.strip_prefix("::sync") else {
            continue;
        };
        if rest.as_bytes().first().copied().is_some_and(is_ident_byte) {
            continue; // `std::sync` must end the path segment
        }
        let arc_only = rest
            .strip_prefix("::Arc")
            .is_some_and(|tail| !tail.as_bytes().first().copied().is_some_and(is_ident_byte));
        if !arc_only {
            return Some(
                "`std::sync` (beyond `Arc`) in simulation code — locks and \
                 channels make event order depend on thread scheduling; keep \
                 synchronisation in the harness crates (`experiments`/`bench`)"
                    .to_owned(),
            );
        }
    }
    // Primitive type names, wherever imported from.
    for &word in SYNC_PRIMITIVES {
        if contains_word(line, word) {
            return Some(format!(
                "`{word}` in simulation code — lock/channel timing depends on \
                 thread scheduling and can reorder simulated events; keep \
                 synchronisation in the harness crates (`experiments`/`bench`)"
            ));
        }
    }
    // `Atomic*` types (AtomicUsize, AtomicBool, AtomicU64, ...): an
    // identifier starting with `Atomic` at a word boundary.
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(rel) = line.get(start..).and_then(|s| s.find("Atomic")) {
        let abs = start + rel;
        start = abs + 1;
        if abs == 0 || !is_ident_byte(bytes[abs - 1]) {
            return Some(
                "atomic type in simulation code — read-modify-write \
                 interleavings depend on thread scheduling; keep atomics in \
                 the harness crates (`experiments`/`bench`)"
                    .to_owned(),
            );
        }
    }
    None
}

/// Print macros R7 bans in simulation code.
const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// R7: no `println!`/`print!`/`eprintln!`/`eprint!`/`dbg!` in simulation
/// crates.
///
/// Experiment stdout must be byte-identical across `--jobs` values and
/// seeds, and stderr is reserved for harness progress chatter — a print
/// buried in simulation code breaks both and hides state from the
/// telemetry layer. Observability goes through `asm-telemetry` (counters,
/// series, traces) or data returned to the harness; tests may print
/// freely.
fn rule_r7_print(model: &SourceModel, out: &mut Vec<Diagnostic>) {
    for (i, line) in model.cleaned.iter().enumerate() {
        if model.is_test_line(i) {
            continue;
        }
        for &mac in PRINT_MACROS {
            let mut from = 0;
            while let Some(pos) = find_word(line, mac, from) {
                from = pos + mac.len();
                if !line[pos + mac.len()..].starts_with('!') {
                    continue;
                }
                push(
                    model,
                    out,
                    i,
                    RuleId::R7,
                    format!(
                        "`{mac}!` in simulation code — stdout/stderr must stay \
                         reserved for the harness (tables are byte-compared \
                         across runs); record state via `asm-telemetry` \
                         counters/series/traces or return it to the caller"
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(path: &str, src: &str) -> Vec<Diagnostic> {
        check(&SourceModel::new(path, src))
    }

    #[test]
    fn r1_fires_outside_tests_only() {
        let src = "\
use std::collections::HashMap;
fn f() { let m: HashMap<u64, u64> = HashMap::new(); }
#[cfg(test)]
mod tests { use std::collections::HashSet; }
";
        let d = diag("x.rs", src);
        // One diagnostic per line per offending type.
        assert_eq!(d.iter().filter(|d| d.rule == RuleId::R1).count(), 2);
        assert!(d.iter().all(|d| d.line <= 2));
    }

    #[test]
    fn r2_distinguishes_bare_and_invariant_expect() {
        let src = "\
fn f(o: Option<u32>) -> u32 {
    let a = o.unwrap();
    let b = o.expect(\"ok\");
    let c = o.unwrap_or(3);
    let d = o.expect(\"checked non-empty at enqueue time\");
    a + b + c + d
}
";
        let d = diag("x.rs", src);
        let r2: Vec<_> = d.iter().filter(|d| d.rule == RuleId::R2).collect();
        assert_eq!(r2.len(), 2, "{r2:?}");
        assert_eq!(r2[0].line, 2);
        assert_eq!(r2[1].line, 3);
    }

    #[test]
    fn r3_catches_float_literal_comparison() {
        let src = "fn f(x: f64) -> bool { x == 1.0 }\n";
        let d = diag("x.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == RuleId::R3).count(), 1);
        // Integer comparisons stay legal.
        assert!(diag("x.rs", "fn g(x: u64) -> bool { x == 10 }\n").is_empty());
        // Ranges are not float literals.
        assert!(diag("x.rs", "fn h(x: u64) -> bool { (0..1).contains(&x) }\n").is_empty());
    }

    #[test]
    fn r4_bans_wall_clock_and_rand() {
        let src = "\
use std::time::Instant;
use rand::Rng;
fn f() { let t = std::time::SystemTime::now(); }
fn ok() { let d = std::time::Duration::from_secs(1); }
";
        let d = diag("x.rs", src);
        let r4 = d.iter().filter(|d| d.rule == RuleId::R4).count();
        assert_eq!(r4, 3, "{d:?}");
        assert!(!d.iter().any(|d| d.line == 4), "Duration must stay legal");
    }

    #[test]
    fn r5_scoped_to_money_paths() {
        let src = "fn f(x: u64) -> f64 { x as f64 }\n";
        assert_eq!(diag("crates/dram/src/accounting.rs", src).len(), 1);
        assert!(diag("crates/dram/src/bank.rs", src).is_empty());
    }

    #[test]
    fn r6_bans_threads_and_sync_primitives() {
        let src = "\
use std::thread;
use std::sync::Mutex;
fn f() { let h = std::thread::spawn(|| 1); h.join(); }
fn g(m: &Mutex<u64>) { *m.lock().expect(\"lock is never poisoned here\") += 1; }
fn a() { let c = std::sync::atomic::AtomicUsize::new(0); }
";
        let d = diag("crates/dram/src/x.rs", src);
        let r6: Vec<_> = d.iter().filter(|d| d.rule == RuleId::R6).map(|d| d.line).collect();
        assert_eq!(r6, vec![1, 2, 3, 4, 5], "{d:#?}");
    }

    #[test]
    fn r6_allows_arc_and_test_code() {
        // Arc is deterministic shared ownership; `thread` as a plain
        // identifier is not a path; tests may synchronise freely.
        let src = "\
use std::sync::Arc;
fn f(x: Arc<u64>) -> u64 { let thread = *x; thread }
#[cfg(test)]
mod tests { use std::thread; fn t() { thread::yield_now(); } }
";
        assert!(diag("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn r6_allow_directive_suppresses() {
        let src = "\
// asm-lint: allow(R6): single-threaded lock, documented invariant
use std::sync::Mutex;
";
        assert!(diag("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn r7_bans_print_macros_outside_tests() {
        let src = "\
fn f() { println!(\"x\"); }
fn g() { eprintln!(\"y\"); dbg!(3); }
fn h() { print!(\"z\"); eprint!(\"w\"); }
fn ok() { let println = 1; format!(\"{println}\"); }
#[cfg(test)]
mod tests { fn t() { println!(\"test chatter is fine\"); } }
";
        let d = diag("crates/dram/src/x.rs", src);
        let r7: Vec<_> = d.iter().filter(|d| d.rule == RuleId::R7).map(|d| d.line).collect();
        assert_eq!(r7, vec![1, 2, 2, 3, 3], "{d:#?}");
    }

    #[test]
    fn r7_allow_directive_suppresses() {
        let src = "\
// asm-lint: allow(R7): one-shot diagnostic behind an env flag
fn f() { eprintln!(\"debug\"); }
";
        assert!(diag("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_directive_suppresses() {
        let src = "\
fn f(o: Option<u32>) -> u32 {
    // asm-lint: allow(R2): demo suppression
    o.unwrap()
}
";
        assert!(diag("x.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "\
fn f() -> &'static str {
    // HashMap unwrap() Instant 1.0 == 2.0
    \"HashMap unwrap() Instant 1.0 == 2.0\"
}
";
        assert!(diag("x.rs", src).is_empty());
    }
}
