//! The per-file rules (R1–R7, R10–R13), re-implemented on the token
//! stream.
//!
//! Each rule walks a [`FileModel`]'s tokens — comments and literal
//! bodies are simply not there, so strings and comments can never fire
//! a rule (strictly fewer false positives than the v1 blanking pass,
//! and fewer false negatives inside macros and raw strings). Rules skip
//! `#[cfg(test)]` regions where test code is exempt and honour per-line
//! `// asm-lint: allow(Rn): reason` directives; suppressed diagnostics
//! are returned separately so the JSON report can audit them.

use crate::parse::FileModel;
use crate::tokens::{Delim, TokKind};
use crate::{FileRole, Options, RuleId};

/// One rule violation, with 1-based line/column for display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Display path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// Which rule fired.
    pub rule: RuleId,
    /// Human-readable explanation.
    pub message: String,
    /// Whether an allow directive suppressed it (suppressed diagnostics
    /// never fail the build but stay visible in `--json` output).
    pub allowed: bool,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Runs the per-file rules for one analysed file under its role.
/// Returns `(active, suppressed)` diagnostics, unsorted — call
/// [`finish`] once all files (and workspace passes) contributed.
#[must_use]
pub fn check(
    model: &FileModel,
    role: FileRole,
    _opts: &Options,
) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    let mut sink = Sink::default();
    match role {
        FileRole::Sim => {
            rule_r1_hash_collections(model, &mut sink);
            rule_r2_unwrap(model, &mut sink);
            rule_r3_float_eq(model, &mut sink);
            rule_r4_entropy(model, &mut sink);
            rule_r5_lossy_casts(model, &mut sink);
            rule_r6_thread_sync(model, &mut sink);
            rule_r7_print(model, &mut sink);
            rule_r10_safety_comments(model, &mut sink);
            rule_r12_persist_framing(model, &mut sink);
            rule_r13_metric_names(model, &mut sink);
        }
        FileRole::Harness => {
            rule_r10_safety_comments(model, &mut sink);
            rule_r11_lock_discipline(model, &mut sink);
        }
    }
    (sink.active, sink.suppressed)
}

/// Deduplicates (same path/line/rule/message collapses to the leftmost
/// column) and sorts by `(path, line, rule, col)` so output is stable
/// regardless of scan order — the property a future `--jobs`-style
/// parallel file walk must preserve.
#[must_use]
pub fn finish(
    active: Vec<Diagnostic>,
    suppressed: Vec<Diagnostic>,
) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    (dedup_sort(active), dedup_sort(suppressed))
}

fn dedup_sort(mut v: Vec<Diagnostic>) -> Vec<Diagnostic> {
    v.sort_by(|a, b| {
        (&a.path, a.line, a.rule, a.col, &a.message).cmp(&(&b.path, b.line, b.rule, b.col, &b.message))
    });
    v.dedup_by(|next, kept| {
        kept.path == next.path
            && kept.line == next.line
            && kept.rule == next.rule
            && kept.message == next.message
    });
    v
}

/// Collects active and suppressed diagnostics for one file.
#[derive(Default)]
struct Sink {
    active: Vec<Diagnostic>,
    suppressed: Vec<Diagnostic>,
}

impl Sink {
    fn emit(&mut self, model: &FileModel, line: usize, col: usize, rule: RuleId, message: String) {
        let allowed = model.is_allowed(line, rule);
        let d = Diagnostic {
            path: model.path.clone(),
            line: line + 1,
            col: col + 1,
            rule,
            message,
            allowed,
        };
        if allowed {
            self.suppressed.push(d);
        } else {
            self.active.push(d);
        }
    }

    fn emit_at(&mut self, model: &FileModel, tok: usize, rule: RuleId, message: String) {
        let t = &model.tokens[tok];
        self.emit(model, t.line, t.col, rule, message);
    }
}

/// R1: no `HashMap`/`HashSet` in simulation code. Hash iteration order
/// is randomized per process and feeds simulated event order.
fn rule_r1_hash_collections(model: &FileModel, sink: &mut Sink) {
    for i in 0..model.tokens.len() {
        if model.tokens[i].kind != TokKind::Ident || model.is_test_token(i) {
            continue;
        }
        let ty = model.text(i);
        if ty == "HashMap" || ty == "HashSet" {
            sink.emit_at(
                model,
                i,
                RuleId::R1,
                format!(
                    "simulation code uses `{ty}` — iteration order is \
                     process-randomized and can reorder simulated events; \
                     use `BTreeMap`/`BTreeSet` or an explicitly sorted drain"
                ),
            );
        }
    }
}

/// Minimum length for an `expect` message to count as a stated invariant.
const MIN_INVARIANT_LEN: usize = 10;

/// R2: no `unwrap()` and no bare `expect` outside `#[cfg(test)]`.
fn rule_r2_unwrap(model: &FileModel, sink: &mut Sink) {
    for i in 0..model.tokens.len() {
        if model.tokens[i].kind != TokKind::Ident || model.is_test_token(i) {
            continue;
        }
        let preceded_by_dot = i > 0 && model.is_punct(i - 1, ".");
        if !preceded_by_dot {
            continue;
        }
        let followed_by_call = model
            .tokens
            .get(i + 1)
            .is_some_and(|t| t.kind == TokKind::Open(Delim::Paren));
        match model.text(i) {
            "unwrap" if followed_by_call => {
                sink.emit_at(
                    model,
                    i,
                    RuleId::R2,
                    "`unwrap()` in simulation code — state the invariant with \
                     `expect(\"...\")` or propagate the error"
                        .to_owned(),
                );
            }
            "expect" if followed_by_call => {
                // First argument token: a string literal states the
                // invariant; anything else (format!, variables) does not.
                let arg = i + 2;
                let msg = model
                    .tokens
                    .get(arg)
                    .filter(|t| t.kind == TokKind::Str)
                    .and_then(|_| str_literal_content(model.text(arg)));
                match msg {
                    Some(m) if m.chars().count() >= MIN_INVARIANT_LEN => {}
                    Some(_) => sink.emit_at(
                        model,
                        i,
                        RuleId::R2,
                        "bare `expect` — the message is too short to state an \
                         invariant; explain why this cannot fail"
                            .to_owned(),
                    ),
                    None => sink.emit_at(
                        model,
                        i,
                        RuleId::R2,
                        "`expect` without a literal invariant message — state why \
                         this cannot fail in a string literal"
                            .to_owned(),
                    ),
                }
            }
            _ => {}
        }
    }
}

/// Decodes the content of a string-literal token (`"…"`, `r#"…"#`,
/// `b"…"`). Escaped characters count as the escaped character, matching
/// the v1 length semantics (`\n` counts one).
fn str_literal_content(text: &str) -> Option<String> {
    let open = text.find('"')?;
    let raw = text[..open].contains('r') || text[..open].contains('R');
    let close = text.rfind('"')?;
    if close <= open {
        return None;
    }
    let inner = &text[open + 1..close];
    if raw {
        return Some(inner.to_owned());
    }
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(e) = chars.next() {
                out.push(e);
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Punctuation that ends an operand for R3's neighbourhood scan.
const OPERAND_BOUNDARY: &[&str] = &[
    ",", ";", "&", "|", "&&", "||", "<", ">", "<<", ">>", "<=", ">=", "?",
];

/// R3: no `f64`/`f32` `==`/`!=` comparisons. An operand is float-typed
/// when its token neighbourhood (up to the nearest boundary) contains a
/// float literal, an `f64`/`f32` mention, or `NAN`/`INFINITY`.
fn rule_r3_float_eq(model: &FileModel, sink: &mut Sink) {
    for i in 0..model.tokens.len() {
        if model.tokens[i].kind != TokKind::Punct || model.is_test_token(i) {
            continue;
        }
        let op = model.text(i);
        if op != "==" && op != "!=" {
            continue;
        }
        let mut floaty = false;
        // Left neighbourhood.
        let mut k = i;
        let mut steps = 0;
        while k > 0 && steps < 16 {
            k -= 1;
            steps += 1;
            if is_operand_boundary(model, k) {
                break;
            }
            if is_float_token(model, k) {
                floaty = true;
                break;
            }
        }
        // Right neighbourhood.
        let mut k = i + 1;
        let mut steps = 0;
        while !floaty && k < model.tokens.len() && steps < 16 {
            if is_operand_boundary(model, k) {
                break;
            }
            if is_float_token(model, k) {
                floaty = true;
                break;
            }
            k += 1;
            steps += 1;
        }
        if floaty {
            sink.emit_at(
                model,
                i,
                RuleId::R3,
                format!(
                    "float `{op}` comparison — exact equality on f64/f32 is \
                     fragile; use an epsilon helper or integer cycle math"
                ),
            );
        }
    }
}

fn is_operand_boundary(model: &FileModel, i: usize) -> bool {
    match model.tokens[i].kind {
        TokKind::Open(_) | TokKind::Close(_) => true,
        TokKind::Punct => OPERAND_BOUNDARY.contains(&model.text(i)),
        _ => false,
    }
}

fn is_float_token(model: &FileModel, i: usize) -> bool {
    match model.tokens[i].kind {
        TokKind::Float => true,
        TokKind::Ident => matches!(model.text(i), "f64" | "f32" | "NAN" | "INFINITY"),
        _ => false,
    }
}

/// R4: no wall-clock or OS entropy in simulation crates — `SimRng` only.
/// (`std::time::Duration` is a plain value type and stays legal.)
fn rule_r4_entropy(model: &FileModel, sink: &mut Sink) {
    const BANNED: &[(&str, &str)] = &[
        ("Instant", "wall-clock time is not simulated time"),
        ("SystemTime", "wall-clock time is not simulated time"),
        ("thread_rng", "OS entropy breaks seed-reproducibility"),
        ("from_entropy", "OS entropy breaks seed-reproducibility"),
        ("getrandom", "OS entropy breaks seed-reproducibility"),
        (
            "RandomState",
            "per-process hash randomization breaks seed-reproducibility",
        ),
    ];
    for i in 0..model.tokens.len() {
        if model.tokens[i].kind != TokKind::Ident || model.is_test_token(i) {
            continue;
        }
        let word = model.text(i);
        if let Some(&(w, why)) = BANNED.iter().find(|&&(w, _)| w == word) {
            sink.emit_at(
                model,
                i,
                RuleId::R4,
                format!("`{w}` in simulation code — {why}; derive all randomness from `SimRng`"),
            );
            continue;
        }
        if word == "rand" {
            // `rand::...` as a path root, or `use rand;`.
            let next_coloncolon = model.is_punct(i + 1, "::");
            let prev_path = i > 0 && (model.is_punct(i - 1, "::") || model.is_punct(i - 1, "."));
            let after_use = i > 0 && model.is_ident(i - 1, "use");
            let is_path_root = next_coloncolon && !prev_path;
            let is_use = after_use && (next_coloncolon || model.is_punct(i + 1, ";"));
            if is_path_root || is_use {
                sink.emit_at(
                    model,
                    i,
                    RuleId::R4,
                    "external `rand` crate in simulation code — OS-seeded RNGs \
                     break seed-reproducibility; derive all randomness from `SimRng`"
                        .to_owned(),
                );
            }
        }
    }
}

/// Numeric cast target types R5 watches for.
const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64", "Cycle",
];

/// Path fragments that place a file inside billing/accounting arithmetic.
const MONEY_PATHS: &[&str] = &["billing.rs", "accounting.rs"];

/// R5: in billing/accounting arithmetic, every numeric `as` cast must be
/// justified (allow directive) or replaced with a lossless conversion —
/// silent truncation or precision loss there corrupts what tenants are
/// charged.
fn rule_r5_lossy_casts(model: &FileModel, sink: &mut Sink) {
    if !MONEY_PATHS.iter().any(|p| model.path.ends_with(p)) {
        return;
    }
    for i in 0..model.tokens.len() {
        if !model.is_ident(i, "as") || model.is_test_token(i) {
            continue;
        }
        let target_is_numeric = model
            .tokens
            .get(i + 1)
            .is_some_and(|t| t.kind == TokKind::Ident)
            && NUMERIC_TYPES.contains(&model.text(i + 1));
        if target_is_numeric {
            sink.emit_at(
                model,
                i,
                RuleId::R5,
                "numeric `as` cast in billing/accounting arithmetic — \
                 potential silent truncation/precision loss; use `From`/`try_from` \
                 or justify with an allow directive"
                    .to_owned(),
            );
        }
    }
}

/// Synchronisation primitives R6 bans in simulation code. `Arc` is
/// deliberately absent: shared *ownership* is deterministic; shared
/// *mutable state behind a lock* is not.
const SYNC_PRIMITIVES: &[&str] = &[
    "Mutex", "RwLock", "Condvar", "Barrier", "OnceLock", "LazyLock", "mpsc", "JoinHandle",
];

/// R6: no threads or synchronisation primitives in simulation crates.
///
/// The simulator must be a pure single-threaded function of its inputs:
/// lock acquisition order and atomic read-modify-write interleavings
/// depend on the OS scheduler. Parallelism lives exclusively in the
/// harness crates (`experiments`/`bench`), which fan out *whole*
/// simulations and merge results in submission order.
///
/// Emits at most one diagnostic per line (first trigger wins).
fn rule_r6_thread_sync(model: &FileModel, sink: &mut Sink) {
    let mut last_line = usize::MAX;
    for i in 0..model.tokens.len() {
        let line = model.tokens[i].line;
        if line == last_line || model.is_test_token(i) {
            continue;
        }
        if let Some((tok, msg)) = r6_violation_on_line(model, i) {
            last_line = line;
            sink.emit_at(model, tok, RuleId::R6, msg);
        }
    }
}

/// Scans the rest of the line starting at token `start` for the first
/// R6 trigger, in the v1 priority order: `thread` paths, `std::sync`
/// beyond `Arc`, sync primitive names, `Atomic*` types.
fn r6_violation_on_line(model: &FileModel, start: usize) -> Option<(usize, String)> {
    let line = model.tokens[start].line;
    let end = (start..model.tokens.len())
        .take_while(|&i| model.tokens[i].line == line)
        .last()?
        + 1;
    // 1. `std::thread` / `thread::spawn`: `thread` in path position.
    for i in start..end {
        if model.is_ident(i, "thread")
            && ((i > 0 && model.is_punct(i - 1, "::")) || model.is_punct(i + 1, "::"))
        {
            return Some((
                i,
                "`std::thread` in simulation code — the simulator must stay \
                 single-threaded; parallelism lives in the harness crates \
                 (`experiments`/`bench`)"
                    .to_owned(),
            ));
        }
    }
    // 2. `std::sync::*` paths other than `std::sync::Arc`.
    for i in start..end {
        if model.is_ident(i, "std")
            && model.is_punct(i + 1, "::")
            && model.is_ident(i + 2, "sync")
        {
            let arc_only = model.is_punct(i + 3, "::") && model.is_ident(i + 4, "Arc");
            if !arc_only {
                return Some((
                    i,
                    "`std::sync` (beyond `Arc`) in simulation code — locks and \
                     channels make event order depend on thread scheduling; keep \
                     synchronisation in the harness crates (`experiments`/`bench`)"
                        .to_owned(),
                ));
            }
        }
    }
    // 3. Primitive type names, wherever imported from.
    for i in start..end {
        if model.tokens[i].kind == TokKind::Ident && SYNC_PRIMITIVES.contains(&model.text(i)) {
            let word = model.text(i);
            return Some((
                i,
                format!(
                    "`{word}` in simulation code — lock/channel timing depends on \
                     thread scheduling and can reorder simulated events; keep \
                     synchronisation in the harness crates (`experiments`/`bench`)"
                ),
            ));
        }
    }
    // 4. `Atomic*` types (AtomicUsize, AtomicBool, AtomicU64, ...).
    for i in start..end {
        if model.tokens[i].kind == TokKind::Ident && model.text(i).starts_with("Atomic") {
            return Some((
                i,
                "atomic type in simulation code — read-modify-write \
                 interleavings depend on thread scheduling; keep atomics in \
                 the harness crates (`experiments`/`bench`)"
                    .to_owned(),
            ));
        }
    }
    None
}

/// Print macros R7 bans in simulation code.
const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// R7: no `println!`/`print!`/`eprintln!`/`eprint!`/`dbg!` in simulation
/// crates.
///
/// Experiment stdout must be byte-identical across `--jobs` values and
/// seeds, and stderr is reserved for harness progress chatter.
/// Observability goes through `asm-telemetry` (counters, series,
/// traces) or data returned to the harness; tests may print freely.
fn rule_r7_print(model: &FileModel, sink: &mut Sink) {
    for i in 0..model.tokens.len() {
        if model.tokens[i].kind != TokKind::Ident || model.is_test_token(i) {
            continue;
        }
        let mac = model.text(i);
        if PRINT_MACROS.contains(&mac) && model.is_punct(i + 1, "!") {
            sink.emit_at(
                model,
                i,
                RuleId::R7,
                format!(
                    "`{mac}!` in simulation code — stdout/stderr must stay \
                     reserved for the harness (tables are byte-compared \
                     across runs); record state via `asm-telemetry` \
                     counters/series/traces or return it to the caller"
                ),
            );
        }
    }
}

/// The endianness-framing methods R12 bans outside the persist module.
const FRAMING_METHODS: &[&str] = &[
    "to_le_bytes",
    "from_le_bytes",
    "to_be_bytes",
    "from_be_bytes",
    "to_ne_bytes",
    "from_ne_bytes",
];

/// R12: state serialization in simulation crates goes through
/// `asm_simcore::persist`'s `StateWriter`/`StateReader` (binary) or
/// `text_header`/`check_text_header` (text). Hand-rolled
/// `to_le_bytes`/`from_le_bytes` framing skips the magic/version/
/// checksum envelope that makes every on-disk artefact warn-and-rebuild
/// safe, and `ne`-variants additionally bake in host endianness. The
/// persist module itself is the one place allowed to frame bytes;
/// non-serialization bit tricks (SWAR scans, hashing) carry a reasoned
/// allow directive.
fn rule_r12_persist_framing(model: &FileModel, sink: &mut Sink) {
    if model.path.ends_with("simcore/src/persist.rs") {
        return;
    }
    for i in 0..model.tokens.len() {
        if model.tokens[i].kind != TokKind::Ident || model.is_test_token(i) {
            continue;
        }
        let name = model.text(i);
        if FRAMING_METHODS.contains(&name) {
            sink.emit_at(
                model,
                i,
                RuleId::R12,
                format!(
                    "`{name}` outside `simcore/src/persist.rs` — ad-hoc byte \
                     framing skips the versioned, checksummed envelope; \
                     serialize state through `asm_simcore::persist`'s \
                     StateWriter/StateReader instead"
                ),
            );
        }
    }
}

/// R13: telemetry/attribution metric names come from the central
/// registry (`asm_telemetry::names`) — no inline dotted-name string
/// literals in non-test simulation code. Counter and series names like
/// `"llc.app0.hits"` or `"attrib.app{i}.{component}"` are join keys:
/// the sinks, the accuracy dashboard, and external trace consumers all
/// match on the exact spelling, so a literal typed at the emit site
/// drifts silently when the registry changes. The registry file itself
/// is the one place allowed to spell names out; dotted non-metric
/// strings (temp-file suffixes, version strings with identifiers)
/// carry a reasoned allow directive.
fn rule_r13_metric_names(model: &FileModel, sink: &mut Sink) {
    if model.path.ends_with("telemetry/src/names.rs") {
        return;
    }
    for i in 0..model.tokens.len() {
        if model.tokens[i].kind != TokKind::Str || model.is_test_token(i) {
            continue;
        }
        let Some(body) = str_literal_content(model.text(i)) else {
            continue;
        };
        if is_metric_name(&body) {
            sink.emit_at(
                model,
                i,
                RuleId::R13,
                format!(
                    "inline metric-name literal `\"{body}\"` — spell telemetry/\
                     attribution names once in `asm_telemetry::names` and call \
                     the registry helper here, so emit sites cannot drift from \
                     the names the sinks and dashboards join on"
                ),
            );
        }
    }
}

/// Whether a string-literal body looks like a dotted metric name:
/// after collapsing format holes (`{…}` → `x`), two or more
/// `.`-separated segments, each `[a-z][a-z0-9_]*`. `"llc.app0.hits"`
/// and `"app{i}.{series}"` match; paths, prose, and version numbers
/// do not (slashes, spaces, and digit-led segments all fail).
fn is_metric_name(body: &str) -> bool {
    let mut collapsed = String::with_capacity(body.len());
    let mut depth = 0usize;
    for c in body.chars() {
        match c {
            '{' => {
                depth += 1;
                if depth == 1 {
                    collapsed.push('x');
                }
            }
            '}' => depth = depth.saturating_sub(1),
            _ if depth == 0 => collapsed.push(c),
            _ => {}
        }
    }
    let mut segments = 0usize;
    for seg in collapsed.split('.') {
        let mut chars = seg.chars();
        let lead_ok = matches!(chars.next(), Some(c) if c.is_ascii_lowercase());
        if !lead_ok || !chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_') {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

/// R10: every non-test `unsafe` site needs an adjacent `// SAFETY:`
/// comment — trailing on the same line or a contiguous comment block
/// ending directly above — stating the invariant that makes it sound.
/// All sites, justified or not, land in the emitted unsafe inventory.
fn rule_r10_safety_comments(model: &FileModel, sink: &mut Sink) {
    for u in &model.unsafes {
        if u.is_test || u.has_safety {
            continue;
        }
        let what = match u.kind.name() {
            "block" => "`unsafe` block",
            "fn" => "`unsafe fn`",
            "impl" => "`unsafe impl`",
            _ => "`unsafe trait`",
        };
        sink.emit(
            model,
            u.line,
            u.col,
            RuleId::R10,
            format!(
                "{what} without an adjacent `// SAFETY:` comment — state the \
                 invariant that makes it sound (same line or the comment block \
                 directly above); every unsafe site is audited via the \
                 unsafe-inventory"
            ),
        );
    }
}

/// Methods whose call sites R11 watches: dispatch entry points of the
/// experiments `Runner`.
const RUNNER_DISPATCH: &[&str] = &["run", "run_with"];

/// R11: harness lock discipline — no `MutexGuard` may be held across a
/// call into `Runner::run`/`run_with`. The pool fans out and joins
/// inside those calls; a guard held across them serializes every worker
/// behind one lock and can deadlock with sinks that lock the same data.
fn rule_r11_lock_discipline(model: &FileModel, sink: &mut Sink) {
    for f in &model.fns {
        let Some((open, close)) = f.body else { continue };
        if f.is_test {
            continue;
        }
        let mut depth = 0i64;
        let mut guards: Vec<(String, i64, usize)> = Vec::new(); // (name, depth, live_from)
        let mut i = open + 1;
        while i < close {
            match model.tokens[i].kind {
                TokKind::Open(Delim::Brace) => depth += 1,
                TokKind::Close(Delim::Brace) => {
                    depth -= 1;
                    guards.retain(|&(_, d, _)| d <= depth);
                }
                TokKind::Ident => {
                    let word = model.text(i);
                    if word == "let" {
                        let end = statement_end(model, i, close);
                        if let Some(name) = guard_binding(model, i, end) {
                            guards.push((name, depth, end));
                        }
                    } else if word == "drop"
                        && model
                            .tokens
                            .get(i + 1)
                            .is_some_and(|t| t.kind == TokKind::Open(Delim::Paren))
                        && model.tokens.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
                        && model
                            .tokens
                            .get(i + 3)
                            .is_some_and(|t| t.kind == TokKind::Close(Delim::Paren))
                    {
                        let dropped = model.text(i + 2).to_owned();
                        guards.retain(|(n, _, _)| *n != dropped);
                    } else if RUNNER_DISPATCH.contains(&word)
                        && i > 0
                        && (model.is_punct(i - 1, ".") || model.is_punct(i - 1, "::"))
                        && model
                            .tokens
                            .get(i + 1)
                            .is_some_and(|t| t.kind == TokKind::Open(Delim::Paren))
                    {
                        if let Some((name, _, _)) = guards.iter().find(|&&(_, _, from)| from < i) {
                            sink.emit_at(
                                model,
                                i,
                                RuleId::R11,
                                format!(
                                    "`MutexGuard` `{name}` is still live across `{word}(…)` — \
                                     a lock held while dispatching simulations serializes the \
                                     pool and risks deadlock; drop or scope the guard before \
                                     calling `Runner::{word}`"
                                ),
                            );
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
}

/// The token index of the `;` ending the statement at `from` (or the
/// enclosing close brace), jumping over bracketed groups.
fn statement_end(model: &FileModel, from: usize, limit: usize) -> usize {
    let mut i = from;
    while i < limit {
        match model.tokens[i].kind {
            TokKind::Open(_) => i = model.match_of[i].max(i),
            TokKind::Close(_) => return i,
            TokKind::Punct if model.text(i) == ";" => return i,
            _ => {}
        }
        i += 1;
    }
    limit
}

/// If the `let` statement at `let_tok..end` binds a `.lock()` result to
/// a named variable, that name.
fn guard_binding(model: &FileModel, let_tok: usize, end: usize) -> Option<String> {
    // Pattern name: first identifier after `let`, skipping `mut`.
    let mut p = let_tok + 1;
    if model.is_ident(p, "mut") {
        p += 1;
    }
    if !model.tokens.get(p).is_some_and(|t| t.kind == TokKind::Ident) {
        return None; // tuple/struct patterns: out of scope
    }
    let name = model.text(p);
    if name == "_" {
        return None;
    }
    // `.lock(` anywhere in the initializer — but not inside a brace
    // block (`let x = { let g = m.lock(); *g };` drops the guard at the
    // block's end, so `x` is not a guard).
    let mut i = p + 1;
    while i < end {
        if model.tokens[i].kind == TokKind::Open(Delim::Brace) {
            i = model.match_of[i].max(i) + 1;
            continue;
        }
        if model.is_ident(i, "lock")
            && i > 0
            && model.is_punct(i - 1, ".")
            && model
                .tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokKind::Open(Delim::Paren))
        {
            return Some(name.to_owned());
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_source;

    fn diag(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(path, src)
    }

    #[test]
    fn r1_fires_outside_tests_only() {
        let src = "\
use std::collections::HashMap;
fn f() { let m: HashMap<u64, u64> = HashMap::new(); }
#[cfg(test)]
mod tests { use std::collections::HashSet; }
";
        let d = diag("x.rs", src);
        // Line 2 mentions HashMap twice with one message: deduplicated.
        assert_eq!(d.iter().filter(|d| d.rule == RuleId::R1).count(), 2);
        assert!(d.iter().all(|d| d.line <= 2));
    }

    #[test]
    fn r2_distinguishes_bare_and_invariant_expect() {
        let src = "\
fn f(o: Option<u32>) -> u32 {
    let a = o.unwrap();
    let b = o.expect(\"ok\");
    let c = o.unwrap_or(3);
    let d = o.expect(\"checked non-empty at enqueue time\");
    a + b + c + d
}
";
        let d = diag("x.rs", src);
        let r2: Vec<_> = d.iter().filter(|d| d.rule == RuleId::R2).collect();
        assert_eq!(r2.len(), 2, "{r2:?}");
        assert_eq!(r2[0].line, 2);
        assert_eq!(r2[1].line, 3);
    }

    #[test]
    fn r2_sees_unwrap_inside_macros_and_multiline_expect() {
        // v1's line heuristics could miss macro bodies; the token rules
        // must not.
        let src = "\
fn f(o: Option<u32>) -> u32 {
    my_macro!(o.unwrap())
}
fn g(o: Option<u32>) -> u32 {
    o.expect(
        \"queue drained before quantum end, checked by caller\",
    )
}
";
        let d = diag("x.rs", src);
        let r2: Vec<usize> = d.iter().filter(|d| d.rule == RuleId::R2).map(|d| d.line).collect();
        assert_eq!(r2, vec![2], "{d:#?}");
    }

    #[test]
    fn r3_catches_float_literal_comparison() {
        let src = "fn f(x: f64) -> bool { x == 1.0 }\n";
        let d = diag("x.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == RuleId::R3).count(), 1);
        // Integer comparisons stay legal.
        assert!(diag("x.rs", "fn g(x: u64) -> bool { x == 10 }\n").is_empty());
        // Ranges are not float literals.
        assert!(diag("x.rs", "fn h(x: u64) -> bool { (0..1).contains(&x) }\n").is_empty());
    }

    #[test]
    fn r4_bans_wall_clock_and_rand() {
        let src = "\
use std::time::Instant;
use rand::Rng;
fn f() { let t = std::time::SystemTime::now(); }
fn ok() { let d = std::time::Duration::from_secs(1); }
";
        let d = diag("x.rs", src);
        let r4 = d.iter().filter(|d| d.rule == RuleId::R4).count();
        assert_eq!(r4, 3, "{d:?}");
        assert!(!d.iter().any(|d| d.line == 4), "Duration must stay legal");
    }

    #[test]
    fn r5_scoped_to_money_paths() {
        let src = "fn f(x: u64) -> f64 { x as f64 }\n";
        assert_eq!(diag("crates/dram/src/accounting.rs", src).len(), 1);
        assert!(diag("crates/dram/src/bank.rs", src).is_empty());
    }

    #[test]
    fn r6_bans_threads_and_sync_primitives() {
        let src = "\
use std::thread;
use std::sync::Mutex;
fn f() { let h = std::thread::spawn(|| 1); h.join(); }
fn g(m: &Mutex<u64>) { *m.lock().expect(\"lock is never poisoned here\") += 1; }
fn a() { let c = std::sync::atomic::AtomicUsize::new(0); }
";
        let d = diag("crates/dram/src/x.rs", src);
        let r6: Vec<_> = d.iter().filter(|d| d.rule == RuleId::R6).map(|d| d.line).collect();
        assert_eq!(r6, vec![1, 2, 3, 4, 5], "{d:#?}");
    }

    #[test]
    fn r6_allows_arc_and_test_code() {
        let src = "\
use std::sync::Arc;
fn f(x: Arc<u64>) -> u64 { let thread = *x; thread }
#[cfg(test)]
mod tests { use std::thread; fn t() { thread::yield_now(); } }
";
        assert!(diag("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn r7_bans_print_macros_outside_tests() {
        let src = "\
fn f() { println!(\"x\"); }
fn g() { eprintln!(\"y\"); dbg!(3); }
fn h() { print!(\"z\"); eprint!(\"w\"); }
fn ok() { let println = 1; format!(\"{println}\"); }
#[cfg(test)]
mod tests { fn t() { println!(\"test chatter is fine\"); } }
";
        let d = diag("crates/dram/src/x.rs", src);
        let r7: Vec<_> = d.iter().filter(|d| d.rule == RuleId::R7).map(|d| d.line).collect();
        assert_eq!(r7, vec![1, 2, 2, 3, 3], "{d:#?}");
    }

    #[test]
    fn r10_fires_without_safety_and_not_with() {
        let src = "\
fn a() {
    // SAFETY: the index is bounds-checked two lines up.
    let x = unsafe { go() };
    let y = unsafe { go() };
}
";
        let d = diag("crates/cache/src/x.rs", src);
        let r10: Vec<usize> = d.iter().filter(|d| d.rule == RuleId::R10).map(|d| d.line).collect();
        assert_eq!(r10, vec![4], "{d:#?}");
    }

    #[test]
    fn r11_guard_across_dispatch() {
        let src = "\
fn bad(state: &std::sync::Mutex<u64>, runner: &Runner) {
    let guard = state.lock().expect(\"pool mutex never poisoned\");
    let _ = runner.run(*guard);
}
fn good(state: &std::sync::Mutex<u64>, runner: &Runner) {
    let seed = { let guard = state.lock().expect(\"pool mutex never poisoned\"); *guard };
    let _ = runner.run(seed);
}
fn dropped(state: &std::sync::Mutex<u64>, runner: &Runner) {
    let guard = state.lock().expect(\"pool mutex never poisoned\");
    drop(guard);
    let _ = runner.run_with(3, |r| r);
}
";
        let d = diag("crates/experiments/src/x.rs", src);
        let r11: Vec<usize> = d.iter().filter(|d| d.rule == RuleId::R11).map(|d| d.line).collect();
        assert_eq!(r11, vec![3], "{d:#?}");
    }

    #[test]
    fn r13_flags_inline_metric_names_only() {
        let src = "\
fn f(t: &mut Telemetry, i: usize) {
    t.incr(\"llc.app0.hits\");
    t.series(&format!(\"app{i}.slowdown\"), 1.0);
    let path = \"out/results.csv\";
    let prose = \"two words. not a name\";
    let version = \"1.2\";
    let single = \"slowdown\";
    let _ = (path, prose, version, single);
}
";
        let d = diag("crates/cache/src/x.rs", src);
        let r13: Vec<usize> = d.iter().filter(|d| d.rule == RuleId::R13).map(|d| d.line).collect();
        assert_eq!(r13, vec![2, 3], "{d:#?}");
    }

    #[test]
    fn r13_exempts_the_names_registry_and_test_code() {
        let src = "pub fn hits(i: usize) -> String { format!(\"llc.app{i}.hits\") }\n";
        assert!(diag("crates/telemetry/src/names.rs", src).is_empty());
        assert_eq!(diag("crates/telemetry/src/sink.rs", src).len(), 1);
        let test_src = "\
#[cfg(test)]
mod tests {
    fn t() { assert_eq!(n, \"llc.app0.hits\"); }
}
";
        assert!(diag("crates/cache/src/x.rs", test_src).is_empty());
    }

    #[test]
    fn dedup_collapses_identical_line_rule_message() {
        // Two HashMap mentions on one line, one message: one diagnostic,
        // anchored at the leftmost column.
        let src = "fn f(m: HashMap<u64, HashMap<u64, u64>>) { let _ = m; }\n";
        let d = diag("crates/core/src/x.rs", src);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].col, 9);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "\
fn f() -> &'static str {
    // HashMap unwrap() Instant 1.0 == 2.0
    \"HashMap unwrap() Instant 1.0 == 2.0\"
}
";
        assert!(diag("x.rs", src).is_empty());
    }

    #[test]
    fn allow_directive_suppresses_but_stays_visible() {
        let src = "\
fn f(o: Option<u32>) -> u32 {
    // asm-lint: allow(R2): demo suppression
    o.unwrap()
}
";
        assert!(diag("x.rs", src).is_empty());
        let model = FileModel::new("x.rs", src);
        let (active, suppressed) = check(&model, FileRole::Sim, &Options::default());
        assert!(active.is_empty());
        assert_eq!(suppressed.len(), 1);
        assert!(suppressed[0].allowed);
    }
}
