//! The token-tree lexer `asm-lint` v2 is built on.
//!
//! Replaces the v1 "blank comments and literal bodies" heuristic with a
//! real token stream: every token carries its byte span and 0-based
//! line / byte-column, so diagnostics stay byte-aligned with the source
//! while the passes reason over tokens instead of substrings. Comments
//! are lexed out of band (they carry allow directives and `SAFETY:`
//! justifications, so their spans and text are kept).
//!
//! Design constraints, in order:
//!
//! 1. **Never panic.** The lexer runs on arbitrary bytes (a proptest
//!    pins this); malformed input degrades to reasonable tokens, it
//!    never aborts the lint. Unterminated strings/comments run to EOF.
//! 2. **Spans are exact.** `lo..hi` always lies inside the source and
//!    always falls on UTF-8 boundaries (multi-byte characters are only
//!    ever consumed whole), so `&src[lo..hi]` is safe everywhere.
//! 3. **Dependency-free.** The build environment has no crates.io
//!    access; this is `std` only.
//!
//! The lexer understands line comments, nested block comments, string /
//! raw-string / byte-string / C-string literals, char literals vs
//! lifetimes, raw identifiers (`r#type`), numeric literals (including
//! floats, radix prefixes and exponents — the distinction feeds rule
//! R3), and multi-character operators (`::`, `==`, `..=`, ... — maximal
//! munch, so `=>` is never misread as `=` `>`).

/// A delimiter kind: `()`, `[]`, `{}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `(` / `)`.
    Paren,
    /// `[` / `]`.
    Bracket,
    /// `{` / `}`.
    Brace,
}

/// What a token is. Text is recovered from the span, not stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `HashMap`, `r#type`).
    Ident,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// An integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// A float literal (`1.0`, `2e9`, `0.5f32`) — distinguishes rule
    /// R3's operands from ranges and tuple indexing.
    Float,
    /// A string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// A char or byte literal: `'x'`, `b'\n'`.
    Char,
    /// An operator / punctuation token (`::`, `==`, `;`, `#`).
    Punct,
    /// An opening delimiter.
    Open(Delim),
    /// A closing delimiter.
    Close(Delim),
}

/// One token with its exact byte span and position.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Kind.
    pub kind: TokKind,
    /// Byte offset of the first byte (inclusive).
    pub lo: usize,
    /// Byte offset one past the last byte (exclusive).
    pub hi: usize,
    /// 0-based line of `lo`.
    pub line: usize,
    /// 0-based byte column of `lo` within its line.
    pub col: usize,
}

/// One comment (line or block), span-exact like tokens. Doc comments
/// (`///`, `/** */`) are comments too.
#[derive(Debug, Clone, Copy)]
pub struct Comment {
    /// Byte offset of the `//` / `/*`.
    pub lo: usize,
    /// Byte offset one past the end (for line comments: the newline).
    pub hi: usize,
    /// 0-based line the comment starts on.
    pub line: usize,
    /// 0-based line the comment ends on (block comments span lines).
    pub end_line: usize,
    /// 0-based byte column of `lo`.
    pub col: usize,
}

/// Lexer output: the token stream plus out-of-band comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first (maximal munch).
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Whether `b` can continue an identifier. Any non-ASCII byte counts as
/// identifier-continue: that consumes multi-byte UTF-8 sequences whole,
/// which is what keeps every span a valid slice boundary.
#[must_use]
pub fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Whether `b` can start an identifier.
fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    line_start: usize,
    out: Lexed,
}

/// Lexes `src` into tokens and comments. Total: every byte is consumed
/// exactly once, so this is O(n) and always terminates.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 0,
        line_start: 0,
        out: Lexed::default(),
    };
    lx.run();
    lx.out
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining the line counter.
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
            self.line_start = self.pos + 1;
        }
        self.pos += 1;
    }

    /// Advances `n` bytes (none of which may be checked newlines — used
    /// only after `peek` confirmed ASCII operator bytes).
    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn col(&self, lo: usize) -> usize {
        lo.saturating_sub(self.line_start)
    }

    fn push(&mut self, kind: TokKind, lo: usize, line: usize, col: usize) {
        self.out.tokens.push(Token {
            kind,
            lo,
            hi: self.pos,
            line,
            col,
        });
    }

    fn run(&mut self) {
        while let Some(b) = self.peek(0) {
            let lo = self.pos;
            let line = self.line;
            let col = self.col(lo);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(lo, line, col),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(lo, line, col),
                b'r' | b'b' | b'c' if self.try_prefixed_literal(lo, line, col) => {}
                b'"' => self.string(lo, line, col, false, 0),
                b'\'' => self.char_or_lifetime(lo, line, col),
                _ if b.is_ascii_digit() => self.number(lo, line, col),
                _ if is_ident_start(b) => self.ident(lo, line, col),
                b'(' => self.delim(TokKind::Open(Delim::Paren), lo, line, col),
                b')' => self.delim(TokKind::Close(Delim::Paren), lo, line, col),
                b'[' => self.delim(TokKind::Open(Delim::Bracket), lo, line, col),
                b']' => self.delim(TokKind::Close(Delim::Bracket), lo, line, col),
                b'{' => self.delim(TokKind::Open(Delim::Brace), lo, line, col),
                b'}' => self.delim(TokKind::Close(Delim::Brace), lo, line, col),
                _ => self.punct(lo, line, col),
            }
        }
    }

    fn delim(&mut self, kind: TokKind, lo: usize, line: usize, col: usize) {
        self.bump();
        self.push(kind, lo, line, col);
    }

    fn punct(&mut self, lo: usize, line: usize, col: usize) {
        for p in PUNCTS {
            if self.bytes[self.pos..].starts_with(p.as_bytes()) {
                self.bump_n(p.len());
                self.push(TokKind::Punct, lo, line, col);
                return;
            }
        }
        self.bump();
        self.push(TokKind::Punct, lo, line, col);
    }

    fn line_comment(&mut self, lo: usize, line: usize, col: usize) {
        while self.peek(0).is_some_and(|b| b != b'\n') {
            self.bump();
        }
        self.out.comments.push(Comment {
            lo,
            hi: self.pos,
            line,
            end_line: self.line,
            col,
        });
    }

    fn block_comment(&mut self, lo: usize, line: usize, col: usize) {
        self.bump_n(2);
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break, // unterminated: run to EOF
            }
        }
        self.out.comments.push(Comment {
            lo,
            hi: self.pos,
            line,
            end_line: self.line,
            col,
        });
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`, `b'x'`, and
    /// raw identifiers `r#ident`. Returns false when the `r`/`b`/`c` is
    /// just the start of a plain identifier.
    fn try_prefixed_literal(&mut self, lo: usize, line: usize, col: usize) -> bool {
        let b0 = self.peek(0).unwrap_or(0);
        // Longest prefixes first: br / rb? (only br is legal), then b/r/c.
        let (raw_at, quote_at) = match (b0, self.peek(1)) {
            (b'b' | b'c', Some(b'r')) => (1, 2),
            (b'b', Some(b'\'')) => {
                // Byte char literal b'x'.
                self.bump(); // b
                self.char_or_lifetime(lo, line, col);
                return true;
            }
            (b'r' | b'b' | b'c', _) => (0, 1),
            _ => return false,
        };
        let is_raw = self.peek(raw_at) == Some(b'r') && raw_at > 0 || b0 == b'r';
        // Count hashes after the (possible) raw marker.
        let hash_start = if is_raw { quote_at.max(1) } else { 1 };
        let mut hashes = 0usize;
        while self.peek(hash_start + hashes) == Some(b'#') {
            hashes += 1;
        }
        match self.peek(hash_start + hashes) {
            Some(b'"') if is_raw || (hashes == 0 && self.peek(hash_start) == Some(b'"')) => {
                // Raw or plain prefixed string.
                self.bump_n(hash_start + hashes);
                self.string(lo, line, col, is_raw, hashes);
                true
            }
            Some(bb) if b0 == b'r' && hashes > 0 && is_ident_start(bb) => {
                // Raw identifier r#ident.
                self.bump_n(1 + hashes);
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                self.push(TokKind::Ident, lo, line, col);
                true
            }
            _ => false,
        }
    }

    /// Consumes a string body starting at the opening quote. `raw`
    /// disables escape processing; `hashes` is the raw-string hash count.
    fn string(&mut self, lo: usize, line: usize, col: usize, raw: bool, hashes: usize) {
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                None => break, // unterminated: token runs to EOF
                Some(b'\\') if !raw => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                Some(b'"') => {
                    let mut n = 0usize;
                    while n < hashes && self.peek(1 + n) == Some(b'#') {
                        n += 1;
                    }
                    if n == hashes {
                        self.bump_n(1 + hashes);
                        break;
                    }
                    self.bump();
                }
                Some(_) => self.bump(),
            }
        }
        self.push(TokKind::Str, lo, line, col);
    }

    /// `'` starts either a char literal or a lifetime.
    fn char_or_lifetime(&mut self, lo: usize, line: usize, col: usize) {
        self.bump(); // '
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: consume escape then to closing '.
                self.bump();
                if self.peek(0).is_some() {
                    self.bump();
                }
                while self.peek(0).is_some_and(|b| b != b'\'' && b != b'\n') {
                    self.bump();
                }
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                self.push(TokKind::Char, lo, line, col);
            }
            Some(b) if is_ident_start(b) => {
                // Could be 'a' (char) or 'a / 'static (lifetime): a char
                // closes with ' immediately after one character.
                // Multi-byte chars: consume the whole ident-run, then
                // decide by whether a ' follows.
                let run_start = self.pos;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                if self.peek(0) == Some(b'\'') && self.pos > run_start {
                    self.bump();
                    self.push(TokKind::Char, lo, line, col);
                } else {
                    self.push(TokKind::Lifetime, lo, line, col);
                }
            }
            Some(b'\'') => {
                // `''` — malformed; consume both quotes as a char token.
                self.bump();
                self.push(TokKind::Char, lo, line, col);
            }
            Some(_) => {
                // Non-ident char like '+' : char literal if ' follows.
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                self.push(TokKind::Char, lo, line, col);
            }
            None => self.push(TokKind::Char, lo, line, col),
        }
    }

    fn number(&mut self, lo: usize, line: usize, col: usize) {
        let mut is_float = false;
        // Radix-prefixed literals contain hex "e"/"E" digits that must
        // never be read as exponent markers (`0xE-5` is a subtraction).
        let hexish = self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
        // Integer part (covers radix prefixes and type suffixes: all are
        // ident-continue bytes; `1e9` exponents are too).
        while self.peek(0).is_some_and(is_ident_continue) {
            let cur = self.peek(0).unwrap_or(0);
            // `1e-9` / `1E+9`: a sign directly after e/E inside a number.
            self.bump();
            if !hexish
                && (cur == b'e' || cur == b'E')
                && matches!(self.peek(0), Some(b'+' | b'-'))
                && self.peek(1).is_some_and(|b| b.is_ascii_digit())
            {
                is_float = true;
                self.bump(); // sign
            }
        }
        // Fractional part: `.` followed by a digit, or a trailing `.`
        // that is not `..` (range) and not `.ident` (method call).
        if self.peek(0) == Some(b'.') {
            match self.peek(1) {
                Some(d) if d.is_ascii_digit() => {
                    is_float = true;
                    self.bump(); // .
                    while self.peek(0).is_some_and(is_ident_continue) {
                        let cur = self.peek(0).unwrap_or(0);
                        self.bump();
                        if (cur == b'e' || cur == b'E')
                            && matches!(self.peek(0), Some(b'+' | b'-'))
                            && self.peek(1).is_some_and(|b| b.is_ascii_digit())
                        {
                            self.bump();
                        }
                    }
                }
                Some(b'.') => {}                            // range 0..1
                Some(b) if is_ident_start(b) => {}          // 1.max(2)
                _ => {
                    is_float = true;
                    self.bump(); // trailing-dot float `1.`
                }
            }
        }
        // `1e9` without sign: the e and digits were consumed above; look
        // for an exponent marker in the consumed text.
        let text = &self.bytes[lo..self.pos];
        if !is_float {
            // e/E followed by a digit inside the literal, outside a radix
            // prefix (hex digits include e!).
            let hexish = text.len() >= 2 && text[0] == b'0' && matches!(text[1], b'x' | b'X' | b'o' | b'b');
            if !hexish
                && text
                    .windows(2)
                    .any(|w| (w[0] == b'e' || w[0] == b'E') && w[1].is_ascii_digit())
            {
                is_float = true;
            }
        }
        self.push(
            if is_float { TokKind::Float } else { TokKind::Int },
            lo,
            line,
            col,
        );
    }

    fn ident(&mut self, lo: usize, line: usize, col: usize) {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        self.push(TokKind::Ident, lo, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .iter()
            .map(|t| (t.kind, src[t.lo..t.hi].to_owned()))
            .collect()
    }

    #[test]
    fn basic_stream_with_spans() {
        let src = "fn f(x: u64) -> u64 { x + 1 }\n";
        let toks = texts(src);
        assert_eq!(toks[0], (TokKind::Ident, "fn".to_owned()));
        assert_eq!(toks[1], (TokKind::Ident, "f".to_owned()));
        assert_eq!(toks[2], (TokKind::Open(Delim::Paren), "(".to_owned()));
        assert!(toks.contains(&(TokKind::Punct, "->".to_owned())));
        assert!(toks.contains(&(TokKind::Int, "1".to_owned())));
    }

    #[test]
    fn comments_are_out_of_band() {
        let src = "let a = 1; // trailing HashMap\n/* block\n over lines */ let b = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 0);
        assert_eq!(lexed.comments[1].line, 1);
        assert_eq!(lexed.comments[1].end_line, 2);
        // No token text mentions HashMap.
        assert!(lexed
            .tokens
            .iter()
            .all(|t| !src[t.lo..t.hi].contains("HashMap")));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ c */ let z = 3;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(src[lexed.tokens[0].lo..lexed.tokens[0].hi].to_owned(), "let");
    }

    #[test]
    fn floats_vs_ranges_vs_tuple_fields() {
        assert_eq!(texts("1.0")[0].0, TokKind::Float);
        assert_eq!(texts("1.")[0].0, TokKind::Float);
        assert_eq!(texts("1e9")[0].0, TokKind::Float);
        assert_eq!(texts("1e-9")[0].0, TokKind::Float);
        assert_eq!(texts("0.5f32")[0].0, TokKind::Float);
        let range = texts("0..1");
        assert_eq!(range[0].0, TokKind::Int);
        assert_eq!(range[1], (TokKind::Punct, "..".to_owned()));
        let tup = texts("x.0");
        assert_eq!(tup[2].0, TokKind::Int);
        assert_eq!(texts("0xEE")[0].0, TokKind::Int);
        assert_eq!(texts("1_000u64")[0].0, TokKind::Int);
        assert_eq!(texts("1.max(2)")[0].0, TokKind::Int);
    }

    #[test]
    fn strings_and_raw_strings() {
        let toks = texts("let s = r#\"Hash\"Map\"# ; let t = b\"x\"; let u = \"a\\\"b\";");
        let strs: Vec<&String> = toks.iter().filter(|(k, _)| *k == TokKind::Str).map(|(_, s)| s).collect();
        assert_eq!(strs.len(), 3);
        assert_eq!(strs[0], "r#\"Hash\"Map\"#");
        assert_eq!(strs[1], "b\"x\"");
        assert_eq!(strs[2], "\"a\\\"b\"");
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks = texts("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let b = b'y'; }");
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 3);
        assert!(toks.contains(&(TokKind::Ident, "str".to_owned())));
    }

    #[test]
    fn raw_identifiers() {
        let toks = texts("let r#type = 1;");
        assert_eq!(toks[1], (TokKind::Ident, "r#type".to_owned()));
    }

    #[test]
    fn multichar_operators_munch_maximally() {
        let toks = texts("a == b != c <= d ..= e :: f => g");
        let puncts: Vec<&String> = toks.iter().filter(|(k, _)| *k == TokKind::Punct).map(|(_, s)| s).collect();
        assert_eq!(puncts, &["==", "!=", "<=", "..=", "::", "=>"]);
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* never closed", "'a", "b'", "1.", "r#"] {
            let lexed = lex(src);
            for t in &lexed.tokens {
                assert!(t.lo <= t.hi && t.hi <= src.len(), "span out of bounds for {src:?}");
                assert!(src.get(t.lo..t.hi).is_some(), "non-boundary span for {src:?}");
            }
        }
    }

    #[test]
    fn line_and_col_are_zero_based_bytes() {
        let src = "ab\n  cd\n";
        let toks = lex(src).tokens;
        assert_eq!((toks[0].line, toks[0].col), (0, 0));
        assert_eq!((toks[1].line, toks[1].col), (1, 2));
    }

    #[test]
    fn multibyte_chars_stay_whole() {
        let src = "let café = \"héllo\"; // naïve\n";
        let lexed = lex(src);
        for t in &lexed.tokens {
            assert!(src.get(t.lo..t.hi).is_some(), "span must be a char boundary");
        }
        assert!(lexed.tokens.iter().any(|t| &src[t.lo..t.hi] == "café"));
    }
}
