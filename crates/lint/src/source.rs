//! Lexical source model the rules run against.
//!
//! `asm-lint` deliberately avoids a full parser (the build environment is
//! offline, so `syn` is unavailable); instead each file is reduced to a
//! *cleaned* view — comments and string/char literal bodies blanked out,
//! byte-for-byte aligned with the original so line/column positions match —
//! plus two line masks: which lines sit inside `#[cfg(test)]` items, and
//! which lines carry an `asm-lint: allow(...)` escape-hatch directive.
//!
//! The cleaning pass understands line comments, nested block comments,
//! string / raw-string / byte-string / char literals, and distinguishes
//! lifetimes (`'a`) from char literals (`'a'`).

use std::collections::BTreeSet;

/// One rule's identifier (`R1`..`R7`), as used in allow directives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Hash-ordered collections in simulation state.
    R1,
    /// `unwrap()` / bare `expect` outside tests.
    R2,
    /// Float `==` / `!=` comparisons.
    R3,
    /// Wall-clock or OS entropy in simulation crates.
    R4,
    /// Lossy `as` casts in billing/accounting arithmetic.
    R5,
    /// Threads or synchronisation primitives in simulation crates.
    R6,
    /// `println!`-family printing in simulation crates.
    R7,
}

impl RuleId {
    /// All rules, in order.
    pub const ALL: [RuleId; 7] = [
        RuleId::R1,
        RuleId::R2,
        RuleId::R3,
        RuleId::R4,
        RuleId::R5,
        RuleId::R6,
        RuleId::R7,
    ];

    /// Canonical name (`"R1"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RuleId::R1 => "R1",
            RuleId::R2 => "R2",
            RuleId::R3 => "R3",
            RuleId::R4 => "R4",
            RuleId::R5 => "R5",
            RuleId::R6 => "R6",
            RuleId::R7 => "R7",
        }
    }

    fn parse(s: &str) -> Option<RuleId> {
        match s.trim().to_ascii_uppercase().as_str() {
            "R1" => Some(RuleId::R1),
            "R2" => Some(RuleId::R2),
            "R3" => Some(RuleId::R3),
            "R4" => Some(RuleId::R4),
            "R5" => Some(RuleId::R5),
            "R6" => Some(RuleId::R6),
            "R7" => Some(RuleId::R7),
            _ => None,
        }
    }
}

/// A lexically analysed source file.
pub struct SourceModel {
    /// Display path used in diagnostics.
    pub path: String,
    /// Original lines, exactly as read.
    pub lines: Vec<String>,
    /// Cleaned lines: comments and literal bodies replaced by spaces,
    /// same length as the original line (so columns agree).
    pub cleaned: Vec<String>,
    /// 0-based line numbers inside `#[cfg(test)]` items.
    pub test_lines: BTreeSet<usize>,
    /// Per-line allow directives: `(line, rule)` pairs (0-based lines).
    pub allows: BTreeSet<(usize, RuleId)>,
}

impl SourceModel {
    /// Analyse `content`, labelled `path` in diagnostics.
    #[must_use]
    pub fn new(path: &str, content: &str) -> Self {
        let lines: Vec<String> = content.lines().map(str::to_owned).collect();
        let (cleaned, comment_spans) = clean(content);
        let cleaned_lines: Vec<String> = cleaned.lines().map(str::to_owned).collect();
        let test_lines = find_test_regions(&cleaned);
        let allows = find_allow_directives(content, &cleaned_lines, &comment_spans);
        SourceModel {
            path: path.to_owned(),
            lines,
            cleaned: cleaned_lines,
            test_lines,
            allows,
        }
    }

    /// Whether 0-based `line` is inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.contains(&line)
    }

    /// Whether `rule` is suppressed on 0-based `line` by an allow
    /// directive (same-line trailing comment or a standalone directive
    /// comment on a preceding line).
    #[must_use]
    pub fn is_allowed(&self, line: usize, rule: RuleId) -> bool {
        self.allows.contains(&(line, rule))
    }

    /// The original text from (0-based) line/byte-column onwards, joined
    /// across up to `max_lines` lines — used to inspect literal arguments
    /// (e.g. an `expect` message) that may continue on following lines.
    #[must_use]
    pub fn original_window(&self, line: usize, col: usize, max_lines: usize) -> String {
        let mut out = String::new();
        for (i, l) in self.lines.iter().enumerate().skip(line).take(max_lines) {
            if i == line {
                out.push_str(l.get(col..).unwrap_or(""));
            } else {
                out.push_str(l);
            }
            out.push('\n');
        }
        out
    }
}

/// Lexer state for [`clean`].
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Blanks comments and literal bodies with spaces (newlines kept), and
/// returns the cleaned text plus the byte spans of every comment.
fn clean(src: &str) -> (String, Vec<(usize, usize)>) {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut state = State::Code;
    let mut comment_start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match state {
            State::Code => match b {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    state = State::LineComment;
                    comment_start = i;
                    out.push(b' ');
                    i += 1;
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    state = State::BlockComment(1);
                    comment_start = i;
                    out.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                b'"' => {
                    // Possible (raw/byte) string start: we are already past
                    // any `r#`/`b` prefix bytes, which are harmless to keep.
                    let hashes = raw_hashes_before(bytes, i);
                    state = match hashes {
                        Some(h) => State::RawStr(h),
                        None => State::Str,
                    };
                    out.push(b'"');
                    i += 1;
                }
                b'\'' => {
                    // Char literal vs lifetime: a char literal closes with
                    // `'` within a few bytes; a lifetime never does.
                    if is_char_literal(bytes, i) {
                        state = State::Char;
                    }
                    out.push(b'\'');
                    i += 1;
                }
                _ => {
                    out.push(b);
                    i += 1;
                }
            },
            State::LineComment => {
                if b == b'\n' {
                    comments.push((comment_start, i));
                    state = State::Code;
                    out.push(b'\n');
                } else {
                    out.push(blank(b));
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    if depth == 1 {
                        comments.push((comment_start, i + 2));
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    out.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                out.push(blank(b));
                i += 1;
            }
            State::Str => match b {
                b'\\' => {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                b'"' => {
                    state = State::Code;
                    out.push(b'"');
                    i += 1;
                }
                _ => {
                    out.push(blank(b));
                    i += 1;
                }
            },
            State::RawStr(hashes) => {
                if b == b'"' && closing_hashes(bytes, i + 1) >= hashes {
                    out.push(b'"');
                    // Keep the closing hashes as-is; they are inert.
                    state = State::Code;
                } else {
                    out.push(blank(b));
                }
                i += 1;
            }
            State::Char => match b {
                b'\\' => {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                b'\'' => {
                    state = State::Code;
                    out.push(b'\'');
                    i += 1;
                }
                _ => {
                    out.push(blank(b));
                    i += 1;
                }
            },
        }
    }
    if let State::LineComment = state {
        comments.push((comment_start, bytes.len()));
    }
    // The cleaning pass substitutes ASCII for ASCII, so the output is
    // valid UTF-8 whenever the input was (multi-byte runs only occur in
    // comments/literals, where non-ASCII bytes are kept verbatim in line
    // comments and blanked elsewhere per-byte; blanking a multi-byte char
    // per byte would break UTF-8, so keep non-ASCII bytes verbatim).
    (String::from_utf8_lossy(&out).into_owned(), comments)
}

/// Blanking byte: newlines keep line structure, non-ASCII bytes are kept
/// verbatim so the output stays valid UTF-8 with unchanged byte offsets
/// (multi-byte characters cannot match any ASCII rule pattern anyway).
fn blank(b: u8) -> u8 {
    // Newlines keep line numbers aligned. Everything else — including each
    // byte of a multi-byte UTF-8 character — becomes a space: blanked
    // regions are comments/literals, never code, and an all-ASCII
    // replacement keeps byte offsets aligned while staying valid UTF-8.
    if b == b'\n' {
        b
    } else {
        b' '
    }
}

/// If the `"` at `quote` is the opening of a raw string (`r"`, `r#"`,
/// `br##"` ...), the number of hashes; `None` for ordinary strings.
fn raw_hashes_before(bytes: &[u8], quote: usize) -> Option<u32> {
    let mut i = quote;
    let mut hashes = 0u32;
    while i > 0 && bytes[i - 1] == b'#' {
        hashes += 1;
        i -= 1;
    }
    if i > 0 && (bytes[i - 1] == b'r' || (bytes[i - 1] == b'b' && i > 1 && bytes[i - 2] == b'r')) {
        // Reject identifiers ending in `r` (e.g. `var"` cannot occur, but
        // `r` must not be part of a longer identifier like `for`).
        let before_r = if bytes[i - 1] == b'b' { i - 2 } else { i - 1 };
        if before_r == 0 || !is_ident_byte(bytes[before_r - 1]) {
            return Some(hashes);
        }
    }
    if hashes > 0 {
        // `#"` without `r` is not a raw string; treat as ordinary.
        return None;
    }
    None
}

fn closing_hashes(bytes: &[u8], from: usize) -> u32 {
    let mut n = 0u32;
    while bytes.get(from + n as usize) == Some(&b'#') {
        n += 1;
    }
    n
}

fn is_char_literal(bytes: &[u8], tick: usize) -> bool {
    match bytes.get(tick + 1) {
        Some(b'\\') => true,
        Some(_) => bytes.get(tick + 2) == Some(&b'\''),
        None => false,
    }
}

/// Whether `b` can appear in an identifier.
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Marks every line covered by a `#[cfg(test)]` item (attribute line
/// through the matching close brace of the item body, or the terminating
/// semicolon for brace-less items).
fn find_test_regions(cleaned: &str) -> BTreeSet<usize> {
    let mut test_lines = BTreeSet::new();
    let bytes = cleaned.as_bytes();
    let needle = b"cfg(test)";
    let mut search = 0usize;
    while let Some(found) = find_from(bytes, needle, search) {
        search = found + needle.len();
        // Must be inside an attribute: look back for `#[` with only
        // attribute-ish bytes between.
        let Some(attr_start) = attribute_start(bytes, found) else {
            continue;
        };
        // From the end of the attribute, find the item's extent.
        let attr_end = match find_from(bytes, b"]", found) {
            Some(e) => e + 1,
            None => continue,
        };
        let (start, end) = item_extent(bytes, attr_start, attr_end);
        let first_line = line_of(bytes, start);
        let last_line = line_of(bytes, end.min(bytes.len().saturating_sub(1)));
        for l in first_line..=last_line {
            test_lines.insert(l);
        }
        search = search.max(end);
    }
    test_lines
}

/// Looks back from a `cfg(test)` occurrence for the opening `#[`.
fn attribute_start(bytes: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while i > 0 {
        i -= 1;
        match bytes[i] {
            b'[' => {
                if i > 0 && bytes[i - 1] == b'#' {
                    return Some(i - 1);
                }
                return None;
            }
            b']' | b';' | b'}' | b'{' => return None,
            _ => {}
        }
    }
    None
}

/// The byte extent of the item an attribute at `attr_start..attr_end`
/// applies to: through the matching `}` of the first body brace, or the
/// first top-level `;` for brace-less items.
fn item_extent(bytes: &[u8], attr_start: usize, attr_end: usize) -> (usize, usize) {
    let mut depth_paren = 0i32;
    let mut depth_brace = 0i32;
    let mut i = attr_end;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' => depth_paren += 1,
            b')' | b']' => depth_paren -= 1,
            b'{' => {
                depth_brace += 1;
                // First body brace found: scan to its match.
                if depth_brace == 1 && depth_paren == 0 {
                    let mut d = 1i32;
                    let mut j = i + 1;
                    while j < bytes.len() && d > 0 {
                        match bytes[j] {
                            b'{' => d += 1,
                            b'}' => d -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                    return (attr_start, j);
                }
            }
            b';' if depth_paren == 0 && depth_brace == 0 => {
                return (attr_start, i + 1);
            }
            _ => {}
        }
        i += 1;
    }
    (attr_start, bytes.len())
}

fn find_from(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

fn line_of(bytes: &[u8], pos: usize) -> usize {
    bytes[..pos.min(bytes.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

/// Parses `asm-lint: allow(R1, R2): reason` directives out of comments.
///
/// A directive in a trailing comment suppresses the named rules on its own
/// line; a directive in a standalone comment suppresses them on the next
/// line that contains code.
fn find_allow_directives(
    content: &str,
    cleaned: &[String],
    comment_spans: &[(usize, usize)],
) -> BTreeSet<(usize, RuleId)> {
    let mut allows = BTreeSet::new();
    // Byte offset of each line start in the original content.
    let mut line_starts = vec![0usize];
    for (i, b) in content.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    for &(start, end) in comment_spans {
        let text = content.get(start..end.min(content.len())).unwrap_or("");
        let Some(rules) = parse_allow(text) else {
            continue;
        };
        let line = line_starts.partition_point(|&s| s <= start) - 1;
        let has_code_before = cleaned
            .get(line)
            .is_some_and(|cl| {
                let col = start - line_starts[line];
                cl.get(..col.min(cl.len()))
                    .is_some_and(|prefix| !prefix.trim().is_empty())
            });
        let target = if has_code_before {
            line
        } else {
            // Standalone directive: next line with any code on it.
            let mut t = line + 1;
            while t < cleaned.len() && cleaned[t].trim().is_empty() {
                t += 1;
            }
            t
        };
        for r in rules {
            allows.insert((target, r));
        }
    }
    allows
}

/// Extracts the rule list from one comment's text, if it is a directive.
fn parse_allow(comment: &str) -> Option<Vec<RuleId>> {
    let idx = comment.find("asm-lint:")?;
    let rest = comment[idx + "asm-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<RuleId> = rest[..close]
        .split(',')
        .filter_map(RuleId::parse)
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let m = SourceModel::new(
            "t.rs",
            "let x = \"HashMap\"; // HashMap here\nlet y = 1;\n",
        );
        assert!(!m.cleaned[0].contains("HashMap"));
        assert_eq!(m.cleaned[1], "let y = 1;");
        // Columns preserved.
        assert_eq!(m.lines[0].len(), m.cleaned[0].len());
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let m = SourceModel::new("t.rs", "/* a /* b */ c */ let z = HashMap::new();\n");
        assert!(m.cleaned[0].contains("HashMap"));
        assert!(!m.cleaned[0].contains("a "));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let m = SourceModel::new("t.rs", "fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(m.cleaned[0].contains("str"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let m = SourceModel::new("t.rs", "let c = 'x'; let d = '\\n'; let e = 1;\n");
        assert!(!m.cleaned[0].contains('x'));
        assert!(m.cleaned[0].contains("let e = 1;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let m = SourceModel::new("t.rs", "let s = r#\"HashMap \"inner\" \"#; let t = 2;\n");
        assert!(!m.cleaned[0].contains("HashMap"));
        assert!(m.cleaned[0].contains("let t = 2;"));
    }

    #[test]
    fn cfg_test_region_covers_module_body() {
        let src = "\
fn prod() { }

#[cfg(test)]
mod tests {
    fn helper() { }
}

fn also_prod() { }
";
        let m = SourceModel::new("t.rs", src);
        assert!(!m.is_test_line(0));
        assert!(m.is_test_line(2)); // attribute line
        assert!(m.is_test_line(3));
        assert!(m.is_test_line(4));
        assert!(m.is_test_line(5));
        assert!(!m.is_test_line(7));
    }

    #[test]
    fn braceless_cfg_test_item_stops_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() { }\n";
        let m = SourceModel::new("t.rs", src);
        assert!(m.is_test_line(1));
        assert!(!m.is_test_line(2));
    }

    #[test]
    fn allow_directive_trailing_and_standalone() {
        let src = "\
let a = frob(); // asm-lint: allow(R2): invariant stated elsewhere
// asm-lint: allow(R1, R3): migration pending
let b = frob();
let c = frob();
";
        let m = SourceModel::new("t.rs", src);
        assert!(m.is_allowed(0, RuleId::R2));
        assert!(!m.is_allowed(0, RuleId::R1));
        assert!(m.is_allowed(2, RuleId::R1));
        assert!(m.is_allowed(2, RuleId::R3));
        assert!(!m.is_allowed(3, RuleId::R1));
    }
}
