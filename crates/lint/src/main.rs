//! CLI for `asm-lint`. Lints the simulation and harness crates and
//! exits non-zero when any rule violation remains.
//!
//! ```text
//! cargo run -p asm-lint --release                 # lint the workspace
//! cargo run -p asm-lint --release -- <root>       # lint another checkout
//! cargo run -p asm-lint --release -- --json       # machine-readable report
//! cargo run -p asm-lint --release -- --list-rules # rule reference
//! cargo run -p asm-lint --release -- --pedantic   # also audit hot-path indexing
//! ```
//!
//! Exit codes: `0` clean, `1` violations, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use asm_lint::{Options, RuleId};

fn workspace_root() -> PathBuf {
    // crates/lint/ -> crates/ -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let mut json = false;
    let mut opts = Options::default();
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--pedantic" => opts.pedantic = true,
            "--list-rules" => {
                for r in RuleId::ALL {
                    println!("{:<4} {}", r.name(), r.summary());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: asm-lint [ROOT] [--json] [--pedantic] [--list-rules]\n\
                     lints the simulation crates for determinism rules R1-R12"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("asm-lint: unknown flag `{flag}` (try --help)");
                return ExitCode::from(2);
            }
            path => {
                if root.is_some() {
                    eprintln!("asm-lint: more than one root given (try --help)");
                    return ExitCode::from(2);
                }
                root = Some(PathBuf::from(path));
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);

    let analysis = match asm_lint::run_workspace_with(&root, &opts) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("asm-lint: failed to read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", asm_lint::jsonout::render(&analysis));
        return if analysis.diagnostics.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if analysis.diagnostics.is_empty() {
        println!(
            "asm-lint: clean — {} files across {} simulation + {} harness crates \
             satisfy R1-R13 ({} unsafe sites justified, {} hot-path fns audited, \
             {} reasoned suppressions)",
            analysis.files,
            asm_lint::SIM_CRATES.len(),
            asm_lint::HARNESS_CRATES.len(),
            analysis.unsafe_inventory.len(),
            analysis.hot_reachable.len(),
            analysis.suppressed.len(),
        );
        return ExitCode::SUCCESS;
    }

    for d in &analysis.diagnostics {
        println!("{d}");
    }
    println!(
        "asm-lint: {} violation{} (suppress intentional ones with \
         `// asm-lint: allow(R#): reason`)",
        analysis.diagnostics.len(),
        if analysis.diagnostics.len() == 1 { "" } else { "s" }
    );
    ExitCode::FAILURE
}
