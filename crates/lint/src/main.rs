//! CLI for `asm-lint`. Lints the eight simulation crates and exits
//! non-zero when any rule violation remains.
//!
//! ```text
//! cargo run -p asm-lint --release            # lint the workspace
//! cargo run -p asm-lint --release -- <root>  # lint another checkout
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/lint/ -> crates/ -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map_or_else(workspace_root, PathBuf::from);

    let diagnostics = match asm_lint::run_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("asm-lint: failed to read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if diagnostics.is_empty() {
        println!(
            "asm-lint: clean — {} simulation crates satisfy R1-R7",
            asm_lint::SIM_CRATES.len()
        );
        return ExitCode::SUCCESS;
    }

    for d in &diagnostics {
        println!("{d}");
    }
    println!(
        "asm-lint: {} violation{} (suppress intentional ones with \
         `// asm-lint: allow(R#): reason`)",
        diagnostics.len(),
        if diagnostics.len() == 1 { "" } else { "s" }
    );
    ExitCode::FAILURE
}
