//! Machine-readable report writer for `--json`.
//!
//! Hand-rolled so the linter stays runtime-dependency-free (the build
//! environment has no crates.io access). The schema is stable and
//! round-trip-tested against the dependency-free JSON parser in
//! `asm-telemetry` (`asm_telemetry::json::parse`):
//!
//! ```json
//! {
//!   "schema": "asm-lint/2",
//!   "rules": ["R1", …, "R13"],
//!   "files": 42,
//!   "diagnostics":     [{"rule", "path", "line", "col", "message", "allowed"}…],
//!   "suppressed":      [same shape, allowed = true…],
//!   "unsafe_inventory":[{"path", "line", "col", "kind", "fn", "has_safety"}…],
//!   "hot_reachable":   [{"fn", "impl", "path", "line", "boundary"}…]
//! }
//! ```
//!
//! Arrays are pre-sorted by the analysis (diagnostics by
//! `(path, line, rule, col)`, inventory and reachability by
//! `(path, line)`), so the report is byte-identical across runs and
//! machines.

use crate::rules::Diagnostic;
use crate::{Analysis, RuleId};

/// Renders the full analysis as a JSON document (trailing newline).
#[must_use]
pub fn render(a: &Analysis) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"schema\": \"asm-lint/2\",\n  \"rules\": [");
    for (i, r) in RuleId::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_str_json(&mut out, r.name());
    }
    out.push_str("],\n");
    out.push_str(&format!("  \"files\": {},\n", a.files));

    out.push_str("  \"diagnostics\": [");
    push_diags(&mut out, &a.diagnostics);
    out.push_str("],\n");

    out.push_str("  \"suppressed\": [");
    push_diags(&mut out, &a.suppressed);
    out.push_str("],\n");

    out.push_str("  \"unsafe_inventory\": [");
    for (i, u) in a.unsafe_inventory.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"path\": ");
        push_str_json(&mut out, &u.path);
        out.push_str(&format!(", \"line\": {}, \"col\": {}, \"kind\": ", u.line, u.col));
        push_str_json(&mut out, u.kind);
        out.push_str(", \"fn\": ");
        push_opt_str(&mut out, u.enclosing_fn.as_deref());
        out.push_str(&format!(", \"has_safety\": {}}}", u.has_safety));
    }
    if !a.unsafe_inventory.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");

    out.push_str("  \"hot_reachable\": [");
    for (i, h) in a.hot_reachable.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"fn\": ");
        push_str_json(&mut out, &h.name);
        out.push_str(", \"impl\": ");
        push_opt_str(&mut out, h.impl_type.as_deref());
        out.push_str(", \"path\": ");
        push_str_json(&mut out, &h.path);
        out.push_str(&format!(", \"line\": {}, \"boundary\": {}}}", h.line, h.boundary));
    }
    if !a.hot_reachable.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn push_diags(out: &mut String, diags: &[Diagnostic]) {
    for (i, d) in diags.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"rule\": ");
        push_str_json(out, d.rule.name());
        out.push_str(", \"path\": ");
        push_str_json(out, &d.path);
        out.push_str(&format!(", \"line\": {}, \"col\": {}, \"message\": ", d.line, d.col));
        push_str_json(out, &d.message);
        out.push_str(&format!(", \"allowed\": {}}}", d.allowed));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
}

fn push_opt_str(out: &mut String, s: Option<&str>) {
    match s {
        Some(s) => push_str_json(out, s),
        None => out.push_str("null"),
    }
}

/// Appends `s` as a JSON string literal with full escaping.
fn push_str_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HotFn, UnsafeRecord};

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let mut s = String::new();
        push_str_json(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn empty_analysis_renders_empty_arrays() {
        let a = Analysis::default();
        let json = render(&a);
        assert!(json.contains("\"diagnostics\": []"));
        assert!(json.contains("\"unsafe_inventory\": []"));
        assert!(json.contains("\"schema\": \"asm-lint/2\""));
    }

    #[test]
    fn records_render_all_fields() {
        let a = Analysis {
            diagnostics: vec![Diagnostic {
                path: "crates/core/src/x.rs".into(),
                line: 3,
                col: 7,
                rule: RuleId::R8,
                message: "uses `Fast`".into(),
                allowed: false,
            }],
            suppressed: Vec::new(),
            unsafe_inventory: vec![UnsafeRecord {
                path: "crates/cache/src/scan.rs".into(),
                line: 86,
                col: 9,
                kind: "block",
                enclosing_fn: Some("scan_ways".into()),
                has_safety: true,
            }],
            hot_reachable: vec![HotFn {
                path: "crates/core/src/system.rs".into(),
                line: 834,
                name: "step".into(),
                impl_type: Some("System".into()),
                boundary: false,
            }],
            files: 2,
        };
        let json = render(&a);
        assert!(json.contains("\"rule\": \"R8\""));
        assert!(json.contains("\"has_safety\": true"));
        assert!(json.contains("\"impl\": \"System\""));
        assert!(json.contains("\"files\": 2"));
    }
}
