//! Workspace symbol resolution: the R8 iteration-order taint pass.
//!
//! The lexical rules catch `HashMap` spelled out; they provably cannot
//! catch `type Fast = std::collections::HashMap<u64, u64>;` used three
//! files away. This pass builds a workspace-wide, name-keyed alias
//! table from every `use … as` rename, `pub use` re-export, `type`
//! alias, and struct generic-parameter default, propagates taint from
//! the hash-ordered roots (`HashMap`, `HashSet`, `RandomState`, and the
//! `hash_map`/`hash_set` modules) to a fixpoint, and flags every use of
//! a tainted name in simulation code.
//!
//! Resolution is deliberately conservative and purely name-keyed: two
//! crates using the same alias name both count as tainted. False
//! positives are cheap (rename the alias or add a reasoned allow);
//! false negatives are a reproducibility bug.
//!
//! An `// asm-lint: allow(R8): reason` on a *definition* line (use,
//! type alias, or generic default) is a propagation barrier: the
//! justification vouches for the alias itself (e.g. a fixed-seed
//! hasher pins iteration order), so no usage anywhere is flagged. An
//! allow on a *usage* line suppresses only that line.

use std::collections::{BTreeMap, BTreeSet};

use crate::parse::FileModel;
use crate::rules::Diagnostic;
use crate::tokens::TokKind;
use crate::RuleId;

/// Type names whose iteration/config order is process-randomized.
const BANNED_TYPES: &[&str] = &["HashMap", "HashSet", "RandomState"];

/// Module path segments that place a name inside the hash collections.
const BANNED_MODULES: &[&str] = &["hash_map", "hash_set"];

fn is_banned_type(name: &str) -> bool {
    BANNED_TYPES.contains(&name)
}

fn path_is_hashy(path: &[String]) -> bool {
    path.last().is_some_and(|s| is_banned_type(s))
        || path.iter().any(|s| BANNED_MODULES.contains(&s.as_str()))
}

/// Runs the R8 pass over the simulation files. Returns
/// `(active, suppressed)` diagnostics.
#[must_use]
pub fn check_alias_taint(models: &[&FileModel]) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    // Taint table: local name -> resolved description of the hash root
    // it reaches (e.g. "std::collections::HashMap").
    let mut taint: BTreeMap<String, String> = BTreeMap::new();
    // Definition sites per name: (path, 0-based line). Usage reporting
    // skips these — the defining line is either already flagged by the
    // literal-name rules (R1/R4) or is itself flagged through the name
    // it mentions.
    let mut def_sites: BTreeSet<(String, String, usize)> = BTreeSet::new();
    // Names whose definition line carries `allow(R8)`: the justification
    // at the source is a propagation *barrier* — the alias is vouched-for
    // (e.g. a fixed-seed hasher makes iteration deterministic), so
    // nothing downstream of it is tainted. Mirrors R9's fn-level allow.
    let mut barriers: BTreeSet<String> = BTreeSet::new();

    for m in models {
        for u in &m.uses {
            def_sites.insert((u.name.clone(), m.path.clone(), u.line));
            if m.is_allowed(u.line, RuleId::R8) {
                barriers.insert(u.name.clone());
            }
        }
        for a in &m.aliases {
            def_sites.insert((a.name.clone(), m.path.clone(), a.line));
            if m.is_allowed(a.line, RuleId::R8) {
                barriers.insert(a.name.clone());
            }
        }
        for g in &m.generic_defaults {
            def_sites.insert((g.owner.clone(), m.path.clone(), g.line));
            if m.is_allowed(g.line, RuleId::R8) {
                barriers.insert(g.owner.clone());
            }
        }
    }

    // Seed + propagate to fixpoint. Each round only adds names, so the
    // loop terminates within (number of names) iterations.
    loop {
        let mut changed = false;
        for m in models {
            for u in &m.uses {
                if taint.contains_key(&u.name) || barriers.contains(&u.name) {
                    continue;
                }
                // Literal `use std::collections::HashMap;` keeps the
                // banned name visible: that is R1's business, not R8's.
                if path_is_hashy(&u.path) && !(is_banned_type(&u.name) && !u.renamed) {
                    taint.insert(u.name.clone(), u.path.join("::"));
                    changed = true;
                } else if let Some(target) =
                    u.path.last().and_then(|last| taint.get(last)).cloned()
                {
                    taint.insert(u.name.clone(), target);
                    changed = true;
                }
            }
            for a in &m.aliases {
                if taint.contains_key(&a.name)
                    || is_banned_type(&a.name)
                    || barriers.contains(&a.name)
                {
                    continue;
                }
                let direct = a
                    .rhs_idents
                    .iter()
                    .find(|id| is_banned_type(id))
                    .map(|id| {
                        if a.rhs_head.last().is_some_and(|h| h == id.as_str()) {
                            a.rhs_head.join("::")
                        } else {
                            (*id).clone()
                        }
                    });
                let via_alias = a
                    .rhs_idents
                    .iter()
                    .find_map(|id| taint.get(id))
                    .cloned();
                if let Some(target) = direct.or(via_alias) {
                    taint.insert(a.name.clone(), target);
                    changed = true;
                }
            }
            for g in &m.generic_defaults {
                if taint.contains_key(&g.owner)
                    || is_banned_type(&g.owner)
                    || barriers.contains(&g.owner)
                {
                    continue;
                }
                let hit = g
                    .default_idents
                    .iter()
                    .find_map(|id| {
                        if is_banned_type(id) {
                            Some((*id).clone())
                        } else {
                            taint.get(id).cloned()
                        }
                    });
                if let Some(target) = hit {
                    taint.insert(g.owner.clone(), target);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Usage scan: every non-test mention of a tainted name, outside its
    // own definition sites.
    let mut active = Vec::new();
    let mut suppressed = Vec::new();
    for m in models {
        for i in 0..m.tokens.len() {
            if m.tokens[i].kind != TokKind::Ident || m.is_test_token(i) {
                continue;
            }
            // Field/method positions are values, not types.
            if i > 0 && m.is_punct(i - 1, ".") {
                continue;
            }
            let name = m.text(i);
            let Some(target) = taint.get(name) else {
                continue;
            };
            let line = m.tokens[i].line;
            if def_sites.contains(&(name.to_owned(), m.path.clone(), line)) {
                continue;
            }
            let allowed = m.is_allowed(line, RuleId::R8);
            let d = Diagnostic {
                path: m.path.clone(),
                line: line + 1,
                col: m.tokens[i].col + 1,
                rule: RuleId::R8,
                message: format!(
                    "`{name}` resolves to `{target}` — hash iteration order is \
                     process-randomized and can reorder simulated events; use \
                     `BTreeMap`/`BTreeSet` or an explicitly sorted drain"
                ),
                allowed,
            };
            if allowed {
                suppressed.push(d);
            } else {
                active.push(d);
            }
        }
    }
    (active, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models(files: &[(&str, &str)]) -> Vec<FileModel> {
        files
            .iter()
            .map(|(p, c)| FileModel::new(p, c))
            .collect()
    }

    fn r8_lines(files: &[(&str, &str)]) -> Vec<(String, usize)> {
        let owned = models(files);
        let refs: Vec<&FileModel> = owned.iter().collect();
        let (active, _) = check_alias_taint(&refs);
        active.iter().map(|d| (d.path.clone(), d.line)).collect()
    }

    #[test]
    fn rename_taints_usage_sites() {
        let got = r8_lines(&[(
            "crates/core/src/state.rs",
            "use std::collections::HashMap as Map;\nstruct S { m: Map }\n",
        )]);
        assert_eq!(got, vec![("crates/core/src/state.rs".to_owned(), 2)]);
    }

    #[test]
    fn cross_file_type_alias_is_caught() {
        let got = r8_lines(&[
            (
                "crates/core/src/aliases.rs",
                "pub type Fast = std::collections::HashMap<u64, u64>;\n",
            ),
            (
                "crates/core/src/state.rs",
                "use crate::aliases::Fast;\npub struct SimState { pub table: Fast }\n",
            ),
        ]);
        assert_eq!(got, vec![("crates/core/src/state.rs".to_owned(), 2)]);
    }

    #[test]
    fn chained_aliases_reach_fixpoint() {
        let got = r8_lines(&[(
            "crates/core/src/chain.rs",
            "type A = std::collections::HashSet<u64>;\ntype B = A;\ntype C = B;\nfn f(x: C) { let _ = x; }\n",
        )]);
        // B's rhs mentions A (line 2), C's rhs mentions B (line 3), and
        // the use of C (line 4).
        assert_eq!(
            got,
            vec![
                ("crates/core/src/chain.rs".to_owned(), 2),
                ("crates/core/src/chain.rs".to_owned(), 3),
                ("crates/core/src/chain.rs".to_owned(), 4),
            ]
        );
    }

    #[test]
    fn generic_default_taints_owner() {
        let got = r8_lines(&[(
            "crates/core/src/g.rs",
            "use std::collections::hash_map::RandomState as St;\nstruct Fast<H = St> { h: H }\nfn f(x: Fast) { let _ = x; }\n",
        )]);
        // Line 2 uses St (tainted), line 3 uses Fast (tainted via the
        // generic default).
        assert_eq!(
            got,
            vec![
                ("crates/core/src/g.rs".to_owned(), 2),
                ("crates/core/src/g.rs".to_owned(), 3),
            ]
        );
    }

    #[test]
    fn literal_imports_stay_r1_territory() {
        // A plain `use std::collections::HashMap;` keeps the literal
        // name: R8 must not double-report what R1 already flags.
        let got = r8_lines(&[(
            "crates/core/src/lit.rs",
            "use std::collections::HashMap;\nfn f(m: HashMap<u64, u64>) { let _ = m; }\n",
        )]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn allow_directive_routes_to_suppressed() {
        let owned = models(&[(
            "crates/core/src/state.rs",
            "use std::collections::HashMap as Map;\n// asm-lint: allow(R8): drained through a BTreeMap before use\nstruct S { m: Map }\n",
        )]);
        let refs: Vec<&FileModel> = owned.iter().collect();
        let (active, suppressed) = check_alias_taint(&refs);
        assert!(active.is_empty(), "{active:#?}");
        assert_eq!(suppressed.len(), 1);
    }

    #[test]
    fn def_site_allow_is_a_propagation_barrier() {
        // One justification at the alias definition clears every usage:
        // the fixed-seed-hasher pattern (`DetHashMap` in `asm-simcore`).
        let got = r8_lines(&[
            (
                "crates/simcore/src/hash.rs",
                "// asm-lint: allow(R8): fixed-seed hasher — iteration order is deterministic\n\
                 pub type DetMap<K, V> = std::collections::HashMap<K, V, S>;\n",
            ),
            (
                "crates/core/src/state.rs",
                "use asm_simcore::DetMap;\nstruct S { m: DetMap<u64, u64> }\n",
            ),
        ]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn clean_aliases_are_untainted() {
        let got = r8_lines(&[(
            "crates/core/src/clean.rs",
            "use std::collections::BTreeMap as Map;\ntype Fast = Vec<u64>;\nstruct S { m: Map, f: Fast }\n",
        )]);
        assert!(got.is_empty(), "{got:?}");
    }
}
