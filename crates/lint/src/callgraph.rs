//! Workspace call graph: the R9 hot-path hygiene pass.
//!
//! Builds a conservative intra-workspace call graph over the simulation
//! crates and walks it from the hot-path roots — the per-cycle loop
//! (`System::step`, `System::step_until`, `System::run_for`) and the
//! analytic tier's per-mix solve (`MixSolver::solve`) — to find every
//! function that can execute inside those loops. Reachable
//! functions must not allocate, perform I/O, or invoke panic macros;
//! the reachability set itself is exported (see `--json`) so the hot
//! path is auditable.
//!
//! Conservatism and escape hatch:
//!
//! - Method calls (`x.f(…)`) link to *every* workspace fn named `f`
//!   that takes a `self` receiver — receiver types are unknown without
//!   type inference, but method syntax provably cannot reach free fns
//!   or self-less associated fns. Qualified calls (`T::f(…)`) link only
//!   to fns in `impl T`; bare calls prefer the defining file, then free
//!   fns. External calls (`Vec::new`) create no edges.
//! - A fn-level `// asm-lint: allow(R9): reason` on (or directly above)
//!   the `fn` line both suppresses the fn's own leaf checks *and* stops
//!   traversal there: it declares a justified quantum boundary (epoch
//!   accounting, tracer flush) whose callees run off the per-cycle
//!   path. Boundary fns still appear in the reachability set, marked.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parse::FileModel;
use crate::rules::Diagnostic;
use crate::tokens::{Delim, TokKind};
use crate::{HotFn, Options, RuleId};

/// Root methods of the analysed hot paths as `(impl type, fn)` pairs: the
/// per-cycle loop on `impl System`, plus the analytic tier's per-mix solve
/// on `impl MixSolver` — a campaign calls it millions of times, so it gets
/// the same no-alloc/no-I/O discipline as the cycle loop.
const ROOTS: &[(&str, &str)] = &[
    ("System", "step"),
    ("System", "step_until"),
    ("System", "run_for"),
    ("MixSolver", "solve"),
];

/// The R9 pass result.
#[derive(Debug, Default)]
pub struct GraphResult {
    /// Active diagnostics.
    pub active: Vec<Diagnostic>,
    /// Allow-suppressed diagnostics.
    pub suppressed: Vec<Diagnostic>,
    /// Every reachable fn, sorted by (path, line).
    pub reachable: Vec<HotFn>,
}

/// One fn node in the graph.
struct Node {
    file: usize,
    fn_idx: usize,
    name: String,
    impl_type: Option<String>,
    has_self: bool,
    boundary: bool,
}

/// Runs the R9 pass over the simulation files.
#[must_use]
pub fn analyze(models: &[&FileModel], opts: &Options) -> GraphResult {
    let mut nodes: Vec<Node> = Vec::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (file, m) in models.iter().enumerate() {
        for (fn_idx, f) in m.fns.iter().enumerate() {
            if f.is_test || f.body.is_none() {
                continue;
            }
            let id = nodes.len();
            nodes.push(Node {
                file,
                fn_idx,
                name: f.name.clone(),
                impl_type: f.impl_type.clone(),
                has_self: f.has_self,
                boundary: m.is_allowed(f.sig_line, RuleId::R9),
            });
            by_name.entry(&models[file].fns[fn_idx].name).or_default().push(id);
        }
    }

    // BFS from the roots; boundary fns are listed but not expanded.
    let mut visited: BTreeSet<usize> = BTreeSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (id, n) in nodes.iter().enumerate() {
        if ROOTS
            .iter()
            .any(|&(ty, f)| n.name == f && n.impl_type.as_deref() == Some(ty))
        {
            visited.insert(id);
            queue.push_back(id);
        }
    }
    let mut result = GraphResult::default();
    while let Some(id) = queue.pop_front() {
        let node = &nodes[id];
        if node.boundary {
            continue;
        }
        let m = models[node.file];
        let f = &m.fns[node.fn_idx];
        let (open, close) = f.body.unwrap_or((0, 0));
        check_leaves(m, &f.name, open, close, opts, &mut result);
        for callee in call_targets(m, open, close, node, &nodes, &by_name) {
            if visited.insert(callee) {
                queue.push_back(callee);
            }
        }
    }

    result.reachable = visited
        .iter()
        .map(|&id| {
            let n = &nodes[id];
            let f = &models[n.file].fns[n.fn_idx];
            HotFn {
                path: models[n.file].path.clone(),
                line: f.sig_line + 1,
                name: n.name.clone(),
                impl_type: n.impl_type.clone(),
                boundary: n.boundary,
            }
        })
        .collect();
    result
        .reachable
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    result
}

/// Resolves the call sites in one fn body to node ids, conservatively.
fn call_targets(
    m: &FileModel,
    open: usize,
    close: usize,
    caller: &Node,
    nodes: &[Node],
    by_name: &BTreeMap<&str, Vec<usize>>,
) -> Vec<usize> {
    let mut out = Vec::new();
    let mut i = open + 1;
    while i < close {
        if m.tokens[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Macro invocation, not a call.
        if m.is_punct(i + 1, "!") {
            i += 1;
            continue;
        }
        // `name(`, `name::<T>(`.
        let mut j = i + 1;
        if m.is_punct(j, "::") && m.is_punct(j + 1, "<") {
            j = m.skip_generics_pub(j + 1);
        }
        let is_call = m
            .tokens
            .get(j)
            .is_some_and(|t| t.kind == TokKind::Open(Delim::Paren));
        if !is_call {
            i += 1;
            continue;
        }
        let name = m.text(i);
        let Some(candidates) = by_name.get(name) else {
            i += 1;
            continue;
        };
        if i > 0 && m.is_punct(i - 1, ".") {
            // Method call: receiver type unknown — every same-named fn
            // that actually has a `self` receiver. Free fns and self-less
            // associated fns (constructors) cannot be called with method
            // syntax, so `.all(…)`-style iterator adaptors never link to
            // a workspace free fn named `all`.
            out.extend(candidates.iter().copied().filter(|&c| nodes[c].has_self));
        } else if i > 1 && m.is_punct(i - 1, "::") {
            if m.tokens[i - 2].kind == TokKind::Ident {
                // `T::name(…)`: only fns in `impl T` (Self = caller's).
                let qualifier = m.text(i - 2);
                let ty = if qualifier == "Self" {
                    caller.impl_type.as_deref()
                } else {
                    Some(qualifier)
                };
                out.extend(
                    candidates
                        .iter()
                        .copied()
                        .filter(|&c| nodes[c].impl_type.as_deref() == ty),
                );
            }
            // `Vec::<u8>::new(`-style turbofish qualifiers: external.
        } else {
            // Bare call: same file first, then free fns.
            let same_file: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&c| nodes[c].file == caller.file && nodes[c].impl_type.is_none())
                .collect();
            if same_file.is_empty() {
                out.extend(
                    candidates
                        .iter()
                        .copied()
                        .filter(|&c| nodes[c].impl_type.is_none()),
                );
            } else {
                out.extend(same_file);
            }
        }
        i += 1;
    }
    out
}

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];
/// Allocating methods (`.x(…)` / `.collect::<…>()`).
const ALLOC_METHODS: &[&str] = &["to_owned", "to_string", "to_vec", "collect"];
/// Panicking macros. `assert!`/`debug_assert!`/`unreachable!` stay legal:
/// they are invariant checks, not control flow.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];
/// I/O type names.
const IO_TYPES: &[&str] = &["File", "OpenOptions"];
/// I/O constructor fns (`stdout()` …).
const IO_FNS: &[&str] = &["stdin", "stdout", "stderr"];
/// I/O methods (`.read_to_string(…)` …).
const IO_METHODS: &[&str] = &["read_to_string", "read_line", "read_dir"];

/// Scans one reachable fn body for R9 leaf violations.
fn check_leaves(
    m: &FileModel,
    fname: &str,
    open: usize,
    close: usize,
    opts: &Options,
    result: &mut GraphResult,
) {
    let emit = |tok: usize, message: String, result: &mut GraphResult| {
        let t = &m.tokens[tok];
        let allowed = m.is_allowed(t.line, RuleId::R9);
        let d = Diagnostic {
            path: m.path.clone(),
            line: t.line + 1,
            col: t.col + 1,
            rule: RuleId::R9,
            message,
            allowed,
        };
        if allowed {
            result.suppressed.push(d);
        } else {
            result.active.push(d);
        }
    };
    let escape = "or justify with `// asm-lint: allow(R9): reason`";
    let mut i = open + 1;
    while i < close {
        let kind = m.tokens[i].kind;
        if kind == TokKind::Ident && !m.is_test_token(i) {
            let word = m.text(i);
            let prev_dot = i > 0 && m.is_punct(i - 1, ".");
            let prev_path = i > 0 && m.is_punct(i - 1, "::");
            if m.is_punct(i + 1, "!") && !m.is_punct(i + 2, "=") {
                if ALLOC_MACROS.contains(&word) {
                    emit(
                        i,
                        format!(
                            "`{word}!` allocates in hot-path fn `{fname}` (reachable from \
                             `System::step`) — pre-size or reuse buffers outside the \
                             per-cycle loop, {escape}"
                        ),
                        result,
                    );
                } else if PANIC_MACROS.contains(&word) {
                    emit(
                        i,
                        format!(
                            "`{word}!` can panic in hot-path fn `{fname}` (reachable from \
                             `System::step`) — return an error or make the invariant a \
                             `debug_assert!`, {escape}"
                        ),
                        result,
                    );
                }
            } else if (prev_dot && ALLOC_METHODS.contains(&word))
                || (word == "with_capacity" && (prev_dot || prev_path))
                || (word == "new" && prev_path && i > 1 && m.is_ident(i - 2, "Box"))
                || (word == "from" && prev_path && i > 1 && m.is_ident(i - 2, "String"))
            {
                let what = if prev_path {
                    format!("{}::{word}", m.text(i - 2))
                } else {
                    format!(".{word}(…)")
                };
                emit(
                    i,
                    format!(
                        "`{what}` allocates in hot-path fn `{fname}` (reachable from \
                         `System::step`) — pre-size or reuse buffers outside the \
                         per-cycle loop, {escape}"
                    ),
                    result,
                );
            } else if IO_TYPES.contains(&word)
                || (IO_FNS.contains(&word)
                    && m.tokens
                        .get(i + 1)
                        .is_some_and(|t| t.kind == TokKind::Open(Delim::Paren)))
                || (prev_dot && IO_METHODS.contains(&word))
            {
                emit(
                    i,
                    format!(
                        "`{word}` performs I/O in hot-path fn `{fname}` (reachable from \
                         `System::step`) — simulation code must not touch files or \
                         stdio; move it to the harness, {escape}"
                    ),
                    result,
                );
            }
        } else if opts.pedantic && kind == TokKind::Open(Delim::Bracket) && i > 0 {
            let indexing = matches!(
                m.tokens[i - 1].kind,
                TokKind::Ident | TokKind::Close(Delim::Paren) | TokKind::Close(Delim::Bracket)
            ) && !m.is_punct(i - 1, "#");
            if indexing && !m.is_test_token(i) {
                emit(
                    i,
                    format!(
                        "indexing can panic in hot-path fn `{fname}` (reachable from \
                         `System::step`) — use `get`/checked access, {escape}"
                    ),
                    result,
                );
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> GraphResult {
        let owned: Vec<FileModel> = files.iter().map(|(p, c)| FileModel::new(p, c)).collect();
        let refs: Vec<&FileModel> = owned.iter().collect();
        analyze(&refs, &Options::default())
    }

    const SYSTEM: &str = "\
pub struct System;
impl System {
    pub fn step(&mut self) {
        self.tick();
        helper(self);
    }
    fn tick(&mut self) { }
}
fn helper(_s: &mut System) { }
";

    #[test]
    fn reachability_covers_methods_and_free_fns() {
        let g = run(&[("crates/core/src/system.rs", SYSTEM)]);
        let names: Vec<&str> = g.reachable.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, vec!["step", "tick", "helper"], "{:?}", g.reachable);
        assert!(g.active.is_empty(), "{:#?}", g.active);
    }

    #[test]
    fn allocation_in_transitive_callee_is_flagged() {
        let src = "\
pub struct System;
impl System {
    pub fn step(&mut self) { self.record(); }
    fn record(&mut self) {
        let v = vec![1, 2, 3];
        let s = 3.to_string();
        let _ = (v, s);
    }
}
";
        let g = run(&[("crates/core/src/system.rs", src)]);
        let lines: Vec<usize> = g.active.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![5, 6], "{:#?}", g.active);
    }

    #[test]
    fn unreachable_fns_are_not_checked() {
        let src = "\
pub struct System;
impl System {
    pub fn step(&mut self) { }
    pub fn dump(&self) { let v = vec![1]; let _ = v; }
}
";
        let g = run(&[("crates/core/src/system.rs", src)]);
        assert!(g.active.is_empty(), "{:#?}", g.active);
        assert_eq!(g.reachable.len(), 1);
    }

    #[test]
    fn fn_level_allow_is_a_traversal_boundary() {
        let src = "\
pub struct System;
impl System {
    pub fn step(&mut self) { self.end_quantum(); }
    // asm-lint: allow(R9): quantum boundary — runs once per 5M cycles
    fn end_quantum(&mut self) { self.flush(); }
    fn flush(&mut self) { let v = vec![1]; let _ = v; }
}
";
        let g = run(&[("crates/core/src/system.rs", src)]);
        // end_quantum is reachable but marked boundary; flush is behind
        // the boundary and must not be flagged.
        assert!(g.active.is_empty(), "{:#?}", g.active);
        let names: Vec<(&str, bool)> = g
            .reachable
            .iter()
            .map(|h| (h.name.as_str(), h.boundary))
            .collect();
        assert_eq!(names, vec![("step", false), ("end_quantum", true)]);
    }

    #[test]
    fn line_allow_suppresses_one_leaf() {
        let src = "\
pub struct System;
impl System {
    pub fn step(&mut self) {
        // asm-lint: allow(R9): one-time lazy init, pre-sized
        let v = vec![0u64; 8];
        let w = vec![1u64; 8];
        let _ = (v, w);
    }
}
";
        let g = run(&[("crates/core/src/system.rs", src)]);
        let active: Vec<usize> = g.active.iter().map(|d| d.line).collect();
        assert_eq!(active, vec![6], "{:#?}", g.active);
        assert_eq!(g.suppressed.len(), 1);
    }

    #[test]
    fn panic_and_io_leaves_fire() {
        let src = "\
pub struct System;
impl System {
    pub fn step(&mut self) {
        if bad() { panic!(\"boom\"); }
        let f = File::open(\"x\");
        let _ = f;
    }
}
fn bad() -> bool { false }
";
        let g = run(&[("crates/core/src/system.rs", src)]);
        let lines: Vec<usize> = g.active.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![4, 5], "{:#?}", g.active);
    }

    #[test]
    fn cross_file_method_calls_link_conservatively() {
        let sys = "\
pub struct System;
impl System {
    pub fn run_for(&mut self, cache: &mut Cache) { cache.access(1); }
}
";
        let cache = "\
pub struct Cache;
impl Cache {
    pub fn access(&mut self, addr: u64) -> bool { self.probe(addr) }
    fn probe(&mut self, addr: u64) -> bool { let v = addr.to_string(); !v.is_empty() }
}
";
        let g = run(&[
            ("crates/core/src/system.rs", sys),
            ("crates/cache/src/lib.rs", cache),
        ]);
        let lines: Vec<(String, usize)> = g
            .active
            .iter()
            .map(|d| (d.path.clone(), d.line))
            .collect();
        assert_eq!(lines, vec![("crates/cache/src/lib.rs".to_owned(), 4)]);
        assert_eq!(g.reachable.len(), 3);
    }

    #[test]
    fn method_calls_never_link_to_receiverless_fns() {
        // `.all(…)` here is the iterator adaptor; the workspace free fn
        // `all` (which allocates) must not be dragged into the hot set.
        let sys = "\
pub struct System;
impl System {
    pub fn step(&mut self, bits: &[bool]) -> bool { bits.iter().all(|b| *b) }
}
";
        let suite = "\
pub fn all() -> Vec<u32> { let v = vec![1, 2, 3]; v }
pub struct Suite;
impl Suite {
    pub fn new() -> Self { let _scratch = vec![0u8; 64]; Suite }
}
";
        let g = run(&[
            ("crates/core/src/system.rs", sys),
            ("crates/workloads/src/suite.rs", suite),
        ]);
        assert!(g.active.is_empty(), "{:#?}", g.active);
        assert_eq!(g.reachable.len(), 1, "{:#?}", g.reachable);
    }

    #[test]
    fn assert_macros_stay_legal() {
        let src = "\
pub struct System;
impl System {
    pub fn step(&mut self) {
        assert!(1 + 1 == 2, \"arithmetic holds\");
        debug_assert!(true);
        let x: Option<u32> = None;
        if x.is_none() { }
    }
}
";
        let g = run(&[("crates/core/src/system.rs", src)]);
        assert!(g.active.is_empty(), "{:#?}", g.active);
    }
}

