//! `asm-lint`: a workspace determinism & simulation-safety linter.
//!
//! A repo-specific static-analysis pass over the simulation crates
//! ([`SIM_CRATES`]: `simcore` through `attrib`) plus the harness crates
//! (`experiments`, `bench`). It enforces thirteen rules that
//! `rustc`/`clippy` cannot express for us.
//!
//! Per-file rules (token-stream analysis):
//!
//! - **R1** — no `HashMap`/`HashSet` in simulation code: hash iteration
//!   order is randomized per process and feeds simulated event order.
//!   Use `BTreeMap`/`BTreeSet`.
//! - **R2** — no `unwrap()` and no bare `expect` outside `#[cfg(test)]`:
//!   every panic site in simulation code must state its invariant.
//! - **R3** — no `f64`/`f32` `==`/`!=` comparisons: slowdown and CAR
//!   ratios must be compared with an epsilon or in integer cycle math.
//! - **R4** — no wall-clock or OS entropy (`Instant`, `SystemTime`,
//!   external `rand`, `RandomState`): `SimRng` is the only randomness.
//! - **R5** — numeric `as` casts in billing/accounting arithmetic
//!   (`mech/billing.rs`, `dram/accounting.rs`) must be justified.
//! - **R6** — no `std::thread` and no `std::sync` primitives beyond
//!   `Arc`: the simulator is a pure single-threaded function of its
//!   inputs. Parallelism lives in the harness crates.
//! - **R7** — no `println!`/`print!`/`eprintln!`/`eprint!`/`dbg!`:
//!   experiment stdout is byte-compared across runs.
//! - **R10** — every `unsafe` carries an adjacent `// SAFETY:` comment
//!   stating the invariant that makes it sound, and every site is
//!   registered in the emitted unsafe inventory.
//! - **R11** — harness lock discipline: no `MutexGuard` held across a
//!   call into `Runner::run`/`run_with` (a lock held while dispatching
//!   simulations serializes the pool and risks deadlock).
//! - **R12** — state serialization in simulation crates goes through
//!   `asm_simcore::persist`'s writer/reader: no ad-hoc
//!   `to_le_bytes`/`from_le_bytes` framing outside the persist module
//!   itself. Hand-rolled framing skips the magic/version/checksum
//!   envelope that makes every artefact warn-and-rebuild safe.
//! - **R13** — telemetry and attribution metric names come from the
//!   central registry (`crates/telemetry/src/names.rs`): no inline
//!   dotted metric-name string literals (`"llc.app0.hits"`,
//!   `"attrib.app{i}.{component}"`) in non-test simulation code. Inline
//!   spellings drift out of sync with the registry the telemetry sinks
//!   and the accuracy dashboard join on.
//!
//! Workspace rules (symbol table + call graph, see [`resolve`] and
//! [`callgraph`]):
//!
//! - **R8** — iteration-order taint: `HashMap`/`HashSet`/`RandomState`
//!   reached through `use … as` renames, `pub use` re-exports, `type`
//!   aliases, or struct generic-parameter defaults — the spellings the
//!   lexical rules provably cannot see.
//! - **R9** — hot-path hygiene: no heap allocation, I/O, or panicking
//!   macros in any function reachable from `System::step` /
//!   `System::step_until` / `System::run_for`. A fn-level
//!   `// asm-lint: allow(R9): reason` both suppresses and marks the fn
//!   as a justified quantum boundary (traversal stops there).
//!
//! Every diagnostic carries `path:line`. Intentional violations are
//! suppressed with an allow directive stating a reason:
//!
//! ```text
//! // asm-lint: allow(R5): u32 cycle counts fit f64's 53-bit mantissa
//! ```
//!
//! placed either on the offending line (trailing) or on the line above
//! (standalone). The reason is mandatory by convention; the directive is
//! greppable so audits can review every suppression, and suppressed
//! diagnostics remain visible in the `--json` report.
//!
//! The analysis is a three-layer pipeline, dependency-free because the
//! build environment has no crates.io access:
//!
//! 1. [`tokens`] — span-exact lexer (comments kept out of band);
//! 2. [`parse`] — per-file item model: `use`-trees, type aliases, fn
//!    signatures with brace-matched bodies, unsafe sites, test masking;
//! 3. [`resolve`] / [`callgraph`] — workspace symbol table and a
//!    conservative intra-workspace call graph for R8/R9.

pub mod callgraph;
pub mod jsonout;
pub mod parse;
pub mod resolve;
pub mod rules;
pub mod tokens;

pub use parse::FileModel;
pub use rules::Diagnostic;

use std::path::{Path, PathBuf};

/// One rule's identifier (`R1`..`R11`), as used in allow directives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Hash-ordered collections in simulation state.
    R1,
    /// `unwrap()` / bare `expect` outside tests.
    R2,
    /// Float `==` / `!=` comparisons.
    R3,
    /// Wall-clock or OS entropy in simulation crates.
    R4,
    /// Lossy `as` casts in billing/accounting arithmetic.
    R5,
    /// Threads or synchronisation primitives in simulation crates.
    R6,
    /// `println!`-family printing in simulation crates.
    R7,
    /// Hash-ordered types reached through aliases/re-exports/defaults.
    R8,
    /// Allocation, I/O, or panics on the `System::step` hot path.
    R9,
    /// `unsafe` without an adjacent `// SAFETY:` comment.
    R10,
    /// `MutexGuard` held across `Runner::run*` dispatch.
    R11,
    /// Ad-hoc byte framing outside `simcore/src/persist.rs`.
    R12,
    /// Inline dotted metric-name literals outside the names registry.
    R13,
}

impl RuleId {
    /// All rules, in order.
    pub const ALL: [RuleId; 13] = [
        RuleId::R1,
        RuleId::R2,
        RuleId::R3,
        RuleId::R4,
        RuleId::R5,
        RuleId::R6,
        RuleId::R7,
        RuleId::R8,
        RuleId::R9,
        RuleId::R10,
        RuleId::R11,
        RuleId::R12,
        RuleId::R13,
    ];

    /// Canonical name (`"R1"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RuleId::R1 => "R1",
            RuleId::R2 => "R2",
            RuleId::R3 => "R3",
            RuleId::R4 => "R4",
            RuleId::R5 => "R5",
            RuleId::R6 => "R6",
            RuleId::R7 => "R7",
            RuleId::R8 => "R8",
            RuleId::R9 => "R9",
            RuleId::R10 => "R10",
            RuleId::R11 => "R11",
            RuleId::R12 => "R12",
            RuleId::R13 => "R13",
        }
    }

    /// One-line summary, as printed by `--list-rules`.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::R1 => "no HashMap/HashSet in simulation state (hash iteration order is process-randomized)",
            RuleId::R2 => "no unwrap() or bare expect outside tests (state the invariant)",
            RuleId::R3 => "no f64/f32 ==/!= comparisons (use an epsilon or integer cycle math)",
            RuleId::R4 => "no wall-clock or OS entropy (SimRng is the only randomness)",
            RuleId::R5 => "numeric `as` casts in billing/accounting arithmetic must be justified",
            RuleId::R6 => "no threads or sync primitives beyond Arc in simulation crates",
            RuleId::R7 => "no print macros in simulation crates (stdout is byte-compared)",
            RuleId::R8 => "no hash-ordered types reached through aliases, re-exports, or generic defaults",
            RuleId::R9 => "no heap allocation, I/O, or panic macros reachable from System::step",
            RuleId::R10 => "every unsafe site carries an adjacent // SAFETY: comment",
            RuleId::R11 => "no MutexGuard held across Runner::run*/run_with dispatch",
            RuleId::R12 => "state serialization goes through asm_simcore::persist (no ad-hoc to_le_bytes framing)",
            RuleId::R13 => "metric names come from asm_telemetry::names (no inline dotted-name string literals)",
        }
    }

    /// Parses `"R7"` (case-insensitive, surrounding whitespace ignored).
    #[must_use]
    pub fn parse(s: &str) -> Option<RuleId> {
        match s.trim().to_ascii_uppercase().as_str() {
            "R1" => Some(RuleId::R1),
            "R2" => Some(RuleId::R2),
            "R3" => Some(RuleId::R3),
            "R4" => Some(RuleId::R4),
            "R5" => Some(RuleId::R5),
            "R6" => Some(RuleId::R6),
            "R7" => Some(RuleId::R7),
            "R8" => Some(RuleId::R8),
            "R9" => Some(RuleId::R9),
            "R10" => Some(RuleId::R10),
            "R11" => Some(RuleId::R11),
            "R12" => Some(RuleId::R12),
            "R13" => Some(RuleId::R13),
        _ => None,
        }
    }
}

/// The simulation crates `asm-lint` gates with the full rule set.
/// `vendor/*` shims and the lint crate itself are exempt: they are not
/// simulation code.
pub const SIM_CRATES: &[&str] = &[
    "simcore",
    "cache",
    "dram",
    "cpu",
    "core",
    "workloads",
    "metrics",
    "telemetry",
    "analytic",
    "sampling",
    "attrib",
];

/// The harness crates, linted only for lock discipline (R11): they are
/// allowed to thread, lock, and print — that is their job.
pub const HARNESS_CRATES: &[&str] = &["experiments", "bench"];

/// How a file participates in the analysis, decided from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Simulation code: R1–R10 apply.
    Sim,
    /// Harness code (`experiments`/`bench`): only R11 applies.
    Harness,
}

/// The role a display path implies. Anything outside the harness crates
/// is held to the simulation rules (fixtures and single-file callers get
/// the strict set by default).
#[must_use]
pub fn role_of(path: &str) -> FileRole {
    if HARNESS_CRATES
        .iter()
        .any(|c| path.contains(&format!("crates/{c}/")))
    {
        FileRole::Harness
    } else {
        FileRole::Sim
    }
}

/// Analysis tuning knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Options {
    /// Also flag panicking indexing (`x[i]`) on the R9 hot path. Off by
    /// default: the SoA arenas index heavily behind debug-checked
    /// invariants, so this is an audit mode, not a gate.
    pub pedantic: bool,
}

/// One `unsafe` site in the emitted inventory (R10's ledger).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeRecord {
    /// Display path of the file.
    pub path: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// `block` / `fn` / `impl` / `trait`.
    pub kind: &'static str,
    /// Name of the enclosing fn, if any.
    pub enclosing_fn: Option<String>,
    /// Whether an adjacent `// SAFETY:` comment justifies the site.
    pub has_safety: bool,
}

/// One function in the R9 hot-path reachability set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotFn {
    /// Display path of the defining file.
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Function name.
    pub name: String,
    /// Self type of the enclosing `impl`, if any.
    pub impl_type: Option<String>,
    /// Whether a fn-level `allow(R9)` marks it as a justified boundary
    /// (traversal and leaf checks stop there).
    pub boundary: bool,
}

/// The complete result of a workspace analysis.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Active violations, deduplicated and sorted by (path, line, col,
    /// rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Violations silenced by allow directives — kept visible so audits
    /// and the `--json` report can review every suppression.
    pub suppressed: Vec<Diagnostic>,
    /// Every non-test `unsafe` site, justified or not.
    pub unsafe_inventory: Vec<UnsafeRecord>,
    /// Functions reachable from the `System::step` family.
    pub hot_reachable: Vec<HotFn>,
    /// Number of files analysed.
    pub files: usize,
}

/// Lints one file's contents under a display path, with the per-file
/// rules only (R1–R7, R10, R11 by role). The path matters: R5 only
/// applies to billing/accounting files, and harness paths get R11
/// instead of the simulation set.
///
/// The workspace rules R8/R9 need cross-file symbol and call-graph
/// context; use [`analyze_sources`] or [`run_workspace`] for those.
/// This asymmetry is deliberate and test-pinned: an aliased `HashMap`
/// that `lint_source` misses is exactly what R8 exists to catch.
#[must_use]
pub fn lint_source(display_path: &str, content: &str) -> Vec<Diagnostic> {
    let model = FileModel::new(display_path, content);
    let (active, suppressed) = rules::check(&model, role_of(display_path), &Options::default());
    let (active, _suppressed) = rules::finish(active, suppressed);
    active
}

/// Runs the full three-layer analysis over in-memory `(path, content)`
/// pairs — the workspace walk without the filesystem, used by fixture
/// tests and by [`run_workspace`].
#[must_use]
pub fn analyze_sources(files: &[(String, String)], opts: &Options) -> Analysis {
    let models: Vec<FileModel> = files
        .iter()
        .map(|(path, content)| FileModel::new(path, content))
        .collect();
    let roles: Vec<FileRole> = files.iter().map(|(path, _)| role_of(path)).collect();

    let mut active = Vec::new();
    let mut suppressed = Vec::new();
    let mut inventory = Vec::new();
    for (model, role) in models.iter().zip(&roles) {
        let (a, s) = rules::check(model, *role, opts);
        active.extend(a);
        suppressed.extend(s);
        for u in &model.unsafes {
            if u.is_test {
                continue;
            }
            inventory.push(UnsafeRecord {
                path: model.path.clone(),
                line: u.line + 1,
                col: u.col + 1,
                kind: u.kind.name(),
                enclosing_fn: u.enclosing_fn.clone(),
                has_safety: u.has_safety,
            });
        }
    }

    // Workspace passes over simulation files only.
    let sim_models: Vec<&FileModel> = models
        .iter()
        .zip(&roles)
        .filter(|(_, r)| **r == FileRole::Sim)
        .map(|(m, _)| m)
        .collect();
    let (r8_active, r8_suppressed) = resolve::check_alias_taint(&sim_models);
    active.extend(r8_active);
    suppressed.extend(r8_suppressed);
    let graph = callgraph::analyze(&sim_models, opts);
    active.extend(graph.active);
    suppressed.extend(graph.suppressed);

    let (active, suppressed) = rules::finish(active, suppressed);
    inventory.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    Analysis {
        diagnostics: active,
        suppressed,
        unsafe_inventory: inventory,
        hot_reachable: graph.reachable,
        files: files.len(),
    }
}

/// Walks `<root>/crates/<crate>/{src,benches}` for the simulation and
/// harness crates and runs the full analysis. Paths in diagnostics are
/// relative to `root`. Returns `Err` only for I/O failures (unreadable
/// tree), never for violations.
pub fn run_workspace(root: &Path) -> std::io::Result<Analysis> {
    run_workspace_with(root, &Options::default())
}

/// [`run_workspace`] with explicit [`Options`].
pub fn run_workspace_with(root: &Path, opts: &Options) -> std::io::Result<Analysis> {
    let sources = read_workspace_sources(root)?;
    Ok(analyze_sources(&sources, opts))
}

/// Reads every lintable `(display_path, content)` pair under
/// `<root>/crates/<crate>/{src,benches}` in sorted path order — the
/// I/O half of [`run_workspace`], exposed so the `lint_workspace`
/// bench can separate walk cost from analysis cost.
pub fn read_workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    for krate in SIM_CRATES.iter().chain(HARNESS_CRATES) {
        let crate_dir = root.join("crates").join(krate);
        for sub in ["src", "benches"] {
            let dir = crate_dir.join(sub);
            if dir.is_dir() {
                collect_rs_files(&dir, &mut files)?;
            }
        }
    }
    files.sort();
    if files.is_empty() {
        // A typo'd root must not read as "clean": linting nothing is a
        // configuration error, not a pass.
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!(
                "no simulation sources found under {} — is this the workspace root?",
                root.display()
            ),
        ));
    }
    let mut sources = Vec::with_capacity(files.len());
    for file in files {
        let content = std::fs::read_to_string(&file)?;
        let display = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((display, content));
    }
    Ok(sources)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_routes_r5_by_path() {
        let src = "fn f(x: u64) -> f64 { x as f64 }\n";
        assert!(!lint_source("crates/core/src/mech/billing.rs", src).is_empty());
        assert!(lint_source("crates/core/src/mech/policy.rs", src).is_empty());
    }

    #[test]
    fn sim_crates_list_matches_roadmap() {
        assert_eq!(SIM_CRATES.len(), 11);
    }

    #[test]
    fn harness_paths_get_the_harness_role() {
        assert_eq!(role_of("crates/experiments/src/pool.rs"), FileRole::Harness);
        assert_eq!(role_of("crates/bench/benches/figures.rs"), FileRole::Harness);
        assert_eq!(role_of("crates/core/src/system.rs"), FileRole::Sim);
    }

    #[test]
    fn rule_parse_covers_all_thirteen() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.name()), Some(r));
        }
        assert_eq!(RuleId::ALL.len(), 13);
        assert_eq!(RuleId::parse("r10"), Some(RuleId::R10));
        assert_eq!(RuleId::parse("R14"), None);
    }
}
