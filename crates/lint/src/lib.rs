//! `asm-lint`: a workspace determinism & simulation-safety linter.
//!
//! A repo-specific static-analysis pass over the eight simulation crates
//! (`simcore`, `cache`, `dram`, `cpu`, `core`, `workloads`, `metrics`,
//! `telemetry`). It enforces seven rules that `rustc`/`clippy` cannot
//! express for us:
//!
//! - **R1** — no `HashMap`/`HashSet` in simulation code: hash iteration
//!   order is randomized per process and feeds simulated event order.
//!   Use `BTreeMap`/`BTreeSet`.
//! - **R2** — no `unwrap()` and no bare `expect` outside `#[cfg(test)]`:
//!   every panic site in simulation code must state its invariant.
//! - **R3** — no `f64`/`f32` `==`/`!=` comparisons: slowdown and CAR
//!   ratios must be compared with an epsilon or in integer cycle math.
//! - **R4** — no wall-clock or OS entropy (`Instant`, `SystemTime`,
//!   external `rand`, `RandomState`): `SimRng` is the only randomness.
//! - **R5** — numeric `as` casts in billing/accounting arithmetic
//!   (`mech/billing.rs`, `dram/accounting.rs`) must be justified.
//! - **R6** — no `std::thread` and no `std::sync` primitives beyond
//!   `Arc` (no `Mutex`/`RwLock`/channels/atomics): the simulator is a
//!   pure single-threaded function of its inputs. Parallelism lives in
//!   the harness crates (`experiments`/`bench`), which fan out whole
//!   simulations and merge results in submission order.
//! - **R7** — no `println!`/`print!`/`eprintln!`/`eprint!`/`dbg!`:
//!   experiment stdout is byte-compared across runs and stderr belongs
//!   to the harness; simulation state is exposed through `asm-telemetry`
//!   (counters, series, traces) or returned to the caller.
//!
//! Every diagnostic carries `path:line`. Intentional violations are
//! suppressed with an allow directive stating a reason:
//!
//! ```text
//! // asm-lint: allow(R5): u32 cycle counts fit f64's 53-bit mantissa
//! ```
//!
//! placed either on the offending line (trailing) or on the line above
//! (standalone). The reason is mandatory by convention; the directive is
//! greppable so audits can review every suppression.
//!
//! The analysis is lexical, not syntactic: comments and literal bodies
//! are blanked (byte-aligned) before matching, and `#[cfg(test)]` items
//! are masked, so the rules fire only on live simulation code. This
//! keeps the linter dependency-free — important because the build
//! environment has no crates.io access.

pub mod rules;
pub mod source;

pub use rules::{check, Diagnostic};
pub use source::{RuleId, SourceModel};

use std::path::{Path, PathBuf};

/// The simulation crates `asm-lint` gates. `vendor/*` shims and the lint
/// crate itself are exempt: they are not simulation code.
pub const SIM_CRATES: &[&str] = &[
    "simcore",
    "cache",
    "dram",
    "cpu",
    "core",
    "workloads",
    "metrics",
    "telemetry",
];

/// Lints one file's contents under a display path. The path matters:
/// R5 only applies to billing/accounting files.
#[must_use]
pub fn lint_source(display_path: &str, content: &str) -> Vec<Diagnostic> {
    check(&SourceModel::new(display_path, content))
}

/// Walks `<root>/crates/<sim crate>/src` (plus each crate's `benches/`)
/// and lints every `.rs` file. Paths in diagnostics are relative to
/// `root`. Returns `Err` only for I/O failures (unreadable tree), never
/// for violations.
pub fn run_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut diagnostics = Vec::new();
    let mut files = Vec::new();
    for krate in SIM_CRATES {
        let crate_dir = root.join("crates").join(krate);
        for sub in ["src", "benches"] {
            let dir = crate_dir.join(sub);
            if dir.is_dir() {
                collect_rs_files(&dir, &mut files)?;
            }
        }
    }
    files.sort();
    if files.is_empty() {
        // A typo'd root must not read as "clean": linting nothing is a
        // configuration error, not a pass.
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!(
                "no simulation sources found under {} — is this the workspace root?",
                root.display()
            ),
        ));
    }
    for file in files {
        let content = std::fs::read_to_string(&file)?;
        let display = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        diagnostics.extend(lint_source(&display, &content));
    }
    Ok(diagnostics)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_routes_r5_by_path() {
        let src = "fn f(x: u64) -> f64 { x as f64 }\n";
        assert!(!lint_source("crates/core/src/mech/billing.rs", src).is_empty());
        assert!(lint_source("crates/core/src/mech/policy.rs", src).is_empty());
    }

    #[test]
    fn sim_crates_list_matches_roadmap() {
        assert_eq!(SIM_CRATES.len(), 8);
    }
}
