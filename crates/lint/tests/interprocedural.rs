//! Fixture tests for the workspace-level rules R8–R11: each exercises
//! the positive case, the clean case, and the allow-directive escape,
//! through the same `analyze_sources` entry point the CLI uses.
//!
//! The R8 pair is the acceptance fixture from the v2 rewrite: a hash
//! map laundered through `type Fast = …` in another file, which the
//! per-file v1 rules provably miss and the symbol-resolution layer must
//! catch.

use asm_lint::{analyze_sources, lint_source, Options, RuleId};

fn analyze(files: &[(&str, &str)]) -> asm_lint::Analysis {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, c)| ((*p).to_owned(), (*c).to_owned()))
        .collect();
    analyze_sources(&owned, &Options::default())
}

const R8_ALIASES: &str = include_str!("fixtures/r8_aliases.rs");
const R8_SIM_STATE: &str = include_str!("fixtures/r8_sim_state.rs");

#[test]
fn r8_alias_misses_in_v1_and_catches_in_v2() {
    // The per-file layer (v1 surface: lexical rules only) sees nothing
    // wrong with either file: no literal `HashMap` usage outside a
    // `use`/`type` definition line ever appears in the usage file.
    assert!(
        lint_source("crates/core/src/sim_state.rs", R8_SIM_STATE).is_empty(),
        "the per-file rules must not resolve cross-file aliases"
    );

    // The workspace layer resolves `Fast` -> std::collections::HashMap
    // and flags the simulation-state usage.
    let analysis = analyze(&[
        ("crates/core/src/aliases.rs", R8_ALIASES),
        ("crates/core/src/sim_state.rs", R8_SIM_STATE),
    ]);
    let got: Vec<(String, usize, RuleId)> = analysis
        .diagnostics
        .iter()
        .map(|d| (d.path.clone(), d.line, d.rule))
        .collect();
    assert_eq!(
        got,
        vec![("crates/core/src/sim_state.rs".to_owned(), 6, RuleId::R8)],
        "{:#?}",
        analysis.diagnostics
    );
    assert!(
        analysis.diagnostics[0].message.contains("std::collections::HashMap"),
        "diagnostic names the resolved root: {}",
        analysis.diagnostics[0].message
    );
    // The allow-annotated usage is suppressed but stays auditable.
    let suppressed: Vec<usize> = analysis
        .suppressed
        .iter()
        .filter(|d| d.rule == RuleId::R8)
        .map(|d| d.line)
        .collect();
    assert_eq!(suppressed, vec![13], "{:#?}", analysis.suppressed);
}

#[test]
fn r9_hot_path_allocation_and_boundary() {
    let analysis = analyze(&[(
        "crates/core/src/hot.rs",
        include_str!("fixtures/r9_hot_alloc.rs"),
    )]);
    let got: Vec<(usize, RuleId)> = analysis
        .diagnostics
        .iter()
        .map(|d| (d.line, d.rule))
        .collect();
    // Only `drain`'s collect fires: `end_quantum` is a justified
    // boundary and `dump` is unreachable from `System::step`.
    assert_eq!(got, vec![(14, RuleId::R9)], "{:#?}", analysis.diagnostics);

    // The reachability export covers exactly the per-cycle fns, with the
    // boundary marked.
    let hot: Vec<(&str, bool)> = analysis
        .hot_reachable
        .iter()
        .map(|h| (h.name.as_str(), h.boundary))
        .collect();
    assert_eq!(
        hot,
        vec![("step", false), ("drain", false), ("end_quantum", true)],
        "{:#?}",
        analysis.hot_reachable
    );
}

#[test]
fn r10_unjustified_unsafe_and_inventory() {
    let analysis = analyze(&[(
        "crates/cache/src/scan.rs",
        include_str!("fixtures/r10_unsafe.rs"),
    )]);
    let got: Vec<(usize, RuleId)> = analysis
        .diagnostics
        .iter()
        .map(|d| (d.line, d.rule))
        .collect();
    assert_eq!(got, vec![(10, RuleId::R10)], "{:#?}", analysis.diagnostics);

    // Both non-test unsafe sites appear in the inventory; only the one
    // with an adjacent SAFETY comment is marked justified.
    let inv: Vec<(usize, bool)> = analysis
        .unsafe_inventory
        .iter()
        .map(|u| (u.line, u.has_safety))
        .collect();
    assert_eq!(inv, vec![(6, true), (10, false)], "{:#?}", analysis.unsafe_inventory);
    assert_eq!(
        analysis.unsafe_inventory[0].enclosing_fn.as_deref(),
        Some("justified")
    );
}

#[test]
fn r11_guard_across_runner_dispatch() {
    let analysis = analyze(&[(
        "crates/experiments/src/fixture.rs",
        include_str!("fixtures/r11_lock_across_run.rs"),
    )]);
    let got: Vec<(usize, RuleId)> = analysis
        .diagnostics
        .iter()
        .map(|d| (d.line, d.rule))
        .collect();
    // Only `bad` holds the guard across `.run(`; `good` scopes it and
    // `dropped` releases it explicitly.
    assert_eq!(got, vec![(6, RuleId::R11)], "{:#?}", analysis.diagnostics);
}

#[test]
fn r11_is_harness_scoped() {
    // The same source under a simulation-crate path is R11-clean (locks
    // are already banned wholesale there by R6 — which fires instead).
    let analysis = analyze(&[(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/r11_lock_across_run.rs"),
    )]);
    assert!(
        analysis.diagnostics.iter().all(|d| d.rule != RuleId::R11),
        "{:#?}",
        analysis.diagnostics
    );
    assert!(
        analysis.diagnostics.iter().any(|d| d.rule == RuleId::R6),
        "sim role bans the Mutex itself: {:#?}",
        analysis.diagnostics
    );
}
