//! Fixture: R4 — wall-clock time and OS entropy in simulation code.

use std::time::Instant;

fn measure() -> u128 {
    let start = Instant::now();
    let stamp = std::time::SystemTime::now();
    let _ = stamp;
    start.elapsed().as_nanos()
}

fn duration_is_fine() -> std::time::Duration {
    std::time::Duration::from_millis(5)
}

fn external_rng() -> u64 {
    rand::random()
}
