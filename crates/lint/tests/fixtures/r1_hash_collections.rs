//! Fixture: R1 — hash collections in simulation code.

use std::collections::HashMap;

struct Mshr {
    entries: HashMap<u64, u64>,
}

#[cfg(test)]
mod tests {
    // Test code may hash freely; this must NOT be flagged.
    use std::collections::HashSet;

    fn scratch() -> HashSet<u64> {
        HashSet::new()
    }
}
