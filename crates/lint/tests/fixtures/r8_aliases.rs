//! R8 fixture, definition side: a type alias that hides a hash map
//! behind an innocuous name. `lint_source` (per-file rules only) cannot
//! see through this; the workspace resolution pass must.
// asm-lint: allow(R1): fixture — the lexical rule is silenced so the test isolates R8
pub type Fast = std::collections::HashMap<u64, u64>;

// asm-lint: allow(R1): fixture — the lexical rule is silenced so the test isolates R8
pub type Pool = std::collections::HashSet<u32>;
