//! R13 fixture: inline dotted metric-name literals outside the registry.

fn emit(t: &mut Telemetry, i: usize) {
    t.incr("llc.app0.hits");
    t.series(&format!("app{i}.slowdown"), 1.0);
}

fn allowed(path: &std::path::Path) -> std::path::PathBuf {
    // asm-lint: allow(R13): temp-file suffix, not a metric name
    path.with_extension(format!("tmp.{}", 7))
}

fn clean(t: &mut Telemetry, i: usize) {
    // The registry helper is what the rule steers toward.
    t.incr(&asm_telemetry::names::app_series(i, "hits"));
    let _path = "out/results.csv";
    let _prose = "two words. not a name";
    let _version = "1.2";
    let _single = "slowdown";
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_spell_names_inline() {
        assert_eq!(super::name(0), "llc.app0.hits");
    }
}
