//! R10 fixture: one justified unsafe block, one bare unsafe block, and
//! a test-module unsafe that is exempt.
pub fn justified(xs: &[u64]) -> u64 {
    // SAFETY: index 0 exists — the caller guarantees a non-empty slice
    // and debug builds assert it.
    unsafe { *xs.get_unchecked(0) }
}

pub fn bare(xs: &[u64]) -> u64 {
    unsafe { *xs.get_unchecked(0) }
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let xs = [1u64];
        let _ = unsafe { *xs.get_unchecked(0) };
    }
}
