//! Fixture: R2 — unwrap and bare expect in simulation code.

fn drain(queue: &mut Vec<u64>) -> u64 {
    let first = queue.pop().unwrap();
    let second = queue.pop().expect("oops");
    let third = queue.pop().unwrap_or(0);
    let fourth = queue
        .pop()
        .expect("caller checked the queue holds at least four entries");
    first + second + third + fourth
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u64> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
