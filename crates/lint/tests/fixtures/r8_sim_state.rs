//! R8 fixture, usage side: simulation state keyed by the `Fast` alias
//! defined in `r8_aliases.rs`. Line numbers are pinned by the test.
use crate::aliases::Fast;

pub struct SimState {
    pub table: Fast,
    pub epoch: u64,
}

// An allow-directive usage stays visible in `suppressed`, not active.
pub struct Audited {
    // asm-lint: allow(R8): drained through a sorted Vec before any iteration
    pub side: Fast,
}
