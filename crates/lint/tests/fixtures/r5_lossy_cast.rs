//! Fixture: R5 — numeric casts in billing/accounting arithmetic.
//! Linted under a virtual `billing.rs` path; the same content under any
//! other path must produce no diagnostics.

fn mean(estimates: &[f64]) -> f64 {
    estimates.iter().sum::<f64>() / estimates.len() as f64
}

fn round_down(cycles: f64) -> u64 {
    cycles as u64
}
