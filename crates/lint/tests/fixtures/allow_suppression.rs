//! Fixture: the allow-directive escape hatch. Every violation here is
//! suppressed with a reasoned directive, so linting must be clean.

use std::collections::HashMap; // asm-lint: allow(R1): fixture demonstrates trailing form

fn drain(queue: &mut Vec<u64>) -> u64 {
    // asm-lint: allow(R2): fixture demonstrates the standalone form
    queue.pop().unwrap()
}

fn compare(slowdown: f64) -> bool {
    // asm-lint: allow(R3): fixture demonstrates a multi-line reason that
    // wraps onto a second comment line before the offending code
    slowdown == 1.0
}
