//! R9 fixture: a per-cycle loop whose callee allocates, a justified
//! boundary fn, and an unreachable fn that allocates legally.
pub struct System {
    scratch: Vec<u64>,
}

impl System {
    pub fn step(&mut self) {
        self.drain();
        self.end_quantum();
    }

    fn drain(&mut self) {
        let spilled: Vec<u64> = self.scratch.iter().copied().collect();
        self.scratch.clear();
        let _ = spilled;
    }

    // asm-lint: allow(R9): quantum boundary — runs once per quantum
    fn end_quantum(&mut self) {
        let snapshot = self.scratch.to_vec();
        let _ = snapshot;
    }

    pub fn dump(&self) -> String {
        format!("{} entries", self.scratch.len())
    }
}
