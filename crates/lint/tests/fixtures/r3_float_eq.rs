//! Fixture: R3 — exact float equality in simulation code.

fn degenerate(epoch_cycles: f64, slowdown: f64) -> bool {
    epoch_cycles == 0.0 || slowdown != 1.0
}

fn integer_compare_is_fine(cycles: u64) -> bool {
    cycles == 0
}

fn range_is_fine(x: u64) -> bool {
    (0..10).contains(&x)
}
