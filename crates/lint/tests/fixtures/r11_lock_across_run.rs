//! R11 fixture (harness role): a `MutexGuard` held across a
//! `Runner::run*` dispatch serialises the sweep; dropping first is fine.
pub fn bad(results: &std::sync::Mutex<Vec<u64>>, runner: &Runner) {
    let mut guard = results.lock().expect("results mutex poisoned at collection time");
    guard.push(1);
    runner.run(7);
}

pub fn good(results: &std::sync::Mutex<Vec<u64>>, runner: &Runner) {
    {
        let mut guard = results.lock().expect("results mutex poisoned at collection time");
        guard.push(1);
    }
    runner.run(7);
}

pub fn dropped(results: &std::sync::Mutex<Vec<u64>>, runner: &Runner) {
    let guard = results.lock().expect("results mutex poisoned at collection time");
    drop(guard);
    runner.run_with(7);
}

pub struct Runner;
impl Runner {
    pub fn run(&self, _seed: u64) {}
    pub fn run_with(&self, _seed: u64) {}
}
