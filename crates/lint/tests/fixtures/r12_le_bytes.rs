//! R12 fixture: ad-hoc byte framing outside the persist module.

fn save(version: u32, cycles: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&version.to_le_bytes());
    buf.extend_from_slice(&cycles.to_be_bytes());
    buf
}

fn load(buf: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[..8]);
    u64::from_ne_bytes(b)
}

fn hashing(word: [u8; 8]) -> u64 {
    // asm-lint: allow(R12): word assembly for hashing, not serialization
    u64::from_le_bytes(word)
}

fn clean(cycles: u64) -> String {
    // Serialization through the persist writer (or text formatting) is
    // what the rule steers toward.
    format!("cycles {cycles}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_frame_bytes() {
        assert_eq!(u16::from_le_bytes([1, 0]), 1);
    }
}
