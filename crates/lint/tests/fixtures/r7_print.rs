//! R7 fixture: print macros in simulation code.

fn noisy(x: u64) -> u64 {
    println!("tick {x}");
    eprintln!("debug {x}");
    let y = dbg!(x + 1);
    print!("{y}");
    eprint!("{y}");
    y
}

fn clean(x: u64) -> String {
    // Formatting into a returned value is fine — no stream writes.
    let println = x; // shadowing identifier, not the macro
    format!("{println}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("test chatter is exempt");
    }
}
