//! Fixture: R6 — threads and synchronisation primitives in simulation
//! code. Parallelism belongs to the harness crates (`experiments`/
//! `bench`); the simulator itself must stay single-threaded.

use std::sync::Mutex;
use std::thread;

fn spawn_worker() {
    let h = std::thread::spawn(|| 7);
    let _ = h.join();
}

fn locked_counter(m: &Mutex<u64>) -> u64 {
    *m.lock().expect("fixture lock is never poisoned")
}

fn atomic_counter() -> usize {
    let c = std::sync::atomic::AtomicUsize::new(0);
    c.load(std::sync::atomic::Ordering::SeqCst)
}

fn shared_ownership_is_fine(x: std::sync::Arc<u64>) -> u64 {
    *x
}

#[cfg(test)]
mod tests {
    // Tests may synchronise freely: they are not simulation code.
    use std::thread;

    fn parallel_in_tests_is_fine() {
        thread::yield_now();
    }
}
