//! Property tests for the lexer/parser front end: no input — valid
//! Rust, truncated Rust, or byte noise — may panic the analysis, and
//! every reported span must stay inside the source on char boundaries.
//!
//! The vendored proptest shim draws from a deterministic splitmix64
//! stream, so a failing case reproduces bit-identically everywhere.

use asm_lint::{lint_source, FileModel};
use proptest::prelude::*;

/// Fragment pool for structured "token soup": pieces of real Rust
/// syntax (including the constructs the parser special-cases) that get
/// concatenated in random order, producing unbalanced delimiters,
/// dangling generics, half-open strings, and directive fragments.
const FRAGMENTS: &[&str] = &[
    "fn step(&mut self) {",
    "}",
    "pub type Fast = std::collections::HashMap<u64, u64>;",
    "use crate::aliases::Fast as F;",
    "// asm-lint: allow(R8): reason",
    "// SAFETY: the index is in bounds",
    "unsafe {",
    "#[cfg(test)]",
    "mod tests {",
    "impl System {",
    "let x = \"unterminated",
    "/* block comment",
    "r#\"raw string\"#",
    "'\\u{1F600}'",
    "Vec::<u8>::new()",
    "x.lock().unwrap();",
    "<<",
    ">>",
    "::",
    "€λ漢", // multi-byte identifiers: span math must stay on char boundaries
    "\u{0}\u{1}",
    "b\"bytes\\xff\"",
    "($(",
    "]})",
];

/// The invariants every parse must uphold, regardless of input.
fn check_model(src: &str) {
    let model = FileModel::new("crates/core/src/fuzz.rs", src);
    let mut prev_lo = 0usize;
    for t in &model.tokens {
        prop_assert!(t.lo <= t.hi && t.hi <= src.len(), "span {}..{} out of bounds", t.lo, t.hi);
        prop_assert!(src.is_char_boundary(t.lo) && src.is_char_boundary(t.hi));
        prop_assert!(t.lo >= prev_lo, "tokens out of source order");
        prev_lo = t.lo;
    }
    for c in &model.comments {
        prop_assert!(c.lo <= c.hi && c.hi <= src.len());
        prop_assert!(src.is_char_boundary(c.lo) && src.is_char_boundary(c.hi));
        prop_assert!(c.line <= c.end_line);
    }
    prop_assert_eq!(model.match_of.len(), model.tokens.len());
    for (i, &m) in model.match_of.iter().enumerate() {
        prop_assert!(m < model.tokens.len(), "match_of[{}] dangles", i);
    }
    // The full per-file rule set must not panic either.
    let _ = lint_source("crates/core/src/fuzz.rs", src);
    let _ = lint_source("crates/experiments/src/fuzz.rs", src);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic(words in prop::collection::vec(0u16..256, 0..400)) {
        let bytes: Vec<u8> = words.iter().map(|&w| w as u8).collect();
        let src = String::from_utf8_lossy(&bytes).into_owned();
        check_model(&src);
    }

    #[test]
    fn token_soup_never_panics(picks in prop::collection::vec(0usize..24, 0..40), seps in prop::collection::vec(0u8..3, 0..40)) {
        let mut src = String::new();
        for (i, &p) in picks.iter().enumerate() {
            src.push_str(FRAGMENTS[p % FRAGMENTS.len()]);
            src.push(match seps.get(i).copied().unwrap_or(0) {
                0 => '\n',
                1 => ' ',
                _ => '\t',
            });
        }
        check_model(&src);
    }
}
