//! Fixture tests: one source file per rule under `tests/fixtures/`,
//! linted through the public API with exact expected diagnostics, plus
//! the allow-directive suppression fixture.
//!
//! These tests are the reintroduction guard the acceptance criteria ask
//! for: each fixture deliberately contains the violation its rule bans,
//! and the assertions pin the `file:line` the linter must report.

use asm_lint::{lint_source, RuleId};

fn lines_of(path: &str, content: &str) -> Vec<(usize, RuleId)> {
    lint_source(path, content)
        .into_iter()
        .map(|d| (d.line, d.rule))
        .collect()
}

#[test]
fn r1_hash_collections_fixture() {
    let src = include_str!("fixtures/r1_hash_collections.rs");
    let diags = lint_source("crates/core/src/fixture.rs", src);
    assert_eq!(
        diags.iter().map(|d| (d.line, d.rule)).collect::<Vec<_>>(),
        vec![(3, RuleId::R1), (6, RuleId::R1)],
        "{diags:#?}"
    );
    // Exact rendering of the first diagnostic, as the CLI prints it.
    assert_eq!(
        diags[0].to_string(),
        "crates/core/src/fixture.rs:3: [R1] simulation code uses `HashMap` \
         — iteration order is process-randomized and can reorder simulated \
         events; use `BTreeMap`/`BTreeSet` or an explicitly sorted drain"
    );
}

#[test]
fn r2_unwrap_fixture() {
    let src = include_str!("fixtures/r2_unwrap.rs");
    let got = lines_of("crates/dram/src/fixture.rs", src);
    // Line 4: unwrap(). Line 5: bare expect("oops"). unwrap_or and the
    // long-message expect are clean; the test module is exempt.
    assert_eq!(got, vec![(4, RuleId::R2), (5, RuleId::R2)]);
}

#[test]
fn r3_float_eq_fixture() {
    let src = include_str!("fixtures/r3_float_eq.rs");
    let got = lines_of("crates/core/src/fixture.rs", src);
    // Both comparisons share line 4; integer == and ranges are clean.
    assert_eq!(got, vec![(4, RuleId::R3), (4, RuleId::R3)]);
}

#[test]
fn r4_entropy_fixture() {
    let src = include_str!("fixtures/r4_entropy.rs");
    let got = lines_of("crates/simcore/src/fixture.rs", src);
    // use Instant (3), Instant::now (6), SystemTime::now (7),
    // rand::random (17); Duration stays legal.
    assert_eq!(
        got,
        vec![
            (3, RuleId::R4),
            (6, RuleId::R4),
            (7, RuleId::R4),
            (17, RuleId::R4),
        ]
    );
}

#[test]
fn r5_lossy_cast_fixture_is_path_scoped() {
    let src = include_str!("fixtures/r5_lossy_cast.rs");
    // Under a billing path both casts fire...
    let got = lines_of("crates/core/src/mech/billing.rs", src);
    assert_eq!(got, vec![(6, RuleId::R5), (10, RuleId::R5)]);
    // ... and under the accounting path too.
    let got = lines_of("crates/dram/src/accounting.rs", src);
    assert_eq!(got, vec![(6, RuleId::R5), (10, RuleId::R5)]);
    // Identical content anywhere else is clean: R5 scopes by path.
    assert!(lines_of("crates/dram/src/bank.rs", src).is_empty());
}

#[test]
fn r6_thread_sync_fixture() {
    let src = include_str!("fixtures/r6_thread_sync.rs");
    let diags = lint_source("crates/simcore/src/fixture.rs", src);
    // use Mutex (5), use std::thread (6), thread::spawn (9), Mutex in a
    // signature (13), AtomicUsize via std::sync::atomic (18), Ordering via
    // std::sync::atomic (19). `Arc` stays legal and the test module is
    // exempt.
    assert_eq!(
        diags.iter().map(|d| (d.line, d.rule)).collect::<Vec<_>>(),
        vec![
            (5, RuleId::R6),
            (6, RuleId::R6),
            (9, RuleId::R6),
            (13, RuleId::R6),
            (18, RuleId::R6),
            (19, RuleId::R6),
        ],
        "{diags:#?}"
    );
    // Exact rendering of the thread diagnostic, as the CLI prints it.
    assert_eq!(
        diags[1].to_string(),
        "crates/simcore/src/fixture.rs:6: [R6] `std::thread` in simulation \
         code — the simulator must stay single-threaded; parallelism lives \
         in the harness crates (`experiments`/`bench`)"
    );
}

#[test]
fn r7_print_fixture() {
    let src = include_str!("fixtures/r7_print.rs");
    let diags = lint_source("crates/telemetry/src/fixture.rs", src);
    // println (4), eprintln (5), dbg (6), print (7), eprint (8); the
    // shadowing identifier and `format!` are clean, tests are exempt.
    assert_eq!(
        diags.iter().map(|d| (d.line, d.rule)).collect::<Vec<_>>(),
        vec![
            (4, RuleId::R7),
            (5, RuleId::R7),
            (6, RuleId::R7),
            (7, RuleId::R7),
            (8, RuleId::R7),
        ],
        "{diags:#?}"
    );
    // Exact rendering, as the CLI prints it.
    assert_eq!(
        diags[0].to_string(),
        "crates/telemetry/src/fixture.rs:4: [R7] `println!` in simulation \
         code — stdout/stderr must stay reserved for the harness (tables \
         are byte-compared across runs); record state via `asm-telemetry` \
         counters/series/traces or return it to the caller"
    );
}

#[test]
fn r12_le_bytes_fixture() {
    let src = include_str!("fixtures/r12_le_bytes.rs");
    // to_le_bytes (5), to_be_bytes (6), from_ne_bytes (13); the allowed
    // hashing site and `format!` are clean, tests are exempt.
    let got = lines_of("crates/core/src/fixture.rs", src);
    assert_eq!(
        got,
        vec![(5, RuleId::R12), (6, RuleId::R12), (13, RuleId::R12)]
    );
    // The persist module itself is the one place allowed to frame bytes.
    assert!(
        lint_source("crates/simcore/src/persist.rs", src).is_empty(),
        "persist.rs owns the framing primitives"
    );
}

#[test]
fn r13_metric_names_fixture() {
    let src = include_str!("fixtures/r13_metric_names.rs");
    // Inline literal (4) and format-hole literal (5); the allow-directive
    // site, registry call, path/prose/version/single-segment strings, and
    // the test module are all clean.
    let got = lines_of("crates/cache/src/fixture.rs", src);
    assert_eq!(got, vec![(4, RuleId::R13), (5, RuleId::R13)]);
    // The names registry itself is the one place allowed to spell names.
    assert!(
        lint_source("crates/telemetry/src/names.rs", src).is_empty(),
        "names.rs owns the metric-name spellings"
    );
}

#[test]
fn allow_directives_suppress_every_rule_form() {
    let src = include_str!("fixtures/allow_suppression.rs");
    let diags = lint_source("crates/core/src/fixture.rs", src);
    assert!(
        diags.is_empty(),
        "reasoned allow directives must suppress: {diags:#?}"
    );
}

#[test]
fn stripping_the_directive_resurfaces_the_violation() {
    // The escape hatch must be load-bearing: deleting the directive from
    // the suppression fixture brings the diagnostics back.
    let src = include_str!("fixtures/allow_suppression.rs");
    let stripped: String = src
        .lines()
        .map(|l| {
            let without = match l.find("// asm-lint:") {
                Some(i) => &l[..i],
                None => l,
            };
            format!("{without}\n")
        })
        .collect();
    let got = lines_of("crates/core/src/fixture.rs", &stripped);
    let rules: Vec<RuleId> = got.iter().map(|&(_, r)| r).collect();
    assert_eq!(rules, vec![RuleId::R1, RuleId::R2, RuleId::R3], "{got:?}");
}

#[test]
fn workspace_is_clean() {
    // The sweep half of the tentpole, pinned as a test: the real
    // simulation crates must satisfy R1-R13. CARGO_MANIFEST_DIR is
    // crates/lint; the workspace root is two levels up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels below the workspace root")
        .to_path_buf();
    let analysis = asm_lint::run_workspace(&root).expect("workspace tree is readable");
    assert!(
        analysis.diagnostics.is_empty(),
        "workspace has lint violations: {:#?}",
        analysis.diagnostics
    );
    // The three-layer analysis must actually have seen the workspace: the
    // unsafe inventory is non-empty (flat tag arenas use unchecked reads)
    // and the hot-path reachability set contains `System::step`.
    assert!(
        analysis
            .hot_reachable
            .iter()
            .any(|h| h.name == "step" && h.impl_type.as_deref() == Some("System")),
        "System::step missing from hot-path reachability: {:#?}",
        analysis.hot_reachable
    );
}
