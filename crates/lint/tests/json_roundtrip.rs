//! Round-trips the `--json` report through the dependency-free JSON
//! parser in `asm-telemetry`, pinning the `asm-lint/2` schema shape.
//!
//! Two sources feed the check: a synthetic fixture analysis where every
//! array is non-empty, and the real workspace tree (which also gates
//! the <1s whole-workspace wall-clock budget — the `test` profile is
//! optimized, so the bound is meaningful here, not just in the bench).

use std::path::PathBuf;

use asm_lint::{analyze_sources, jsonout, run_workspace, Options};
use asm_telemetry::json::{parse, JsonValue};

fn field<'a>(v: &'a JsonValue, key: &str) -> &'a JsonValue {
    v.get(key).unwrap_or_else(|| panic!("missing field `{key}`"))
}

fn arr<'a>(v: &'a JsonValue, key: &str) -> &'a [JsonValue] {
    field(v, key)
        .as_arr()
        .unwrap_or_else(|| panic!("field `{key}` is not an array"))
}

fn check_diag_shape(d: &JsonValue, ctx: &str) {
    assert!(field(d, "rule").as_str().is_some_and(|r| r.starts_with('R')), "{ctx}");
    assert!(field(d, "path").as_str().is_some(), "{ctx}");
    assert!(field(d, "line").as_num().is_some_and(|n| n >= 1.0), "{ctx}");
    assert!(field(d, "col").as_num().is_some_and(|n| n >= 1.0), "{ctx}");
    assert!(field(d, "message").as_str().is_some_and(|m| !m.is_empty()), "{ctx}");
    assert!(matches!(field(d, "allowed"), JsonValue::Bool(_)), "{ctx}");
}

#[test]
fn fixture_report_round_trips_with_every_array_populated() {
    let files: Vec<(String, String)> = [
        ("crates/core/src/aliases.rs", include_str!("fixtures/r8_aliases.rs")),
        ("crates/core/src/sim_state.rs", include_str!("fixtures/r8_sim_state.rs")),
        ("crates/core/src/hot.rs", include_str!("fixtures/r9_hot_alloc.rs")),
        ("crates/cache/src/scan.rs", include_str!("fixtures/r10_unsafe.rs")),
        (
            "crates/experiments/src/fixture.rs",
            include_str!("fixtures/r11_lock_across_run.rs"),
        ),
    ]
    .into_iter()
    .map(|(p, c)| (p.to_owned(), c.to_owned()))
    .collect();
    let analysis = analyze_sources(&files, &Options::default());
    assert!(!analysis.diagnostics.is_empty());
    assert!(!analysis.suppressed.is_empty());
    assert!(!analysis.unsafe_inventory.is_empty());
    assert!(!analysis.hot_reachable.is_empty());

    let doc = parse(&jsonout::render(&analysis)).expect("report is valid RFC 8259 JSON");

    assert_eq!(field(&doc, "schema").as_str(), Some("asm-lint/2"));
    let rules: Vec<&str> = arr(&doc, "rules").iter().filter_map(JsonValue::as_str).collect();
    assert_eq!(rules.first().copied(), Some("R1"));
    assert_eq!(rules.last().copied(), Some("R13"));
    assert_eq!(rules.len(), 13);
    assert_eq!(field(&doc, "files").as_num(), Some(files.len() as f64));

    let diags = arr(&doc, "diagnostics");
    assert_eq!(diags.len(), analysis.diagnostics.len());
    for (d, orig) in diags.iter().zip(&analysis.diagnostics) {
        check_diag_shape(d, "diagnostics");
        assert_eq!(field(d, "rule").as_str(), Some(orig.rule.name()));
        assert_eq!(field(d, "line").as_num(), Some(orig.line as f64));
        assert_eq!(field(d, "message").as_str(), Some(orig.message.as_str()));
        assert!(matches!(field(d, "allowed"), JsonValue::Bool(false)));
    }
    for d in arr(&doc, "suppressed") {
        check_diag_shape(d, "suppressed");
        assert!(matches!(field(d, "allowed"), JsonValue::Bool(true)));
    }

    let inv = arr(&doc, "unsafe_inventory");
    assert_eq!(inv.len(), analysis.unsafe_inventory.len());
    for (u, orig) in inv.iter().zip(&analysis.unsafe_inventory) {
        assert_eq!(field(u, "path").as_str(), Some(orig.path.as_str()));
        assert_eq!(field(u, "line").as_num(), Some(orig.line as f64));
        assert_eq!(field(u, "kind").as_str(), Some(orig.kind));
        match (&orig.enclosing_fn, field(u, "fn")) {
            (Some(name), v) => assert_eq!(v.as_str(), Some(name.as_str())),
            (None, JsonValue::Null) => {}
            (None, other) => panic!("fn should be null, got {other:?}"),
        }
        assert!(matches!(field(u, "has_safety"), JsonValue::Bool(b) if *b == orig.has_safety));
    }

    let hot = arr(&doc, "hot_reachable");
    assert_eq!(hot.len(), analysis.hot_reachable.len());
    for (h, orig) in hot.iter().zip(&analysis.hot_reachable) {
        assert_eq!(field(h, "fn").as_str(), Some(orig.name.as_str()));
        assert_eq!(field(h, "path").as_str(), Some(orig.path.as_str()));
        assert_eq!(field(h, "line").as_num(), Some(orig.line as f64));
        assert!(matches!(field(h, "boundary"), JsonValue::Bool(b) if *b == orig.boundary));
    }
}

#[test]
fn workspace_report_round_trips_and_meets_budget() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("lint crate lives two levels under the workspace root")
        .to_path_buf();

    let start = std::time::Instant::now();
    let analysis = run_workspace(&root).expect("workspace tree is readable");
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_millis() < 1000,
        "whole-workspace lint budget is <1s, took {elapsed:?}"
    );

    let doc = parse(&jsonout::render(&analysis)).expect("report is valid RFC 8259 JSON");
    assert_eq!(field(&doc, "schema").as_str(), Some("asm-lint/2"));
    assert!(
        arr(&doc, "diagnostics").is_empty(),
        "the repo lints clean: {:#?}",
        analysis.diagnostics
    );
    for d in arr(&doc, "suppressed") {
        check_diag_shape(d, "workspace suppressed");
    }
    // Every unsafe site in the tree carries a SAFETY justification.
    let inv = arr(&doc, "unsafe_inventory");
    assert!(!inv.is_empty(), "the SoA tag arenas contain unsafe sites");
    for u in inv {
        assert!(
            matches!(field(u, "has_safety"), JsonValue::Bool(true)),
            "unjustified unsafe at {}:{}",
            field(u, "path").as_str().unwrap_or("?"),
            field(u, "line").as_num().unwrap_or(0.0)
        );
    }
    // The hot set is anchored at System::step.
    assert!(
        arr(&doc, "hot_reachable").iter().any(|h| {
            field(h, "fn").as_str() == Some("step")
                && field(h, "impl").as_str() == Some("System")
        }),
        "System::step missing from hot_reachable"
    );
}
