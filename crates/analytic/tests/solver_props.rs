//! Property tests of the analytic solver's determinism contract:
//!
//! 1. **Bitwise determinism** — solving the same mix twice, on fresh or
//!    reused solvers, yields bit-identical slowdowns.
//! 2. **Bitwise permutation invariance** — the solve iterates in a
//!    canonical profile-key order internally, so shuffling the mix only
//!    permutes the outputs, bit for bit. This is what makes the
//!    harness's `--jobs` fan-out byte-identical: work order cannot leak
//!    into results.
//! 3. **Physical sanity** — slowdowns are finite and ≥ 1.

use asm_analytic::{AnalyticConfig, MixSolver, ProfileParams, ReuseProfile};
use asm_core::SystemConfig;
use asm_workloads::suite;
use proptest::prelude::*;

/// The full suite as extracted profiles (done once; extraction itself is
/// pinned deterministic by `crates/analytic/src/profile.rs` tests).
fn profiles() -> &'static Vec<ReuseProfile> {
    static CACHE: std::sync::OnceLock<Vec<ReuseProfile>> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| {
        let params = ProfileParams::from_system(&SystemConfig::default());
        suite::all()
            .iter()
            .map(|p| ReuseProfile::extract(p, &params))
            .collect()
    })
}

fn cfg() -> AnalyticConfig {
    AnalyticConfig::from_system(&SystemConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solve_is_bitwise_deterministic_across_solver_reuse(
        mix in prop::collection::vec(0usize..12, 1..6),
    ) {
        let all = profiles();
        let apps: Vec<&ReuseProfile> = mix.iter().map(|&i| &all[i % all.len()]).collect();
        let mut fresh = MixSolver::new(cfg());
        let mut reused = MixSolver::new(cfg());
        // Dirty the reused solver with a different mix first.
        reused.solve(&[&all[0]]);
        let a = fresh.run(&apps);
        let b = reused.run(&apps);
        for i in 0..apps.len() {
            prop_assert_eq!(a.slowdowns[i].to_bits(), b.slowdowns[i].to_bits());
            prop_assert_eq!(a.cpi_shared[i].to_bits(), b.cpi_shared[i].to_bits());
            prop_assert_eq!(a.miss_shared[i].to_bits(), b.miss_shared[i].to_bits());
        }
    }

    #[test]
    fn permutation_only_permutes_results_bitwise(
        mix in prop::collection::vec(0usize..12, 2..6),
        rot in 1usize..5,
    ) {
        let all = profiles();
        let apps: Vec<&ReuseProfile> = mix.iter().map(|&i| &all[i % all.len()]).collect();
        let n = apps.len();
        let rot = rot % n;
        let rotated: Vec<&ReuseProfile> =
            (0..n).map(|i| apps[(i + rot) % n]).collect();
        let mut s = MixSolver::new(cfg());
        let fwd = s.run(&apps);
        let perm = s.run(&rotated);
        for i in 0..n {
            // apps[(i + rot) % n] sits at slot i of the rotated solve.
            prop_assert_eq!(
                fwd.slowdowns[(i + rot) % n].to_bits(),
                perm.slowdowns[i].to_bits(),
                "slot {} of rotation {}", i, rot
            );
        }
    }

    #[test]
    fn slowdowns_are_finite_and_at_least_one(
        mix in prop::collection::vec(0usize..12, 1..6),
    ) {
        let all = profiles();
        let apps: Vec<&ReuseProfile> = mix.iter().map(|&i| &all[i % all.len()]).collect();
        let mut s = MixSolver::new(cfg());
        let sol = s.run(&apps);
        for i in 0..apps.len() {
            prop_assert!(sol.slowdowns[i].is_finite());
            prop_assert!(sol.slowdowns[i] >= 1.0);
            prop_assert!(sol.cpi_shared[i] > 0.0);
            prop_assert!((0.0..=1.0).contains(&sol.miss_shared[i]));
        }
    }
}
