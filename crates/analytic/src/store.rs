//! Disk cache of [`ReuseProfile`]s: the `AloneCache` pattern, analytic
//! edition.
//!
//! Same discipline as the cycle tier's alone-run cache (PR 3): a versioned
//! magic header, a strict parser that rejects anything malformed, and
//! staleness detection by fingerprint — an entry whose key does not match
//! the current (source profile, parameters, algorithm) fingerprint is
//! simply re-extracted, so a cache file from an older binary can never
//! change results, only fail to speed things up.
//!
//! The payload is **integers only** (counters and bucket counts). The
//! floating-point tail/footprint curves are derived and recomputed on
//! load, so a loaded profile is bitwise identical to a freshly extracted
//! one (pinned by tests).

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use asm_cpu::AppProfile;
use asm_simcore::persist::{self, PersistError};

use crate::profile::{bucket_bounds, profile_key, ProfileParams, ProfileParts, ReuseProfile};

/// Format name of the profile cache; bump [`PROFILE_CACHE_VERSION`] on
/// any format change.
pub const PROFILE_CACHE_NAME: &str = "asm-reuse-profile";

/// Version of [`PROFILE_CACHE_NAME`]'s text format.
pub const PROFILE_CACHE_VERSION: u32 = 1;

/// A set of extracted profiles, keyed by workload name.
///
/// The store is a plain map — deliberately no interior mutability. The
/// harness populates it *before* fanning mixes across worker threads and
/// then shares it read-only (`Arc<ProfileStore>`), so the analytic tier
/// needs no locks at all.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileStore {
    entries: BTreeMap<String, ReuseProfile>,
}

impl ProfileStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached profiles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a profile by workload name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&ReuseProfile> {
        self.entries.get(name)
    }

    /// Inserts (or replaces) a profile under its workload name.
    pub fn put(&mut self, profile: ReuseProfile) {
        self.entries.insert(profile.name().to_owned(), profile);
    }

    /// Returns the profile for `profile`, extracting it if the store has
    /// no entry — or only a *stale* entry (fingerprint mismatch: the
    /// source model, the parameters or the algorithm changed).
    pub fn ensure(&mut self, profile: &AppProfile, params: &ProfileParams) -> &ReuseProfile {
        let key = profile_key(profile, params);
        let fresh = self
            .entries
            .get(profile.name())
            .is_some_and(|e| e.key() == key);
        if !fresh {
            self.put(ReuseProfile::extract(profile, params));
        }
        self.entries
            .get(profile.name())
            .expect("entry inserted above")
    }

    /// Renders the store in the versioned text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&persist::text_header(
            PROFILE_CACHE_NAME,
            PROFILE_CACHE_VERSION,
        ));
        out.push('\n');
        out.push_str(&format!("profiles {}\n", self.entries.len()));
        for entry in self.entries.values() {
            let p = entry.to_parts();
            out.push_str(&format!("profile {}\n", p.name));
            out.push_str(&format!("key {:016x}\n", p.key));
            out.push_str(&format!("ops {}\n", p.ops));
            out.push_str(&format!("llc {}\n", p.llc));
            out.push_str(&format!("writes {}\n", p.writes));
            out.push_str(&format!("seq {}\n", p.seq));
            out.push_str(&format!("cold {}\n", p.cold));
            out.push_str(&format!("lines {}\n", p.lines_touched));
            out.push_str(&format!("mpk {}\n", p.mem_per_kilo));
            out.push_str(&format!("mlp {}\n", p.mlp));
            out.push_str(&format!("ws {}\n", p.working_set_lines));
            let nonzero = p.counts.iter().filter(|&&c| c > 0).count();
            out.push_str(&format!("buckets {nonzero}\n"));
            let bounds = bucket_bounds();
            for (k, &c) in p.counts.iter().enumerate() {
                if c > 0 {
                    out.push_str(&format!("{} {}\n", bounds[k], c));
                }
            }
            out.push_str("end\n");
        }
        out
    }

    /// Parses a store from the text format. The versioned header goes
    /// through [`persist::check_text_header`], so a stale file reports as
    /// [`PersistError::StaleVersion`] rather than generic corruption.
    ///
    /// # Errors
    ///
    /// Returns the first problem found: wrong or stale header, malformed
    /// field, inconsistent counters, unknown bucket bound, missing
    /// terminator, or trailing garbage.
    pub fn parse(text: &str) -> Result<Self, PersistError> {
        let body = persist::check_text_header(text, PROFILE_CACHE_NAME, PROFILE_CACHE_VERSION)?;
        Self::parse_body(body).map_err(PersistError::Corrupt)
    }

    fn parse_body(body: &str) -> Result<Self, String> {
        let mut lines = body.lines();
        let count: usize = parse_field(lines.next(), "profiles")?;
        let bounds = bucket_bounds();
        let mut store = ProfileStore::new();
        for _ in 0..count {
            let name: String = parse_field(lines.next(), "profile")?;
            let key = u64::from_str_radix(&parse_field::<String>(lines.next(), "key")?, 16)
                .map_err(|e| format!("profile `{name}`: bad key: {e}"))?;
            let ops = parse_field(lines.next(), "ops")?;
            let llc = parse_field(lines.next(), "llc")?;
            let writes = parse_field(lines.next(), "writes")?;
            let seq = parse_field(lines.next(), "seq")?;
            let cold = parse_field(lines.next(), "cold")?;
            let lines_touched = parse_field(lines.next(), "lines")?;
            let mem_per_kilo = parse_field(lines.next(), "mpk")?;
            let mlp = parse_field(lines.next(), "mlp")?;
            let working_set_lines = parse_field(lines.next(), "ws")?;
            let buckets: usize = parse_field(lines.next(), "buckets")?;
            let mut counts = vec![0u64; bounds.len()];
            for _ in 0..buckets {
                let line = lines.next().ok_or("truncated bucket list")?;
                let (b, c) = line
                    .split_once(' ')
                    .ok_or_else(|| format!("malformed bucket line `{line}`"))?;
                let bound: u64 = b.parse().map_err(|e| format!("bad bucket bound: {e}"))?;
                let k = bounds
                    .binary_search(&bound)
                    .map_err(|_| format!("bound {bound} is not on the canonical grid"))?;
                counts[k] = c.parse().map_err(|e| format!("bad bucket count: {e}"))?;
            }
            if lines.next() != Some("end") {
                return Err(format!("profile `{name}`: missing `end` terminator"));
            }
            store.put(ReuseProfile::from_parts(ProfileParts {
                name,
                key,
                ops,
                llc,
                writes,
                seq,
                cold,
                lines_touched,
                mem_per_kilo,
                mlp,
                working_set_lines,
                counts,
            })?);
        }
        if let Some(extra) = lines.next() {
            return Err(format!("trailing content after last profile: `{extra}`"));
        }
        if store.len() != count {
            return Err(format!(
                "duplicate profile names: header said {count}, parsed {}",
                store.len()
            ));
        }
        Ok(store)
    }

    /// Writes the store to `path` atomically (temp file + rename, via
    /// [`persist::write_atomic`]): a reader racing the write sees either
    /// the old store or the new one, never a torn file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_to(&self, path: &Path) -> io::Result<()> {
        persist::write_atomic(path, self.to_text().as_bytes())
    }

    /// Reads a store previously written by [`Self::save_to`] under the
    /// workspace-wide warn-and-rebuild policy
    /// ([`persist::load_or_rebuild`]): a missing file starts empty
    /// silently; an unreadable, stale, or corrupt file starts empty with
    /// a warning string the caller surfaces — a bad cache file must never
    /// change results, only fail to speed things up.
    #[must_use]
    pub fn load_or_warn(path: &Path) -> (Self, Option<String>) {
        let (store, warning) = persist::load_or_rebuild(path, |bytes| {
            let text = std::str::from_utf8(bytes)
                .map_err(|_| PersistError::Corrupt("cache file is not UTF-8".to_owned()))?;
            Self::parse(text)
        });
        (store.unwrap_or_default(), warning)
    }
}

/// Parses one `label value` line, naming the field in errors.
fn parse_field<T: std::str::FromStr>(line: Option<&str>, label: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let line = line.ok_or_else(|| format!("missing `{label}` line"))?;
    let (head, value) = line
        .split_once(' ')
        .ok_or_else(|| format!("malformed `{label}` line: `{line}`"))?;
    if head != label {
        return Err(format!("expected `{label}` line, found `{line}`"));
    }
    value
        .parse()
        .map_err(|e| format!("bad `{label}` value `{value}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ProfileStore {
        let params = ProfileParams::default();
        let mut store = ProfileStore::new();
        for (name, mpk, ws, run) in [("alpha", 50, 1u64 << 14, 8u32), ("beta", 110, 1 << 16, 64)] {
            let p = AppProfile::builder(name)
                .mem_per_kilo(mpk)
                .working_set_lines(ws)
                .hot_lines(ws / 16)
                .hot_frac(0.4)
                .seq_run(run)
                .build();
            store.ensure(&p, &params);
        }
        store
    }

    #[test]
    fn round_trip_is_bitwise_identical() {
        let store = sample_store();
        let text = store.to_text();
        let back = ProfileStore::parse(&text).expect("parse own output");
        assert_eq!(store, back);
        // And the re-rendered text is byte-identical.
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn ensure_hits_fresh_entries_and_replaces_stale_ones() {
        let params = ProfileParams::default();
        let mut store = ProfileStore::new();
        let p = AppProfile::builder("w")
            .mem_per_kilo(40)
            .working_set_lines(1 << 12)
            .build();
        let key = store.ensure(&p, &params).key();
        assert_eq!(store.ensure(&p, &params).key(), key);
        assert_eq!(store.len(), 1);
        // Same name, different parameters: the old entry is stale.
        let other = ProfileParams {
            stream_seed: 99,
            ..params
        };
        let key2 = store.ensure(&p, &other).key();
        assert_ne!(key, key2);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn wrong_header_is_rejected() {
        assert!(ProfileStore::parse("asm-reuse-profile v0\nprofiles 0\n").is_err());
        assert!(ProfileStore::parse("").is_err());
        assert!(ProfileStore::parse("garbage\n").is_err());
    }

    #[test]
    fn corrupt_or_truncated_files_are_rejected() {
        let text = sample_store().to_text();
        // Truncate mid-profile.
        let cut = text.len() / 2;
        assert!(ProfileStore::parse(&text[..cut]).is_err());
        // Flip a field label.
        let bad = text.replacen("ops ", "oops ", 1);
        assert!(ProfileStore::parse(&bad).is_err());
        // Off-grid bucket bound.
        let bad = text.replacen("\n1 ", "\n5 ", 1);
        if bad != text {
            assert!(ProfileStore::parse(&bad).is_err());
        }
        // Trailing garbage.
        let bad = format!("{text}junk\n");
        assert!(ProfileStore::parse(&bad).is_err());
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let store = sample_store();
        let dir = std::env::temp_dir();
        let path = dir.join("asm_reuse_profile_store_test.txt");
        store.save_to(&path).expect("save");
        let (back, warning) = ProfileStore::load_or_warn(&path);
        assert_eq!(warning, None);
        assert_eq!(store, back);

        // Corrupt file: empty store plus a warning naming the file.
        std::fs::write(&path, "garbage\n").expect("write");
        let (empty, warning) = ProfileStore::load_or_warn(&path);
        assert!(empty.is_empty());
        assert!(warning.expect("warning").contains("asm_reuse_profile_store_test"));

        // Missing file: silent empty start.
        std::fs::remove_file(&path).ok();
        let (empty, warning) = ProfileStore::load_or_warn(&path);
        assert!(empty.is_empty());
        assert_eq!(warning, None);
    }
}
