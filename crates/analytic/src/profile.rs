//! Reuse-gap profile extraction: one deterministic pass per workload.
//!
//! The profiling pass replays the workload's synthetic address stream
//! (the same [`AddressStream`] generator the cycle tier's cores use)
//! through a real private-L1 model and summarises the *post-L1* access
//! stream — the stream the shared LLC actually sees — as a reuse-gap
//! histogram plus a handful of scalar counters. The pass always uses
//! application slot 0 and a fixed canonical seed, so a workload's profile
//! is independent of where it appears in a mix (this is what makes the
//! analytic tier exactly permutation-invariant).
//!
//! Gaps are bucketed on a quarter-octave grid (bucket boundaries grow by
//! ×2^¼ ≈ 19/16, pure integer arithmetic) so the histogram stays ~170
//! buckets regardless of working-set size. From the histogram the profile
//! derives, at load time (never serialised — bitwise reproducibility):
//!
//! - the **tail function** `tail(g) = P(reuse gap ≥ g)`, cold (first-touch)
//!   accesses counted as gap ∞;
//! - the **footprint curve** `u(n) = Σ_{t<n} P(gap > t)` — the expected
//!   number of distinct lines in a window of `n` consecutive LLC accesses
//!   (Denning's working-set identity), evaluated by trapezoid integration
//!   of the tail over the bucket grid.

use asm_cache::SetAssocCache;
use asm_cpu::{AddressStream, AppProfile};
use asm_simcore::hash::DetHasher;
use asm_simcore::AppId;

/// Version tag folded into every profile key: bump when the extraction
/// algorithm changes so stale disk caches miss instead of lying.
pub const PROFILE_ALGORITHM: &str = "reuse-gap/1";

/// Parameters of the profiling pass.
///
/// The defaults match the cycle tier's Table 2 private L1 (64 KB, 4-way)
/// and a canonical stream seed that is deliberately *not* tied to any
/// experiment seed: the profile describes the workload, not one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileParams {
    /// Private-L1 geometry filtering the stream before the LLC.
    pub l1_geometry: asm_cache::CacheGeometry,
    /// Canonical seed for the profiled address stream.
    pub stream_seed: u64,
}

impl Default for ProfileParams {
    fn default() -> Self {
        ProfileParams {
            l1_geometry: asm_cache::CacheGeometry::from_capacity(64 * 1024, 4),
            stream_seed: 0xC0FF_EE00_5EED,
        }
    }
}

impl ProfileParams {
    /// Profiling parameters matching a cycle-tier [`asm_core::SystemConfig`]
    /// (same L1 geometry; the canonical stream seed is kept).
    #[must_use]
    pub fn from_system(config: &asm_core::SystemConfig) -> Self {
        ProfileParams {
            l1_geometry: config.l1_geometry,
            ..Self::default()
        }
    }

    /// Memory operations sampled for a working set of `ws` lines: enough
    /// passes over the working set to populate the deep gap buckets, within
    /// fixed bounds so extraction stays O(milliseconds) per workload.
    #[must_use]
    pub fn sample_ops(&self, ws: u64) -> u64 {
        (8 * ws.max(1)).clamp(1 << 19, 1 << 22)
    }
}

/// The quarter-octave gap-bucket boundaries: 1, 2, 3, 4, … then ×19/16
/// per step. Identical for every profile (the disk format stores only
/// boundary values, which are validated against this grid on load).
#[must_use]
pub fn bucket_bounds() -> Vec<u64> {
    let mut bounds = Vec::with_capacity(192);
    let mut b: u64 = 1;
    while b < 1 << 44 {
        bounds.push(b);
        b = (b + 1).max(b * 19 / 16);
    }
    bounds
}

/// A workload's reuse-gap summary: everything the analytic tier needs to
/// know about one application, extracted in one deterministic pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseProfile {
    /// Workload name (the [`AppProfile`] name).
    name: String,
    /// Staleness fingerprint: hash of the source profile, the profiling
    /// parameters and [`PROFILE_ALGORITHM`].
    key: u64,
    /// Memory operations sampled (pre-L1).
    ops: u64,
    /// Post-L1 accesses (L1 misses — the LLC-visible stream length).
    llc: u64,
    /// Writes among the LLC-visible accesses.
    writes: u64,
    /// LLC-visible accesses to `previous line + 1` (row-locality proxy).
    seq: u64,
    /// First-touch LLC accesses (compulsory; gap = ∞).
    cold: u64,
    /// Distinct lines touched post-L1 over the whole sample.
    lines_touched: u64,
    /// Source-model memory ops per kilo-instruction.
    mem_per_kilo: u32,
    /// Source-model maximum memory-level parallelism.
    mlp: u32,
    /// Source-model working-set size in lines.
    working_set_lines: u64,
    /// Gap-bucket lower bounds (always the canonical [`bucket_bounds`]).
    bounds: Vec<u64>,
    /// Gap counts per bucket: gaps `g` with `bounds[k] <= g < bounds[k+1]`.
    counts: Vec<u64>,
    /// Derived: `P(gap >= bounds[k])`, cold counted as gap ∞.
    tail: Vec<f64>,
    /// Derived: `∫₀^bounds[k] P(gap > x) dx` — footprint at each bound.
    fpt: Vec<f64>,
}

impl ReuseProfile {
    /// Runs the profiling pass for `profile` under `params`.
    #[must_use]
    pub fn extract(profile: &AppProfile, params: &ProfileParams) -> Self {
        let ws = profile.working_set_lines().max(1);
        let ops = params.sample_ops(ws);
        let mut stream = AddressStream::new(profile, 0, params.stream_seed);
        let mut l1 = SetAssocCache::new(params.l1_geometry, 1);
        let bounds = bucket_bounds();
        let mut counts = vec![0u64; bounds.len()];
        // Last LLC-access index per line; u64::MAX = never touched. Slot 0
        // keeps raw line addresses in [0, ws).
        let mut last = vec![u64::MAX; ws as usize];
        let (mut llc, mut writes, mut seq, mut cold, mut touched) = (0, 0, 0, 0, 0u64);
        let mut prev_line = u64::MAX;
        for _ in 0..ops {
            let op = stream.next_op();
            if l1.access(op.line, AppId::new(0), op.is_write).hit {
                continue;
            }
            let raw = op.line.raw();
            let idx = raw as usize;
            if op.is_write {
                writes += 1;
            }
            if prev_line != u64::MAX && raw == prev_line + 1 {
                seq += 1;
            }
            prev_line = raw;
            let prev = last[idx];
            if prev == u64::MAX {
                cold += 1;
                touched += 1;
            } else {
                let gap = (llc - prev).max(1);
                let k = bounds.partition_point(|&b| b <= gap) - 1;
                counts[k] += 1;
            }
            last[idx] = llc;
            llc += 1;
        }
        let mut p = ReuseProfile {
            name: profile.name().to_owned(),
            key: profile_key(profile, params),
            ops,
            llc,
            writes,
            seq,
            cold,
            lines_touched: touched,
            mem_per_kilo: profile.mem_per_kilo(),
            mlp: profile.mlp(),
            working_set_lines: ws,
            bounds,
            counts,
            tail: Vec::new(),
            fpt: Vec::new(),
        };
        p.finish();
        p
    }

    /// Rebuilds a profile from raw (deserialised) integer parts.
    ///
    /// # Errors
    ///
    /// Rejects count vectors that do not match the canonical bucket grid
    /// or counters that are internally inconsistent.
    pub fn from_parts(parts: ProfileParts) -> Result<Self, String> {
        let bounds = bucket_bounds();
        if parts.counts.len() != bounds.len() {
            return Err(format!(
                "profile `{}`: {} buckets, expected {}",
                parts.name,
                parts.counts.len(),
                bounds.len()
            ));
        }
        let binned: u64 = parts.counts.iter().sum();
        if binned + parts.cold != parts.llc
            || parts.writes > parts.llc
            || parts.seq > parts.llc
            || parts.llc > parts.ops
        {
            return Err(format!("profile `{}`: inconsistent counters", parts.name));
        }
        let mut p = ReuseProfile {
            name: parts.name,
            key: parts.key,
            ops: parts.ops,
            llc: parts.llc,
            writes: parts.writes,
            seq: parts.seq,
            cold: parts.cold,
            lines_touched: parts.lines_touched,
            mem_per_kilo: parts.mem_per_kilo,
            mlp: parts.mlp,
            working_set_lines: parts.working_set_lines,
            bounds,
            counts: parts.counts,
            tail: Vec::new(),
            fpt: Vec::new(),
        };
        p.finish();
        Ok(p)
    }

    /// Decomposes the profile into its serialisable integer parts.
    #[must_use]
    pub fn to_parts(&self) -> ProfileParts {
        ProfileParts {
            name: self.name.clone(),
            key: self.key,
            ops: self.ops,
            llc: self.llc,
            writes: self.writes,
            seq: self.seq,
            cold: self.cold,
            lines_touched: self.lines_touched,
            mem_per_kilo: self.mem_per_kilo,
            mlp: self.mlp,
            working_set_lines: self.working_set_lines,
            counts: self.counts.clone(),
        }
    }

    /// Recomputes the derived tail/footprint curves from the integer
    /// counters. Always recomputed (extract and load paths alike) so the
    /// floats are a pure function of the integers.
    fn finish(&mut self) {
        let n = self.bounds.len();
        let total = self.llc.max(1) as f64;
        self.tail = vec![0.0; n + 1];
        self.fpt = vec![0.0; n + 1];
        // Suffix sums: tail[k] = P(gap >= bounds[k]); beyond the last
        // bound only cold (gap ∞) remains.
        let mut above = self.cold;
        self.tail[n] = above as f64 / total;
        for k in (0..n).rev() {
            above += self.counts[k];
            self.tail[k] = above as f64 / total;
        }
        // Trapezoid integral of the tail: fpt[k] = ∫₀^bounds[k] tail.
        // Below bounds[0] = 1 every gap qualifies (tail = 1).
        self.fpt[0] = 1.0;
        for k in 0..n {
            let hi = if k + 1 < n {
                self.bounds[k + 1]
            } else {
                // Closing segment: flat cold tail, integrated on demand in
                // `footprint`; store the value at the last bound only.
                self.bounds[k]
            };
            let w = (hi - self.bounds[k]) as f64;
            self.fpt[k + 1] = self.fpt[k] + w * 0.5 * (self.tail[k] + self.tail[k.min(n - 1) + 1]);
        }
    }

    /// Workload name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Staleness fingerprint (see [`profile_key`]).
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// LLC accesses per instruction: the post-L1 access rate scaled by the
    /// source model's memory intensity. Tier-invariant, so the ASM CAR
    /// ratio reduces to a CPI ratio.
    #[must_use]
    pub fn llc_accesses_per_instr(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        (self.llc as f64 / self.ops as f64) * (f64::from(self.mem_per_kilo) / 1000.0)
    }

    /// Write fraction of the LLC-visible stream.
    #[must_use]
    pub fn write_frac(&self) -> f64 {
        if self.llc == 0 {
            return 0.0;
        }
        self.writes as f64 / self.llc as f64
    }

    /// Sequential fraction of the LLC-visible stream (row-locality proxy).
    #[must_use]
    pub fn seq_frac(&self) -> f64 {
        if self.llc == 0 {
            return 0.0;
        }
        self.seq as f64 / self.llc as f64
    }

    /// Cold (compulsory) fraction of the LLC-visible stream.
    #[must_use]
    pub fn cold_frac(&self) -> f64 {
        if self.llc == 0 {
            return 0.0;
        }
        self.cold as f64 / self.llc as f64
    }

    /// Source-model maximum memory-level parallelism.
    #[must_use]
    pub fn mlp(&self) -> f64 {
        f64::from(self.mlp.max(1))
    }

    /// Source-model working-set size in lines.
    #[must_use]
    pub fn working_set_lines(&self) -> u64 {
        self.working_set_lines
    }

    /// Distinct lines touched post-L1 during the sample.
    #[must_use]
    pub fn lines_touched(&self) -> u64 {
        self.lines_touched
    }

    /// `P(reuse gap ≥ g)` over the LLC-visible stream, cold as gap ∞.
    #[must_use]
    pub fn tail_at(&self, g: f64) -> f64 {
        if g <= 1.0 {
            return 1.0;
        }
        let n = self.bounds.len();
        let last = self.bounds[n - 1] as f64;
        if g >= last {
            return self.tail[n];
        }
        // bounds[k] <= g < bounds[k+1]: log-linear interpolation of the
        // tail across the bucket (bounds are geometric).
        let k = self.bounds.partition_point(|&b| (b as f64) <= g) - 1;
        let (b0, b1) = (self.bounds[k] as f64, self.bounds[k + 1] as f64);
        let t = (g - b0) / (b1 - b0);
        self.tail[k] + t * (self.tail[k + 1] - self.tail[k])
    }

    /// Footprint `u(m)`: expected distinct lines in a window of `m`
    /// consecutive LLC accesses, capped at the working set.
    #[must_use]
    pub fn footprint(&self, m: f64) -> f64 {
        let cap = self.working_set_lines as f64;
        if m <= 0.0 {
            return 0.0;
        }
        if m <= 1.0 {
            return m.min(cap);
        }
        let n = self.bounds.len();
        let last = self.bounds[n - 1] as f64;
        let u = if m >= last {
            // Beyond the grid only the flat cold tail keeps growing.
            self.fpt[n] + (m - last) * self.tail[n]
        } else {
            let k = self.bounds.partition_point(|&b| (b as f64) <= m) - 1;
            let (b0, b1) = (self.bounds[k] as f64, self.bounds[k + 1] as f64);
            let t = (m - b0) / (b1 - b0);
            let tail_m = self.tail[k] + t * (self.tail[k + 1] - self.tail[k]);
            self.fpt[k] + (m - b0) * 0.5 * (self.tail[k] + tail_m)
        };
        u.min(cap)
    }
}

/// The serialisable integer parts of a [`ReuseProfile`]. Floating-point
/// curves are never part of this: they are recomputed from the integers on
/// load, so a round-tripped profile is bitwise identical to a fresh one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileParts {
    /// Workload name.
    pub name: String,
    /// Staleness fingerprint.
    pub key: u64,
    /// Memory operations sampled.
    pub ops: u64,
    /// Post-L1 accesses.
    pub llc: u64,
    /// Writes among post-L1 accesses.
    pub writes: u64,
    /// Sequential post-L1 accesses.
    pub seq: u64,
    /// First-touch post-L1 accesses.
    pub cold: u64,
    /// Distinct lines touched.
    pub lines_touched: u64,
    /// Memory ops per kilo-instruction (source model).
    pub mem_per_kilo: u32,
    /// Maximum MLP (source model).
    pub mlp: u32,
    /// Working-set lines (source model).
    pub working_set_lines: u64,
    /// Per-bucket gap counts on the canonical grid.
    pub counts: Vec<u64>,
}

/// Deterministic fingerprint of (source profile, profiling parameters,
/// extraction algorithm): any change to any of the three invalidates
/// cached profiles.
#[must_use]
pub fn profile_key(profile: &AppProfile, params: &ProfileParams) -> u64 {
    use std::hash::Hasher as _;
    let mut h = DetHasher::default();
    h.write(PROFILE_ALGORITHM.as_bytes());
    h.write(format!("{profile:?}").as_bytes());
    h.write(format!("{params:?}").as_bytes());
    h.write_u64(params.sample_ops(profile.working_set_lines().max(1)));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(ws: u64, hot: u64, hot_frac: f64, run: u32, mpk: u32) -> AppProfile {
        AppProfile::builder("toy")
            .mem_per_kilo(mpk)
            .working_set_lines(ws)
            .hot_lines(hot)
            .hot_frac(hot_frac)
            .seq_run(run)
            .build()
    }

    #[test]
    fn bounds_are_strictly_increasing_quarter_octave() {
        let b = bucket_bounds();
        assert!(b.len() > 100 && b.len() < 300, "{}", b.len());
        assert_eq!(b[0], 1);
        for w in b.windows(2) {
            assert!(w[1] > w[0]);
            // Growth never exceeds the quarter-octave ratio (plus the +1
            // floor for small bounds).
            assert!(w[1] <= (w[0] + 1).max(w[0] * 19 / 16 + 1));
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let p = toy(1 << 14, 256, 0.5, 8, 50);
        let params = ProfileParams::default();
        let a = ReuseProfile::extract(&p, &params);
        let b = ReuseProfile::extract(&p, &params);
        assert_eq!(a, b);
    }

    #[test]
    fn counters_are_consistent() {
        let p = toy(1 << 14, 256, 0.5, 8, 50);
        let r = ReuseProfile::extract(&p, &ProfileParams::default());
        let binned: u64 = r.counts.iter().sum();
        assert_eq!(binned + r.cold, r.llc);
        assert!(r.llc <= r.ops);
        assert!(r.lines_touched <= r.working_set_lines);
        assert!(r.cold >= r.lines_touched); // every touched line was cold once
    }

    #[test]
    fn tail_is_monotone_and_bounded() {
        let p = toy(1 << 15, 512, 0.6, 4, 80);
        let r = ReuseProfile::extract(&p, &ProfileParams::default());
        let mut prev = 1.0f64;
        for g in [1.0, 2.0, 7.5, 100.0, 1e4, 1e7, 1e12] {
            let t = r.tail_at(g);
            assert!(t <= prev + 1e-12, "tail not monotone at {g}");
            assert!((0.0..=1.0).contains(&t));
            prev = t;
        }
    }

    #[test]
    fn footprint_is_monotone_and_capped() {
        let ws = 1u64 << 13;
        let p = toy(ws, 128, 0.3, 8, 100);
        let r = ReuseProfile::extract(&p, &ProfileParams::default());
        let mut prev = 0.0f64;
        for m in [0.5, 1.0, 10.0, 1e3, 1e6, 1e9, 1e13] {
            let u = r.footprint(m);
            assert!(u + 1e-9 >= prev, "footprint not monotone at {m}");
            assert!(u <= ws as f64 + 1e-9);
            prev = u;
        }
        // A window of one access holds exactly one line.
        assert!((r.footprint(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hot_loops_produce_short_gaps() {
        // Nearly all accesses in a tiny hot set: gaps are short, so the
        // tail collapses fast and the footprint saturates near the hot set.
        let p = toy(1 << 20, 64, 0.98, 1, 100);
        let r = ReuseProfile::extract(&p, &ProfileParams::default());
        // The L1 swallows a 64-line hot set almost entirely; what misses
        // into the LLC is the cold/random residue, so just check scale.
        assert!(r.llc < r.ops / 2);
    }

    #[test]
    fn streaming_profiles_are_cold_dominated() {
        let p = toy(1 << 20, 64, 0.02, 64, 100);
        let r = ReuseProfile::extract(&p, &ProfileParams::default());
        assert!(r.seq_frac() > 0.5, "seq {}", r.seq_frac());
        // First sweep over a 1M-line set: a large first-touch share.
        assert!(r.cold_frac() > 0.15, "cold {}", r.cold_frac());
    }

    #[test]
    fn round_trip_through_parts_is_identical() {
        let p = toy(1 << 14, 256, 0.5, 8, 50);
        let r = ReuseProfile::extract(&p, &ProfileParams::default());
        let back = ReuseProfile::from_parts(r.to_parts()).expect("round trip");
        assert_eq!(r, back);
    }

    #[test]
    fn inconsistent_parts_rejected() {
        let p = toy(1 << 12, 64, 0.5, 4, 50);
        let r = ReuseProfile::extract(&p, &ProfileParams::default());
        let mut parts = r.to_parts();
        parts.cold += 1;
        assert!(ReuseProfile::from_parts(parts).is_err());
        let mut parts = r.to_parts();
        parts.counts.pop();
        assert!(ReuseProfile::from_parts(parts).is_err());
    }

    #[test]
    fn key_tracks_profile_and_params() {
        let params = ProfileParams::default();
        let a = profile_key(&toy(1 << 12, 64, 0.5, 4, 50), &params);
        let b = profile_key(&toy(1 << 12, 64, 0.5, 4, 60), &params);
        assert_ne!(a, b);
        let other = ProfileParams {
            stream_seed: 7,
            ..params
        };
        assert_ne!(a, profile_key(&toy(1 << 12, 64, 0.5, 4, 50), &other));
    }
}
