#![warn(missing_docs)]
//! Analytical fast tier: reuse-distance slowdown estimation.
//!
//! The cycle-accurate `System` in `asm-core` reproduces the paper's figures
//! but caps campaigns at tens of mixes. This crate is the second simulation
//! tier: it predicts per-application slowdowns, fairness and weighted
//! speedup for a mix in *microseconds*, with no per-cycle event loop, by
//! composing three analytical stages:
//!
//! 1. **Profile extraction** ([`profile`]): one deterministic pass per
//!    workload routes the synthetic address stream through a real private-L1
//!    model and records the *reuse-gap histogram* of the post-L1 (LLC)
//!    access stream — for each access, how many LLC accesses occurred since
//!    the previous touch of the same line. The histogram's tail function
//!    yields the *footprint curve* `u(n)` (expected distinct lines in a
//!    window of `n` accesses, Denning's working-set identity), the whole
//!    summary is cacheable on disk ([`store`], same versioned-header
//!    discipline as the cycle tier's `AloneCache`).
//! 2. **Shared-cache fixed point** ([`model`]): in a mix, application `i`'s
//!    access at reuse gap `g` hits iff the distinct lines inserted in
//!    between fit the cache: `Σ_j u_j(g · a_j / a_i) < C`, where `a_j` are
//!    the per-cycle LLC access rates (Che's approximation, extended to
//!    multiple streams as in the simso `CacheModel`). The critical gap is
//!    found by monotone bisection; the tail at the critical gap is the miss
//!    rate. Rates depend on CPI and CPI depends on miss rates, so the
//!    solver runs a damped fixed point with a *fixed* iteration count
//!    (determinism: no convergence epsilons, no float equality).
//! 3. **DRAM queueing approximation + ASM closed form** ([`model`]): miss
//!    traffic feeds an M/M/1-style queue built from the cycle tier's own
//!    [`asm_dram::TimingSpec`] (one source of truth for tRCD/tRP/CL/tBL and
//!    channel/bank geometry); the resulting per-app CPIs give
//!    CAR_alone/CAR_shared and the ASM slowdown `CAR_alone / CAR_shared`
//!    (Subramanian et al., MICRO 2015, §4).
//!
//! Everything is a pure function of the inputs: results are bitwise
//! deterministic, independent of worker count, and invariant under mix
//! permutation (all reductions iterate in a canonical profile-key order, so
//! a reordered mix produces bitwise-identical slowdowns for each app).
//!
//! # Examples
//!
//! ```
//! use asm_analytic::{AnalyticConfig, MixSolver, ProfileParams, ReuseProfile};
//! use asm_core::SystemConfig;
//! use asm_cpu::AppProfile;
//!
//! let params = ProfileParams::default();
//! let streaming = AppProfile::builder("stream")
//!     .mem_per_kilo(100)
//!     .working_set_lines(1 << 18)
//!     .seq_run(64)
//!     .build();
//! let p = ReuseProfile::extract(&streaming, &params);
//! let cfg = AnalyticConfig::from_system(&SystemConfig::default());
//! let mut solver = MixSolver::new(cfg);
//! let sol = solver.run(&[&p, &p]);
//! assert!(sol.slowdowns[0] >= 1.0); // two copies contend: each slows down
//! ```

pub mod model;
pub mod profile;
pub mod store;

pub use model::{
    classify, AnalyticConfig, MixSolution, MixSolver, Tuning, WorkloadClass,
};
pub use profile::{ProfileParams, ReuseProfile};
pub use store::ProfileStore;
