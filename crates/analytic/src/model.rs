//! The analytic mix solver: shared-cache occupancy fixed point, DRAM
//! queueing approximation, and the ASM closed form.
//!
//! Given one [`ReuseProfile`] per application, [`MixSolver::solve`] runs a
//! damped fixed point over per-application CPIs:
//!
//! - **Cache stage.** Per-cycle LLC access rates `a_i = api_i / cpi_i`
//!   convert each application's reuse gaps into shared-cache occupancy: an
//!   access by app `i` at gap `g` hits iff
//!   `Σ_j u_j(g · a_j / a_i) < C` (Che's approximation over concurrent
//!   streams). The *critical gap* — the largest hitting gap — is found by
//!   geometric bisection with a fixed step count, and the tail of the gap
//!   distribution at the critical gap is the miss rate. The alone miss
//!   rate is the same computation with only the own footprint term.
//! - **Memory stage.** Miss traffic (plus writeback traffic) loads a
//!   queueing model of the DRAM system built from
//!   [`asm_dram::TimingSpec`]: per-request service interpolates the
//!   row-hit/row-conflict latencies by a row-locality estimate (sequential
//!   fraction, degraded by other applications' interleaved traffic). The
//!   simulated controller is latency-bound long before it is
//!   bandwidth-bound, so read latency is dominated by queueing terms: the
//!   app's *own* outstanding requests serialising at the channel
//!   (self-queueing, scaled by its in-flight backlog), write-drain
//!   episodes that close open rows (worst for row-hit streams), and other
//!   applications' backlogs with an FR-FCFS row-hit-first bias that
//!   starves low-row-locality apps. An M/M/1-style term adds shared-load
//!   delay as utilisation grows, and past saturation CPIs are scaled up
//!   so total demand fits the bottleneck (demand-proportional rationing,
//!   the FR-FCFS steady state).
//! - **Core stage.** CPI = issue-width base + exposed LLC-hit stalls +
//!   read-miss stalls `rmpi · latency / parallelism`, with parallelism
//!   capped by both the reorder window and the model MLP. Write misses
//!   contribute bandwidth but no stall (the cycle tier completes store
//!   misses into a store buffer in one cycle).
//!
//! Slowdown is then the ASM closed form `CAR_alone / CAR_shared`
//! (Subramanian et al., MICRO 2015 §4). Since LLC accesses per instruction
//! are tier-invariant, this equals `cpi_shared / cpi_alone`.
//!
//! Every loop and reduction iterates in a canonical profile-key order and
//! runs a fixed number of iterations, so results are bitwise deterministic
//! and bitwise invariant under mix permutation.

use asm_core::SystemConfig;
use asm_dram::TimingSpec;

use crate::profile::ReuseProfile;

/// Hard cap on mix size: the solver's scratch lives on the stack.
pub const MAX_APPS: usize = 32;

/// Upper bound of the critical-gap search (own-access counts).
const GAP_MAX: f64 = 1e15;

/// Bisection steps of the critical-gap search. Fixed count — the search
/// never tests floats for equality and always does the same work. 24
/// geometric halvings of the [1, 1e15] span pin the gap to within a
/// factor of `exp(ln(1e15) / 2^24)` ≈ 1 + 2e-6, far inside model error.
const GAP_SEARCH_ITERS: u32 = 24;

/// Calibration constants of the analytic model.
///
/// These are *global* knobs calibrated once against the cycle-accurate
/// tier (see the `xval` experiment); they are deliberately not fit per
/// workload. Defaults are the calibrated values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tuning {
    /// Fixed-point iterations (alone and shared passes alike).
    pub iters: u32,
    /// Damping factor on each CPI update (0 < damping ≤ 1).
    pub damping: f64,
    /// Scale on the window-limited miss parallelism term.
    pub k_par: f64,
    /// Fraction of LLC-hit latency exposed despite the reorder window.
    pub k_hit: f64,
    /// Fixed extra cycles per DRAM read (LLC lookup + controller hops).
    pub miss_extra: f64,
    /// Row-hit probability per sequential LLC-miss transition, alone.
    pub k_row: f64,
    /// Row locality retained under full interleaving (FR-FCFS serves
    /// co-queued row hits first, so sharing does not destroy all of it).
    pub k_row_mix: f64,
    /// Weight of the M/M/1 queueing-delay term.
    pub k_queue: f64,
    /// Utilisation ceiling for the queueing/rationing stages.
    pub max_util: f64,
    /// Weight of the self-queueing term: a deep-MLP application's own
    /// outstanding requests serialise behind each other at the channel.
    pub k_self: f64,
    /// Base weight of the write-drain disruption term (writeback bursts
    /// block reads and close rows).
    pub k_wr: f64,
    /// Row-locality-squared weight of the write-drain term: streaming
    /// (open-row) readers lose the most when a drain closes their row.
    pub k_wr_rh: f64,
    /// Weight of the cross-application queueing term (other applications'
    /// outstanding requests ahead of ours in the controller).
    pub k_cross: f64,
    /// FR-FCFS bias: extra cross-queueing felt by a low-row-locality
    /// application behind a high-row-locality one (row hits are served
    /// first, starving row-conflict requests — the paper's §2 motivation).
    pub k_frfcfs: f64,
    /// Effective LLC capacity fraction: set-conflict and replacement
    /// imperfection make the cache behave smaller than its line count.
    pub k_cap: f64,
    /// Fraction of the Che-predicted *contention delta* (shared miss rate
    /// minus own-footprint miss rate) that materialises. Che's
    /// approximation is good at ranking contention but overstates its
    /// magnitude against the simulated LRU: applying it as a scaled delta
    /// on top of the alone miss rate cancels the shared absolute error.
    pub k_share: f64,
    /// Fraction of the profile MLP an application actually sustains
    /// (misses are bursty, so the window limit rarely binds instead).
    pub k_mlp: f64,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            iters: 32,
            damping: 0.5,
            k_par: 3.713975676274424,
            k_hit: 0.024293300601461117,
            miss_extra: 17.2929187125,
            k_row: 0.756,
            k_row_mix: 1.0,
            k_queue: 0.5691229751478168,
            max_util: 0.96,
            k_self: 0.1544728881029311,
            k_wr: 0.07062887292837187,
            k_wr_rh: 1.6552359436384745,
            k_cross: 1.3116507613493977,
            k_frfcfs: 4.238185921861712,
            k_cap: 0.75,
            k_share: 0.11547790229468537,
            k_mlp: 0.445578,
        }
    }
}

/// Everything the solver needs to know about the simulated hardware,
/// derived from the cycle tier's [`SystemConfig`] — never duplicated
/// constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticConfig {
    /// Shared LLC capacity in lines.
    pub llc_lines: f64,
    /// LLC hit latency in cycles.
    pub llc_latency: f64,
    /// Core issue/retire width.
    pub width: f64,
    /// Reorder-window size in instructions.
    pub window: f64,
    /// DRAM timing and geometry (the cycle tier's own `TimingSpec`).
    pub spec: TimingSpec,
    /// Calibration constants.
    pub tuning: Tuning,
}

impl AnalyticConfig {
    /// Reads the analytic parameters off a cycle-tier [`SystemConfig`].
    #[must_use]
    pub fn from_system(config: &SystemConfig) -> Self {
        AnalyticConfig {
            llc_lines: (config.llc_geometry.sets() * config.llc_geometry.ways()) as f64,
            llc_latency: config.llc_latency as f64,
            width: asm_cpu::core::DEFAULT_WIDTH as f64,
            window: asm_cpu::core::DEFAULT_WINDOW as f64,
            spec: config.dram.timing_spec(),
            tuning: Tuning::default(),
        }
    }
}

/// Coarse behavioural class of a workload, used to stratify the
/// cross-validation error envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WorkloadClass {
    /// Barely touches the LLC (< 0.5 LLC accesses per kilo-instruction).
    Compute,
    /// Reuse-heavy: the working set (mostly) fits the shared LLC.
    CacheSensitive,
    /// Memory-intensive with long sequential runs (row-buffer friendly).
    Streaming,
    /// Memory-intensive with short, scattered bursts.
    Irregular,
}

impl WorkloadClass {
    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkloadClass::Compute => "compute",
            WorkloadClass::CacheSensitive => "cache-sensitive",
            WorkloadClass::Streaming => "streaming",
            WorkloadClass::Irregular => "irregular",
        }
    }

    /// All classes, in display order.
    #[must_use]
    pub fn all() -> [WorkloadClass; 4] {
        [
            WorkloadClass::Compute,
            WorkloadClass::CacheSensitive,
            WorkloadClass::Streaming,
            WorkloadClass::Irregular,
        ]
    }
}

/// Classifies a profiled workload relative to an LLC of `llc_lines` lines.
#[must_use]
pub fn classify(profile: &ReuseProfile, llc_lines: f64) -> WorkloadClass {
    let llc_mpki = profile.llc_accesses_per_instr() * 1000.0;
    if llc_mpki < 0.5 {
        WorkloadClass::Compute
    } else if (profile.working_set_lines() as f64) < 1.5 * llc_lines {
        WorkloadClass::CacheSensitive
    } else if profile.seq_frac() >= 0.6 {
        WorkloadClass::Streaming
    } else {
        WorkloadClass::Irregular
    }
}

/// Per-application constants read off a profile once per solve.
#[derive(Debug, Clone, Copy)]
struct AppConsts {
    /// LLC accesses per instruction.
    api: f64,
    /// Write fraction of the LLC stream.
    wfrac: f64,
    /// Sequential fraction of the LLC stream.
    seqf: f64,
    /// Maximum useful miss parallelism.
    mlp: f64,
    /// Profile fingerprint (canonical ordering key).
    key: u64,
}

impl AppConsts {
    const ZERO: AppConsts = AppConsts {
        api: 0.0,
        wfrac: 0.0,
        seqf: 0.0,
        mlp: 1.0,
        key: 0,
    };

    fn of(p: &ReuseProfile) -> Self {
        AppConsts {
            api: p.llc_accesses_per_instr(),
            wfrac: p.write_frac(),
            seqf: p.seq_frac(),
            mlp: p.mlp(),
            key: p.key(),
        }
    }
}

/// The per-mix analytic solver.
///
/// Construction is cheap; one instance can solve any number of mixes (the
/// bench harness reuses one across a 1k-mix campaign). [`Self::solve`] is
/// the allocation-free hot path (enforced by asm-lint R9);
/// [`Self::solution`] materialises the result.
#[derive(Debug, Clone)]
pub struct MixSolver {
    cfg: AnalyticConfig,
    n: usize,
    api: [f64; MAX_APPS],
    cpi_alone: [f64; MAX_APPS],
    cpi_shared: [f64; MAX_APPS],
    miss_alone: [f64; MAX_APPS],
    miss_shared: [f64; MAX_APPS],
}

impl MixSolver {
    /// Creates a solver for the given hardware model.
    #[must_use]
    pub fn new(cfg: AnalyticConfig) -> Self {
        MixSolver {
            cfg,
            n: 0,
            api: [0.0; MAX_APPS],
            cpi_alone: [1.0; MAX_APPS],
            cpi_shared: [1.0; MAX_APPS],
            miss_alone: [0.0; MAX_APPS],
            miss_shared: [0.0; MAX_APPS],
        }
    }

    /// The hardware model this solver was built with.
    #[must_use]
    pub fn config(&self) -> &AnalyticConfig {
        &self.cfg
    }

    /// Solves one mix: alone pass per distinct application, then the
    /// shared fixed point. Results are read back with [`Self::solution`].
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty or larger than [`MAX_APPS`].
    pub fn solve(&mut self, apps: &[&ReuseProfile]) {
        let n = apps.len();
        assert!(n >= 1 && n <= MAX_APPS, "mix size {n} out of range");
        let mut cs = [AppConsts::ZERO; MAX_APPS];
        let mut ord = [0usize; MAX_APPS];
        for i in 0..n {
            cs[i] = AppConsts::of(apps[i]);
            ord[i] = i;
        }
        // Canonical order: all reductions below iterate in profile-key
        // order, making the solve bitwise invariant under permutation of
        // `apps` (ties are bitwise-identical apps, so their relative
        // order cannot matter).
        ord[..n].sort_unstable_by_key(|&i| cs[i].key);
        let mut cpi = [1.0f64; MAX_APPS];
        let mut miss = [0.0f64; MAX_APPS];
        // Alone pass: each app against the full cache, deduplicated by
        // fingerprint (a singleton "mix" only touches its own index).
        for r in 0..n {
            let i = ord[r];
            if r > 0 && cs[ord[r - 1]].key == cs[i].key {
                cpi[i] = cpi[ord[r - 1]];
                miss[i] = miss[ord[r - 1]];
                continue;
            }
            let single = [i];
            for _ in 0..self.cfg.tuning.iters {
                relax_once(&self.cfg, apps, &cs, &single, &mut cpi, &mut miss);
            }
        }
        self.cpi_alone = cpi;
        self.miss_alone = miss;
        // Shared pass, seeded from the alone state.
        for _ in 0..self.cfg.tuning.iters {
            relax_once(&self.cfg, apps, &cs, &ord[..n], &mut cpi, &mut miss);
        }
        self.cpi_shared = cpi;
        self.miss_shared = miss;
        for i in 0..n {
            self.api[i] = cs[i].api;
        }
        self.n = n;
    }

    /// Materialises the last [`Self::solve`] into a [`MixSolution`].
    ///
    /// # Panics
    ///
    /// Panics if `apps` does not match the mix passed to `solve`.
    #[must_use]
    pub fn solution(&self, apps: &[&ReuseProfile]) -> MixSolution {
        assert_eq!(apps.len(), self.n, "solution() mix must match solve()");
        let n = self.n;
        let mut sol = MixSolution {
            app_names: apps.iter().map(|p| p.name().to_owned()).collect(),
            classes: apps
                .iter()
                .map(|p| classify(p, self.cfg.llc_lines))
                .collect(),
            slowdowns: Vec::with_capacity(n),
            cpi_alone: self.cpi_alone[..n].to_vec(),
            cpi_shared: self.cpi_shared[..n].to_vec(),
            miss_alone: self.miss_alone[..n].to_vec(),
            miss_shared: self.miss_shared[..n].to_vec(),
            car_alone: Vec::with_capacity(n),
            car_shared: Vec::with_capacity(n),
        };
        for i in 0..n {
            let car_alone = self.api[i] / self.cpi_alone[i];
            let car_shared = self.api[i] / self.cpi_shared[i];
            sol.car_alone.push(car_alone);
            sol.car_shared.push(car_shared);
            // ASM closed form: slowdown = CAR_alone / CAR_shared, which
            // reduces to a CPI ratio because `api` is tier-invariant.
            sol.slowdowns
                .push((self.cpi_shared[i] / self.cpi_alone[i]).max(1.0));
        }
        sol
    }

    /// Convenience: [`Self::solve`] then [`Self::solution`].
    pub fn run(&mut self, apps: &[&ReuseProfile]) -> MixSolution {
        self.solve(apps);
        self.solution(apps)
    }
}

/// One damped fixed-point sweep over the applications listed in `ord`
/// (their canonical order). Only indices in `ord` are touched.
fn relax_once(
    cfg: &AnalyticConfig,
    apps: &[&ReuseProfile],
    cs: &[AppConsts; MAX_APPS],
    ord: &[usize],
    cpi: &mut [f64; MAX_APPS],
    miss: &mut [f64; MAX_APPS],
) {
    let t = &cfg.tuning;
    // LLC access rates at the current CPI state.
    let mut a = [0.0f64; MAX_APPS];
    for &i in ord {
        a[i] = cs[i].api / cpi[i];
    }
    // Cache stage: critical gap -> miss rate per app. In a shared mix the
    // Che contention delta over the own-footprint miss rate is scaled by
    // `k_share` (see `Tuning::k_share`); the delta is non-negative because
    // extra occupancy can only shrink the critical gap.
    let cap = cfg.llc_lines * t.k_cap;
    for &i in ord {
        miss[i] = if a[i] > 0.0 {
            let shared = apps[i].tail_at(critical_gap(apps, &a, ord, i, cap));
            if ord.len() > 1 {
                let own =
                    apps[i].tail_at(critical_gap(apps, &a, std::slice::from_ref(&i), i, cap));
                (own + t.k_share * (shared - own)).clamp(0.0, 1.0)
            } else {
                shared
            }
        } else {
            0.0
        };
    }
    // Memory stage: traffic, row locality, per-app channel backlog.
    let mut traffic = [0.0f64; MAX_APPS];
    let mut total_traffic = 0.0f64;
    for &i in ord {
        traffic[i] = cs[i].api * miss[i] * (1.0 + cs[i].wfrac) / cpi[i];
        total_traffic += traffic[i];
    }
    let mut rh = [0.0f64; MAX_APPS];
    let mut par = [1.0f64; MAX_APPS];
    let mut backlog = [0.0f64; MAX_APPS];
    let mut util = 0.0f64;
    for &i in ord {
        let share = if total_traffic > 0.0 {
            traffic[i] / total_traffic
        } else {
            1.0
        };
        let base = (cs[i].seqf * t.k_row).clamp(0.0, 1.0);
        rh[i] = base * (share + (1.0 - share) * t.k_row_mix);
        let slot = cfg.spec.burst_slot().max(cfg.spec.bank_slot(rh[i]));
        util += traffic[i] * slot;
        let rmpi = cs[i].api * miss[i] * (1.0 - cs[i].wfrac);
        let mlp_cap = (t.k_mlp * cs[i].mlp).max(1.0);
        par[i] = (t.k_par * rmpi * cfg.window).clamp(1.0, mlp_cap);
        // Channel backlog this app keeps in flight: each outstanding read
        // drags its fill plus the dirty writebacks it evicts through the
        // same channel, (1 + wfrac) / (1 - wfrac) DRAM ops per read.
        let ops_per_read = (1.0 + cs[i].wfrac) / (1.0 - cs[i].wfrac).max(0.05);
        backlog[i] = par[i] * ops_per_read * slot;
    }
    let rho = util.min(t.max_util);
    let mean_slot = if total_traffic > 0.0 {
        util / total_traffic
    } else {
        0.0
    };
    let queue_wait = t.k_queue * mean_slot * rho / (1.0 - rho);
    // Core stage: next CPI per app, damped.
    for &i in ord {
        // Self-queueing: a deep-MLP app's own outstanding requests
        // serialise behind each other at the channel.
        let w_self = t.k_self * backlog[i];
        // Write-drain disruption: writeback bursts close rows mid-stream;
        // open-row readers (high rh) pay the re-open cost most often.
        let wratio = cs[i].wfrac / (1.0 - cs[i].wfrac).max(0.05);
        let w_write = par[i]
            * wratio
            * cfg.spec.avg_read_latency(0.0)
            * (t.k_wr + t.k_wr_rh * rh[i] * rh[i]);
        // Cross-app queueing with the FR-FCFS row-hit-first bias: a
        // low-row-locality app waits extra behind row-hit streams. Summed
        // over all of `ord` then corrected by the (bias-1) self term so
        // bitwise-identical twins read bitwise-identical sums.
        let mut cross_sum = 0.0f64;
        for &j in ord {
            let bias = 1.0 + t.k_frfcfs * (rh[j] - rh[i]).max(0.0);
            cross_sum += backlog[j] * bias;
        }
        let w_cross = t.k_cross * (cross_sum - backlog[i]);
        let lat = t.miss_extra
            + cfg.spec.avg_read_latency(rh[i])
            + w_self
            + w_write
            + w_cross
            + queue_wait;
        let rmpi = cs[i].api * miss[i] * (1.0 - cs[i].wfrac);
        let hit_stall = t.k_hit * cs[i].api * (1.0 - miss[i]) * cfg.llc_latency;
        let mut next = 1.0 / cfg.width + hit_stall + rmpi * lat / par[i];
        if util > t.max_util {
            // Saturation: demand-proportional rationing stretches time so
            // total traffic fits the bottleneck.
            next = next.max(cpi[i] * util / t.max_util);
        }
        cpi[i] += t.damping * (next - cpi[i]);
    }
}

/// The largest reuse gap of app `i` that still hits: geometric bisection
/// on `Σ_j u_j(g · a_j / a_i) < C`. Monotone in `g`, fixed step count.
fn critical_gap(
    apps: &[&ReuseProfile],
    a: &[f64; MAX_APPS],
    ord: &[usize],
    i: usize,
    llc_lines: f64,
) -> f64 {
    let occupancy = |g: f64| {
        let mut occ = 0.0f64;
        for &j in ord {
            occ += apps[j].footprint(g * a[j] / a[i]);
        }
        occ
    };
    if occupancy(GAP_MAX) < llc_lines {
        return GAP_MAX;
    }
    let (mut lo, mut hi) = (1.0f64, GAP_MAX);
    for _ in 0..GAP_SEARCH_ITERS {
        let mid = (lo * hi).sqrt();
        if occupancy(mid) < llc_lines {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// The solved mix: per-application slowdowns plus the intermediate model
/// quantities (useful for cross-validation and debugging).
#[derive(Debug, Clone, PartialEq)]
pub struct MixSolution {
    /// Workload name per app, in mix order.
    pub app_names: Vec<String>,
    /// Behavioural class per app.
    pub classes: Vec<WorkloadClass>,
    /// ASM slowdown per app (`CAR_alone / CAR_shared`, clamped ≥ 1).
    pub slowdowns: Vec<f64>,
    /// Alone CPI per app.
    pub cpi_alone: Vec<f64>,
    /// Shared CPI per app.
    pub cpi_shared: Vec<f64>,
    /// Alone LLC miss rate per app.
    pub miss_alone: Vec<f64>,
    /// Shared LLC miss rate per app.
    pub miss_shared: Vec<f64>,
    /// Alone committed LLC accesses per cycle.
    pub car_alone: Vec<f64>,
    /// Shared committed LLC accesses per cycle.
    pub car_shared: Vec<f64>,
}

impl MixSolution {
    /// Unfairness: the maximum slowdown in the mix.
    #[must_use]
    pub fn unfairness(&self) -> f64 {
        self.slowdowns.iter().fold(1.0f64, |m, &s| m.max(s))
    }

    /// Weighted speedup: `Σ 1/slowdown_i`.
    #[must_use]
    pub fn weighted_speedup(&self) -> f64 {
        self.slowdowns.iter().map(|&s| 1.0 / s).sum()
    }

    /// Harmonic speedup: `n / Σ slowdown_i`.
    #[must_use]
    pub fn harmonic_speedup(&self) -> f64 {
        let total: f64 = self.slowdowns.iter().sum();
        self.slowdowns.len() as f64 / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileParams;
    use asm_cpu::AppProfile;

    fn extract(name: &str, mpk: u32, ws: u64, hot: u64, hf: f64, run: u32, mlp: u32) -> ReuseProfile {
        let p = AppProfile::builder(name)
            .mem_per_kilo(mpk)
            .working_set_lines(ws)
            .hot_lines(hot)
            .hot_frac(hf)
            .seq_run(run)
            .mlp(mlp)
            .build();
        ReuseProfile::extract(&p, &ProfileParams::default())
    }

    fn cfg() -> AnalyticConfig {
        AnalyticConfig::from_system(&SystemConfig::default())
    }

    #[test]
    fn identical_pair_contends_symmetrically() {
        let p = extract("hog", 120, 1 << 20, 8 << 10, 0.3, 2, 10);
        let mut s = MixSolver::new(cfg());
        let sol = s.run(&[&p, &p]);
        assert!(sol.slowdowns[0] > 1.0, "{:?}", sol.slowdowns);
        assert_eq!(sol.slowdowns[0].to_bits(), sol.slowdowns[1].to_bits());
        assert!(sol.miss_shared[0] >= sol.miss_alone[0] - 1e-12);
    }

    #[test]
    fn compute_bound_app_is_barely_slowed() {
        let light = extract("light", 2, 1 << 9, 1 << 8, 0.95, 16, 2);
        let hog = extract("hog", 120, 1 << 20, 8 << 10, 0.3, 2, 10);
        let mut s = MixSolver::new(cfg());
        let sol = s.run(&[&light, &hog]);
        // The light app barely touches the LLC, so even a 100% shared miss
        // rate (the hog evicts its lines between rare reuses) costs little;
        // the hog feels only the light app's residual queueing (the cycle
        // tier's interference matrix shows compute-ish aggressors still
        // cost irregular victims up to ~1.4×, so modest is correct here —
        // near-zero is not).
        assert!(sol.slowdowns[0] < 1.5, "light {}", sol.slowdowns[0]);
        assert!(sol.slowdowns[1] < 1.45, "hog {}", sol.slowdowns[1]);
        let mut s2 = MixSolver::new(cfg());
        let heavy = s2.run(&[&hog, &hog]).slowdowns[0];
        assert!(
            sol.slowdowns[1] < heavy,
            "light partner {} should cost the hog less than a second hog {heavy}",
            sol.slowdowns[1]
        );
    }

    #[test]
    fn solve_is_bitwise_deterministic() {
        let a = extract("a", 60, 1 << 16, 1 << 12, 0.5, 8, 8);
        let b = extract("b", 110, 1 << 19, 1 << 8, 0.05, 96, 12);
        let mut s1 = MixSolver::new(cfg());
        let mut s2 = MixSolver::new(cfg());
        let x = s1.run(&[&a, &b]);
        let y = s2.run(&[&a, &b]);
        for i in 0..2 {
            assert_eq!(x.slowdowns[i].to_bits(), y.slowdowns[i].to_bits());
            assert_eq!(x.cpi_shared[i].to_bits(), y.cpi_shared[i].to_bits());
        }
    }

    #[test]
    fn permutation_invariance_is_bitwise() {
        let a = extract("a", 60, 1 << 16, 1 << 12, 0.5, 8, 8);
        let b = extract("b", 110, 1 << 19, 1 << 8, 0.05, 96, 12);
        let c = extract("c", 35, 30 << 10, 12 << 10, 0.75, 12, 4);
        let mut s = MixSolver::new(cfg());
        let fwd = s.run(&[&a, &b, &c]);
        let rev = s.run(&[&c, &a, &b]);
        // Slowdowns follow their app, bit for bit.
        assert_eq!(fwd.slowdowns[0].to_bits(), rev.slowdowns[1].to_bits());
        assert_eq!(fwd.slowdowns[1].to_bits(), rev.slowdowns[2].to_bits());
        assert_eq!(fwd.slowdowns[2].to_bits(), rev.slowdowns[0].to_bits());
    }

    #[test]
    fn fitting_working_set_misses_only_cold() {
        // 8k-line working set in a 32k-line LLC: alone misses ≈ compulsory.
        let p = extract("fits", 50, 1 << 13, 1 << 10, 0.5, 4, 4);
        let mut s = MixSolver::new(cfg());
        let sol = s.run(&[&p]);
        assert!(
            sol.miss_alone[0] <= p.cold_frac() + 0.05,
            "miss {} vs cold {}",
            sol.miss_alone[0],
            p.cold_frac()
        );
        assert_eq!(sol.slowdowns[0].to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn more_sharers_mean_more_slowdown() {
        let p = extract("hog", 120, 1 << 20, 8 << 10, 0.3, 2, 10);
        let mut s = MixSolver::new(cfg());
        let two = s.run(&[&p, &p]).slowdowns[0];
        let four = s.run(&[&p, &p, &p, &p]).slowdowns[0];
        assert!(four > two, "two {two} four {four}");
    }

    #[test]
    fn classification_matches_intuition() {
        let c = cfg();
        let compute = extract("light", 2, 1 << 9, 1 << 8, 0.95, 16, 2);
        let cache = extract("cache", 35, 30 << 10, 12 << 10, 0.75, 12, 4);
        let stream = extract("stream", 110, 1 << 19, 1 << 8, 0.05, 96, 12);
        let irreg = extract("irreg", 120, 1 << 20, 8 << 10, 0.3, 2, 10);
        assert_eq!(classify(&compute, c.llc_lines), WorkloadClass::Compute);
        assert_eq!(classify(&cache, c.llc_lines), WorkloadClass::CacheSensitive);
        assert_eq!(classify(&stream, c.llc_lines), WorkloadClass::Streaming);
        assert_eq!(classify(&irreg, c.llc_lines), WorkloadClass::Irregular);
    }

    #[test]
    fn aggregate_metrics_are_consistent() {
        let a = extract("a", 60, 1 << 16, 1 << 12, 0.5, 8, 8);
        let b = extract("b", 110, 1 << 19, 1 << 8, 0.05, 96, 12);
        let mut s = MixSolver::new(cfg());
        let sol = s.run(&[&a, &b]);
        assert!(sol.unfairness() >= 1.0);
        assert!(sol.weighted_speedup() <= 2.0 + 1e-12);
        assert!(sol.harmonic_speedup() <= 1.0 + 1e-12);
    }
}
