//! Offline shim of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of criterion's API the workspace's benches use
//! (`Criterion::benchmark_group`, `sample_size`, `measurement_time`,
//! `bench_function`, `Bencher::iter`, the `criterion_group!` /
//! `criterion_main!` macros). Measurement is honest but simple: each
//! benchmark runs a warm-up pass, then timed samples until either
//! `sample_size` samples have run or `measurement_time` is exhausted,
//! and prints mean/min/max per-iteration wall time. No statistical
//! analysis, plots, or baseline comparison.

use std::time::{Duration, Instant};

/// Entry point handed to every benchmark function.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Open a named group; settings set on the group apply to its benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
            measurement_time,
        }
    }
}

/// A named collection of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Target number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget before sampling. The shim always runs exactly one
    /// warm-up pass (see [`Bencher::iter`]), so this exists for API
    /// compatibility with upstream criterion and is otherwise ignored.
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark and print its per-iteration timing summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples_ns: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            budget: self.measurement_time,
        };
        f(&mut bencher);
        let s = &bencher.samples_ns;
        if s.is_empty() {
            println!("  {}/{id}: no samples (closure never called iter)", self.name);
            return self;
        }
        let mean = s.iter().sum::<u128>() / s.len() as u128;
        let min = *s.iter().min().expect("non-empty checked above");
        let max = *s.iter().max().expect("non-empty checked above");
        println!(
            "  {}/{id}: mean {} min {} max {} ({} samples)",
            self.name,
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            s.len()
        );
        self
    }

    /// Close the group (upstream flushes reports here; we print eagerly).
    pub fn finish(&mut self) {}
}

/// Collects timed samples of the closure under measurement.
pub struct Bencher {
    samples_ns: Vec<u128>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly; one invocation = one sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up (also seeds caches so min is meaningful).
        std::hint::black_box(routine());
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples_ns.push(start.elapsed().as_nanos());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Mirror of `criterion::black_box` (benches import it from `std::hint`
/// today, but keep the re-export for API parity).
pub use std::hint::black_box;

/// Bundle benchmark functions under one name for `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod shim_tests {
    use super::*;

    #[test]
    fn bench_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let mut calls = 0u32;
        g.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        g.finish();
        // warm-up + up to 3 samples
        assert!((2..=4).contains(&calls), "calls = {calls}");
    }

    #[test]
    fn formatting_covers_all_magnitudes() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.500us");
        assert_eq!(fmt_ns(2_500_000), "2.500ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000s");
    }
}
