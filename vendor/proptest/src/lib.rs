//! Offline shim of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the API surface the workspace's property tests
//! use, with the same semantics where it matters:
//!
//! - [`proptest!`] expands each `fn name(arg in strategy, ...) { body }`
//!   item into a plain `#[test]`-able function that runs `body` for
//!   `ProptestConfig::cases` generated inputs.
//! - Strategies ([`Strategy`]) generate values from a deterministic
//!   splitmix64 stream seeded by the case index, so failures reproduce
//!   bit-identically on every run and machine. (Upstream proptest seeds
//!   from OS entropy; determinism is a deliberate upgrade here — it is
//!   also what lets the workspace ban OS entropy in tests.)
//! - `prop_assert!`/`prop_assert_eq!` panic with the formatted message
//!   and the case's generated inputs are implicit in the deterministic
//!   seed, so there is no shrinking or regression-file persistence.
//!   `.proptest-regressions` files are ignored.
//!
//! Not implemented (unused by this workspace): shrinking, `any::<T>()`,
//! `prop_compose!`, filtering/flat-mapping, persistence.

use std::ops::Range;

/// Deterministic splitmix64 generator backing every strategy draw.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A distinct, reproducible stream per (test, case) pair.
    pub fn for_case(case: u64) -> Self {
        // Fixed golden-ratio offset keeps case 0 away from the weak
        // all-zeros state.
        TestRng {
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range handed to strategy");
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % bound
    }
}

/// A generator of test-case values.
///
/// Object-safe so `prop_oneof!` can erase heterogeneous constructors
/// into `Box<dyn Strategy<Value = T>>`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Type-erase a strategy (used by [`prop_oneof!`] expansion).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // 53 uniformly random mantissa bits scaled into the range —
        // upstream's float strategies also draw uniformly (ignoring
        // their special-value bias arms, which callers add explicitly
        // via `prop_oneof!` here).
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + frac * (self.end - self.start)
    }
}

/// Strategy that always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (backs [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from the already-boxed alternatives; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Strategy combinators namespaced like upstream (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `Vec` strategy: length drawn from `size`, elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!`-block execution settings.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Mirror of upstream's `proptest::prelude`, covering what the
/// workspace imports via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// Upstream exposes combinator modules under `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Expand property-test functions into deterministic multi-case tests.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut __proptest_rng = $crate::TestRng::for_case(case);
                    $(let $arg = $crate::Strategy::generate(
                        &$strat,
                        &mut __proptest_rng,
                    );)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Assertion inside a `proptest!` body; panics (no shrinking phase).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Uniformly choose between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod shim_tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds_and_are_deterministic() {
        let mut a = crate::TestRng::for_case(3);
        let mut b = crate::TestRng::for_case(3);
        for _ in 0..1000 {
            let x = (5u64..17).generate(&mut a);
            assert!((5..17).contains(&x));
            assert_eq!(x, (5u64..17).generate(&mut b));
        }
    }

    #[test]
    fn f64_ranges_stay_in_bounds_and_are_deterministic() {
        let mut a = crate::TestRng::for_case(5);
        let mut b = crate::TestRng::for_case(5);
        for _ in 0..1000 {
            let x = (-2.5f64..7.5).generate(&mut a);
            assert!((-2.5..7.5).contains(&x));
            assert_eq!(x.to_bits(), (-2.5f64..7.5).generate(&mut b).to_bits());
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let s = prop::collection::vec(0u64..10, 2..6);
        let mut rng = crate::TestRng::for_case(0);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_covers_every_arm() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::for_case(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_expands(x in 1u32..100, ys in prop::collection::vec(0u64..4, 1..5)) {
            prop_assert!(x >= 1, "x was {}", x);
            prop_assert_eq!(ys.len(), ys.len());
        }
    }
}
