//! Umbrella crate for the ASM (Application Slowdown Model) reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and
//! integration tests can `use asm_repro::...`.
//!
//! # Examples
//!
//! ```
//! use asm_repro::core::{Runner, SystemConfig};
//! use asm_repro::workloads::suite;
//!
//! let mut config = SystemConfig::default();
//! config.quantum = 100_000;
//! config.epoch = 2_000;
//! let apps = vec![
//!     suite::by_name("libquantum_like").unwrap(),
//!     suite::by_name("bzip2_like").unwrap(),
//! ];
//! let result = Runner::new(config).run(&apps, 200_000);
//! assert_eq!(result.quanta.len(), 2);
//! ```

pub use asm_cache as cache;
pub use asm_core as core;
pub use asm_cpu as cpu;
pub use asm_dram as dram;
pub use asm_metrics as metrics;
pub use asm_simcore as simcore;
pub use asm_workloads as workloads;
