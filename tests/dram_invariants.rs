//! Property tests: the DDR3 memory system's end-to-end invariants under
//! random request streams.

use asm_repro::dram::{DramConfig, MemRequest, MemorySystem, SchedulerKind};
use asm_repro::simcore::{AppId, LineAddr};
use proptest::prelude::*;

fn drain(mem: &mut MemorySystem, start: u64, horizon: u64) -> Vec<asm_repro::dram::Completion> {
    let mut out = Vec::new();
    for now in start..horizon {
        mem.tick(now, &mut out);
    }
    out
}

fn scheduler_strategy() -> impl Strategy<Value = SchedulerKind> {
    prop_oneof![
        Just(SchedulerKind::FrFcfs),
        Just(SchedulerKind::Parbs),
        Just(SchedulerKind::Tcm),
        Just(SchedulerKind::Atlas),
        Just(SchedulerKind::Bliss),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_read_completes_exactly_once(
        lines in prop::collection::vec(0u64..10_000, 1..40),
        scheduler in scheduler_strategy(),
    ) {
        let mut mem = MemorySystem::new(DramConfig::default(), scheduler, 4);
        let mut expected = Vec::new();
        for (i, &l) in lines.iter().enumerate() {
            let id = i as u64;
            let app = AppId::new(i % 4);
            if mem.enqueue(MemRequest::read(id, LineAddr::new(l), app, 0)).is_ok() {
                expected.push(id);
            }
        }
        let done = drain(&mut mem, 0, 200_000);
        let mut ids: Vec<u64> = done.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(ids, expected);
    }

    #[test]
    fn completions_respect_causality_and_bus_serialisation(
        lines in prop::collection::vec(0u64..100_000, 2..30),
    ) {
        let config = DramConfig::default(); // single channel
        let burst = config.timing.burst;
        let mut mem = MemorySystem::new(config, SchedulerKind::FrFcfs, 2);
        for (i, &l) in lines.iter().enumerate() {
            let _ = mem.enqueue(MemRequest::read(i as u64, LineAddr::new(l), AppId::new(0), 0));
        }
        let done = drain(&mut mem, 0, 500_000);
        let mut finishes: Vec<u64> = done.iter().map(|c| c.finish).collect();
        for c in &done {
            prop_assert!(c.service_start >= c.arrival);
            prop_assert!(c.finish > c.service_start);
            prop_assert!(c.interference_cycles <= c.finish - c.arrival);
        }
        // One data bus: any two bursts are at least `burst` apart.
        finishes.sort_unstable();
        for w in finishes.windows(2) {
            prop_assert!(w[1] - w[0] >= burst, "bursts overlap: {} then {}", w[0], w[1]);
        }
    }

    #[test]
    fn row_hits_are_never_slower_than_conflicts_on_idle_system(
        row_gap in 1u64..64,
    ) {
        // Access line 0, then either a row hit (same row) or another row of
        // the same bank; the row hit must finish sooner.
        let run = |second: u64| {
            let mut mem = MemorySystem::new(DramConfig::default(), SchedulerKind::FrFcfs, 1);
            mem.enqueue(MemRequest::read(0, LineAddr::new(0), AppId::new(0), 0)).unwrap();
            // Tick until the first request completes, without running past it.
            let mut out = Vec::new();
            let mut now = 0;
            while out.is_empty() {
                mem.tick(now, &mut out);
                now += 1;
            }
            let t0 = now;
            mem.enqueue(MemRequest::read(1, LineAddr::new(second), AppId::new(0), t0)).unwrap();
            let done = drain(&mut mem, t0, t0 + 10_000);
            done[0].finish - t0
        };
        let hit_latency = run(1); // same row
        // Same bank, different row: channel/bank bits keep row 0 col X in
        // bank 0; row r of bank 0 is at line r * 128 * 8 (8 banks).
        let conflict_latency = run(row_gap * 128 * 8);
        prop_assert!(hit_latency < conflict_latency);
    }

    #[test]
    fn deterministic_under_fixed_seed(
        lines in prop::collection::vec(0u64..50_000, 1..30),
        scheduler in scheduler_strategy(),
    ) {
        let run = || {
            let mut mem = MemorySystem::with_seed(DramConfig::default(), scheduler, 4, 7);
            for (i, &l) in lines.iter().enumerate() {
                let _ = mem.enqueue(MemRequest::read(i as u64, LineAddr::new(l), AppId::new(i % 4), 0));
            }
            drain(&mut mem, 0, 300_000)
                .iter()
                .map(|c| (c.id, c.finish))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}

#[test]
fn saturated_system_still_drains() {
    // Fill the read queue completely, then keep ticking: everything must
    // complete despite queue-full backpressure at enqueue time.
    let config = DramConfig::default();
    let cap = config.read_queue_capacity;
    let mut mem = MemorySystem::new(config, SchedulerKind::FrFcfs, 4);
    let mut accepted = 0u64;
    for i in 0..(cap as u64 * 2) {
        let line = LineAddr::new(i * 4096); // spread across rows
        if mem
            .enqueue(MemRequest::read(i, line, AppId::new((i % 4) as usize), 0))
            .is_ok()
        {
            accepted += 1;
        }
    }
    assert_eq!(accepted, cap as u64);
    let done = drain(&mut mem, 0, 2_000_000);
    assert_eq!(done.len(), cap);
}


#[test]
fn bank_partitioned_apps_see_no_cross_interference() {
    use asm_repro::dram::BankPartition;
    // Two apps hammering memory with disjoint bank partitions: neither may
    // accrue interference cycles from the other's bank occupancy.
    let mut config = DramConfig::default();
    config.bank_partition = Some(BankPartition::even(2, 8));
    let mut mem = MemorySystem::new(config, SchedulerKind::FrFcfs, 2);
    let mut out = Vec::new();
    let mut id = 0u64;
    for now in 0..200_000u64 {
        if now % 64 == 0 {
            for app in 0..2u64 {
                let line = LineAddr::new((now / 64) * 7 + app * 1_000_003);
                if mem
                    .enqueue(MemRequest::read(id, line, AppId::new(app as usize), now))
                    .is_ok()
                {
                    id += 1;
                }
            }
        }
        mem.tick(now, &mut out);
    }
    assert!(out.len() > 1_000, "too few completions: {}", out.len());
    for c in &out {
        assert_eq!(
            c.interference_cycles, 0,
            "app {} saw bank interference despite partitioning",
            c.app
        );
    }
}

#[test]
fn all_schedulers_drain_a_heavy_mixed_load() {
    for kind in [
        SchedulerKind::FrFcfs,
        SchedulerKind::Parbs,
        SchedulerKind::Tcm,
        SchedulerKind::Atlas,
        SchedulerKind::Bliss,
    ] {
        let mut mem = MemorySystem::new(DramConfig::default(), kind, 4);
        let mut out = Vec::new();
        let mut sent = 0u64;
        let mut rng = asm_repro::simcore::SimRng::seed_from(kind as u64 + 1);
        for now in 0..1_000_000u64 {
            if sent < 3_000 && now % 16 == 0 {
                let line = LineAddr::new(rng.gen_range(1 << 20));
                if mem
                    .enqueue(MemRequest::read(
                        sent,
                        line,
                        AppId::new((sent % 4) as usize),
                        now,
                    ))
                    .is_ok()
                {
                    sent += 1;
                }
            }
            mem.tick(now, &mut out);
            if out.len() as u64 == sent && sent == 3_000 {
                break;
            }
        }
        assert_eq!(out.len() as u64, sent, "{kind} failed to drain");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The controller's actual schedules must pass the post-hoc timing
    /// audit (bank exclusivity, bus serialisation, tRRD, tFAW) for every
    /// scheduler and random load.
    #[test]
    fn controller_schedules_are_timing_legal(
        lines in prop::collection::vec(0u64..200_000, 5..60),
        scheduler in scheduler_strategy(),
        channels in 1usize..3,
    ) {
        let mut config = DramConfig::default();
        config.channels = channels;
        let timing = config.timing;
        let mut mem = MemorySystem::new(config, scheduler, 4);
        mem.enable_audit();
        for (i, &l) in lines.iter().enumerate() {
            let req = if i % 5 == 0 {
                MemRequest::write(i as u64, LineAddr::new(l), AppId::new(i % 4), 0)
            } else {
                MemRequest::read(i as u64, LineAddr::new(l), AppId::new(i % 4), 0)
            };
            let _ = mem.enqueue(req);
        }
        let _ = drain(&mut mem, 0, 300_000);
        let audit = mem.audit().expect("auditing enabled");
        prop_assert!(!audit.is_empty(), "nothing was recorded");
        let violations = audit.validate(&timing);
        prop_assert!(
            violations.is_empty(),
            "timing violations: {:?}",
            &violations[..violations.len().min(3)]
        );
    }
}
