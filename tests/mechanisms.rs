//! Integration tests for the §7 mechanisms: ASM-Cache, ASM-Mem, ASM-QoS
//! and their baselines, exercised through the full system.

use asm_repro::core::{
    CachePolicy, EstimatorSet, MemPolicy, QosConfig, Runner, System, SystemConfig,
};
use asm_repro::simcore::AppId;
use asm_repro::workloads::suite;

fn mech_config(policy: CachePolicy) -> SystemConfig {
    let mut c = SystemConfig::default();
    c.quantum = 250_000;
    c.epoch = 5_000;
    c.estimators = EstimatorSet::asm_only();
    c.cache_policy = policy;
    c
}

fn cache_mix() -> Vec<asm_repro::cpu::AppProfile> {
    vec![
        suite::by_name("ft_like").unwrap(),
        suite::by_name("dealII_like").unwrap(),
        suite::by_name("lbm_like").unwrap(),
        suite::by_name("libquantum_like").unwrap(),
    ]
}

#[test]
fn partitions_are_complete_and_live() {
    for policy in [CachePolicy::Ucp, CachePolicy::Mcfq, CachePolicy::AsmCache] {
        let mut sys = System::new(&cache_mix(), mech_config(policy));
        sys.run_for(1_000_000);
        let p = sys.current_partition().expect("partition installed");
        assert_eq!(p.total_ways(), 16, "{policy:?} must distribute all ways");
        for i in 0..4 {
            assert!(p.ways_for(AppId::new(i)) >= 1, "{policy:?} starved app{i}");
        }
        // Every record after the first carries the applied partition.
        assert!(sys.records().iter().skip(1).all(|r| r.partition.is_some()));
    }
}

#[test]
fn asm_cache_gives_cache_sensitive_apps_more_ways_than_streamers() {
    let mut sys = System::new(&cache_mix(), mech_config(CachePolicy::AsmCache));
    sys.run_for(2_000_000);
    let p = sys.current_partition().expect("partition");
    let cache_sensitive = p.ways_for(AppId::new(0)) + p.ways_for(AppId::new(1));
    let streamers = p.ways_for(AppId::new(2)) + p.ways_for(AppId::new(3));
    assert!(
        cache_sensitive > streamers,
        "expected ft+dealII ({cache_sensitive}) > lbm+libquantum ({streamers}); partition {:?}",
        p.as_slice()
    );
}

#[test]
fn naive_qos_grants_everything_to_the_target() {
    let target = AppId::new(1);
    let mut sys = System::new(&cache_mix(), mech_config(CachePolicy::NaiveQos(target)));
    sys.run_for(600_000);
    let p = sys.current_partition().expect("partition");
    assert_eq!(p.ways_for(target), 16);
}

#[test]
fn asm_qos_target_allocation_shrinks_with_looser_bounds() {
    let target = AppId::new(0);
    let ways_for_bound = |bound: f64| {
        let mut sys = System::new(
            &cache_mix(),
            mech_config(CachePolicy::AsmQos(QosConfig { target, bound })),
        );
        sys.run_for(1_500_000);
        sys.current_partition().expect("partition").ways_for(target)
    };
    let tight = ways_for_bound(1.05);
    let loose = ways_for_bound(50.0);
    assert!(
        tight >= loose,
        "tight bound should need at least as many ways: tight {tight} vs loose {loose}"
    );
    // An effectively-unbounded target needs only the minimum the model
    // picks for slowdown-1 curves; a near-impossible bound maxes out.
    assert_eq!(tight, 13, "1.05x bound should saturate at ways - 3 others");
}

#[test]
fn asm_mem_shifts_epochs_toward_slow_apps() {
    // A light app next to three heavy streamers: under ASM-Mem the light
    // app's slowdown should not get worse than under uniform epochs, and
    // the heavy apps (higher estimated slowdowns) should receive more
    // prioritised epochs, reducing the maximum slowdown.
    let apps = vec![
        suite::by_name("gcc_like").unwrap(),
        suite::by_name("mcf_like").unwrap(),
        suite::by_name("libquantum_like").unwrap(),
        suite::by_name("lbm_like").unwrap(),
    ];
    let run = |policy: MemPolicy| {
        let mut c = mech_config(CachePolicy::None);
        c.mem_policy = policy;
        let runner = Runner::new(c);
        let r = runner.run(&apps, 2_000_000);
        r.whole_run_slowdowns
            .iter()
            .copied()
            .fold(f64::MIN, f64::max)
    };
    let uniform = run(MemPolicy::Uniform);
    let weighted = run(MemPolicy::SlowdownWeighted);
    assert!(
        weighted <= uniform * 1.1,
        "ASM-Mem should not increase unfairness: uniform {uniform:.2} vs weighted {weighted:.2}"
    );
}

#[test]
fn mechanisms_do_not_break_determinism() {
    let run = || {
        let mut c = mech_config(CachePolicy::AsmCache);
        c.mem_policy = MemPolicy::SlowdownWeighted;
        let mut sys = System::new(&cache_mix(), c);
        sys.run_for(800_000);
        (0..4)
            .map(|i| sys.retired(AppId::new(i)))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn fst_source_throttling_tames_the_interferer() {
    use asm_repro::core::ThrottlePolicy;
    // One light app against three streamers: throttling should not hurt
    // the light app and should reduce (or at least not increase) the
    // spread of slowdowns.
    let apps = vec![
        suite::by_name("gcc_like").unwrap(),
        suite::by_name("libquantum_like").unwrap(),
        suite::by_name("lbm_like").unwrap(),
        suite::by_name("milc_like").unwrap(),
    ];
    let run = |policy: ThrottlePolicy| {
        let mut c = mech_config(CachePolicy::None);
        c.estimators = asm_repro::core::EstimatorSet::all();
        c.throttle_policy = policy;
        let runner = Runner::new(c);
        runner.run(&apps, 1_500_000).whole_run_slowdowns
    };
    let base = run(ThrottlePolicy::None);
    let throttled = run(ThrottlePolicy::Fst {
        unfairness_threshold: 1.4,
    });
    // The victim (gcc) must do at least as well under throttling.
    assert!(
        throttled[0] <= base[0] * 1.05,
        "victim got worse under throttling: {} vs {}",
        throttled[0],
        base[0]
    );
    // And throttling must actually engage deterministically.
    assert_ne!(base, throttled, "throttling had no effect at all");
}
