//! End-to-end accuracy tests: the paper's headline qualitative results
//! must hold at test scale.

use asm_repro::core::{EstimatorSet, Runner, SystemConfig};
use asm_repro::metrics::ErrorAggregate;
use asm_repro::workloads::mix;

fn accuracy_config(sampled: bool) -> SystemConfig {
    let mut c = SystemConfig::default();
    c.quantum = 500_000;
    c.epoch = 10_000;
    c.estimators = EstimatorSet::all();
    c.ats_sampled_sets = if sampled { Some(64) } else { None };
    c
}

/// Mean error per estimator across a few workloads, skipping one warmup
/// quantum per run.
fn mean_errors(sampled: bool, workload_count: usize, cycles: u64) -> Vec<(String, f64)> {
    let runner = Runner::new(accuracy_config(sampled));
    let workloads = mix::random_mixes(workload_count, 4, 1234);
    let mut aggs: Vec<(String, ErrorAggregate)> = Vec::new();
    for w in &workloads {
        let r = runner.run(w, cycles);
        for q in r.quanta.iter().skip(2) {
            for (name, est) in &q.estimates {
                let agg = match aggs.iter_mut().find(|(n, _)| n == name) {
                    Some((_, a)) => a,
                    None => {
                        aggs.push((name.clone(), ErrorAggregate::new()));
                        &mut aggs.last_mut().unwrap().1
                    }
                };
                for (&e, &a) in est.iter().zip(&q.actual) {
                    if a.is_finite() && a > 0.0 {
                        agg.add_error_pct(asm_repro::metrics::estimation_error_pct(e, a));
                    }
                }
            }
        }
    }
    aggs.into_iter()
        .map(|(n, a)| (n, a.mean_pct().unwrap_or(f64::NAN)))
        .collect()
}

fn error_of(errors: &[(String, f64)], name: &str) -> f64 {
    errors
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, e)| *e)
        .expect("estimator present")
}

#[test]
fn asm_is_most_accurate_with_sampling() {
    // Figure 3's headline: with realistic (sampled) hardware budgets, ASM
    // beats both per-request models.
    let errors = mean_errors(true, 4, 3_000_000);
    let asm = error_of(&errors, "ASM");
    let fst = error_of(&errors, "FST");
    let ptca = error_of(&errors, "PTCA");
    assert!(asm < fst, "ASM ({asm:.1}%) should beat FST ({fst:.1}%)");
    assert!(asm < ptca, "ASM ({asm:.1}%) should beat PTCA ({ptca:.1}%)");
    assert!(asm < 30.0, "ASM error too high: {asm:.1}%");
}

#[test]
fn sampling_hurts_ptca_much_more_than_asm() {
    // Figure 2 -> Figure 3 transition: PTCA degrades drastically under ATS
    // sampling; ASM barely moves.
    let unsampled = mean_errors(false, 3, 2_000_000);
    let sampled = mean_errors(true, 3, 2_000_000);
    let asm_delta = error_of(&sampled, "ASM") - error_of(&unsampled, "ASM");
    let ptca_delta = error_of(&sampled, "PTCA") - error_of(&unsampled, "PTCA");
    assert!(
        ptca_delta > asm_delta,
        "sampling should hurt PTCA ({ptca_delta:+.1}%) more than ASM ({asm_delta:+.1}%)"
    );
}

#[test]
fn runner_results_are_reproducible() {
    let a = Runner::new(accuracy_config(true));
    let b = Runner::new(accuracy_config(true));
    let w = mix::random_mixes(1, 4, 99).remove(0);
    let ra = a.run(&w, 1_500_000);
    let rb = b.run(&w, 1_500_000);
    assert_eq!(ra.quanta.len(), rb.quanta.len());
    for (qa, qb) in ra.quanta.iter().zip(&rb.quanta) {
        assert_eq!(qa.actual, qb.actual);
        for ((na, ea), (nb, eb)) in qa.estimates.iter().zip(&qb.estimates) {
            assert_eq!(na, nb);
            assert_eq!(ea, eb);
        }
    }
}
