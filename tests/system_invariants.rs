//! Whole-system integration tests: invariants that span cores, caches,
//! the ATS and main memory.

use asm_repro::core::{EstimatorSet, System, SystemConfig};
use asm_repro::cpu::AppProfile;
use asm_repro::simcore::AppId;
use asm_repro::workloads::suite;

fn small_config() -> SystemConfig {
    let mut c = SystemConfig::default();
    c.quantum = 200_000;
    c.epoch = 5_000;
    c.estimators = EstimatorSet::all();
    c
}

#[test]
fn alone_run_with_full_ats_matches_shared_cache_exactly() {
    // For a single read-only application with a full (unsampled) ATS and no
    // prefetcher, the ATS sees exactly the accesses the shared cache sees
    // and must produce identical hit counts — the strongest cross-check of
    // the "ATS mirrors the alone cache" design.
    let app = AppProfile::builder("readonly")
        .mem_per_kilo(80)
        .working_set_lines(40_000)
        .hot_lines(8_000)
        .hot_frac(0.7)
        .write_frac(0.0)
        .build();
    let mut config = small_config();
    config.ats_sampled_sets = None;
    config.estimators = EstimatorSet::asm_only();
    let mut sys = System::new_alone(&[app], config, AppId::new(0));
    sys.run_for(600_000);
    // In an alone run every epoch belongs to the app, so the ASM record's
    // contention misses should be ~zero: estimates stay at 1.0.
    for r in sys.records() {
        let asm = r.estimates_of("ASM").expect("ASM enabled");
        assert!(
            (asm[0] - 1.0).abs() < 0.15,
            "alone run should estimate ~no slowdown, got {}",
            asm[0]
        );
    }
}

#[test]
fn car_shared_matches_retired_work_direction() {
    // CAR and IPC should move together across quanta (the Figure 1
    // observation, checked inside one run).
    let apps = vec![
        suite::by_name("libquantum_like").unwrap(),
        suite::by_name("mcf_like").unwrap(),
    ];
    let mut sys = System::new(&apps, small_config());
    sys.run_for(1_000_000);
    let records = sys.records();
    assert!(records.len() >= 4);
    for r in records {
        for (i, &car) in r.car_shared.iter().enumerate() {
            let ipc = (r.retired_end[i] - r.retired_start[i]) as f64
                / (r.end_cycle - r.start_cycle) as f64;
            assert!(car > 0.0, "app{i} generated no cache accesses");
            assert!(ipc > 0.0, "app{i} retired nothing");
        }
    }
}

#[test]
fn estimators_present_and_bounded() {
    let apps = vec![
        suite::by_name("soplex_like").unwrap(),
        suite::by_name("h264ref_like").unwrap(),
        suite::by_name("milc_like").unwrap(),
        suite::by_name("gcc_like").unwrap(),
    ];
    let mut sys = System::new(&apps, small_config());
    sys.run_for(800_000);
    for r in sys.records() {
        assert_eq!(r.estimates.len(), 4);
        for (name, est) in &r.estimates {
            assert_eq!(est.len(), 4, "{name} missing apps");
            for &s in est {
                assert!(
                    (1.0..=30.0).contains(&s),
                    "{name} produced implausible slowdown {s}"
                );
            }
        }
    }
}

#[test]
fn no_writebacks_dropped_at_default_config() {
    let apps = vec![
        suite::by_name("lbm_like").unwrap(), // write-heavy streamer
        suite::by_name("libquantum_like").unwrap(),
    ];
    let mut sys = System::new(&apps, small_config());
    sys.run_for(600_000);
    let dropped = sys.dropped_writebacks();
    let retired: u64 = (0..2).map(|i| sys.retired(AppId::new(i))).sum();
    assert!(retired > 10_000);
    // Allow a negligible number under bursts, but not systematic loss.
    assert!(
        dropped < 50,
        "{dropped} writebacks dropped — write path is undersized"
    );
}

#[test]
fn heavier_co_runners_mean_larger_slowdowns() {
    // The same app co-run with light apps vs heavy streamers: ground-truth
    // pressure should show up as lower retired counts.
    let run = |others: &str| {
        let apps = vec![
            suite::by_name("bzip2_like").unwrap(),
            suite::by_name(others).unwrap(),
            suite::by_name(others).unwrap(),
            suite::by_name(others).unwrap(),
        ];
        let mut sys = System::new(&apps, small_config());
        sys.run_for(800_000);
        sys.retired(AppId::new(0))
    };
    let with_light = run("povray_like");
    let with_heavy = run("libquantum_like");
    assert!(
        with_light as f64 > with_heavy as f64 * 1.1,
        "heavy co-runners should slow bzip2 down: light {with_light} vs heavy {with_heavy}"
    );
}

#[test]
fn sixteen_core_system_runs() {
    let apps: Vec<_> = suite::all().into_iter().take(16).collect();
    let mut sys = System::new(&apps, small_config());
    sys.run_for(400_000);
    for i in 0..16 {
        assert!(sys.retired(AppId::new(i)) > 0, "core {i} made no progress");
    }
}

#[test]
fn multi_channel_outperforms_single_channel() {
    let apps = vec![
        suite::by_name("libquantum_like").unwrap(),
        suite::by_name("lbm_like").unwrap(),
        suite::by_name("milc_like").unwrap(),
        suite::by_name("cg_like").unwrap(),
    ];
    let retired_with_channels = |channels: usize| {
        let mut c = small_config();
        c.dram.channels = channels;
        c.estimators = EstimatorSet::asm_only();
        let mut sys = System::new(&apps, c);
        sys.run_for(600_000);
        (0..4).map(|i| sys.retired(AppId::new(i))).sum::<u64>()
    };
    let one = retired_with_channels(1);
    let four = retired_with_channels(4);
    assert!(
        four as f64 > one as f64 * 1.3,
        "4 channels should relieve bandwidth pressure: {one} vs {four}"
    );
}

#[test]
fn app_summary_is_consistent_with_records() {
    let apps = vec![
        suite::by_name("mcf_like").unwrap(),
        suite::by_name("h264ref_like").unwrap(),
    ];
    let mut sys = System::new(&apps, small_config());
    sys.run_for(600_000);
    for i in 0..2 {
        let s = sys.app_summary(AppId::new(i));
        assert_eq!(s.llc_accesses, s.llc_hits + s.llc_misses);
        assert_eq!(s.instructions, sys.retired(AppId::new(i)));
        // CAR from the summary must equal the record-weighted CAR.
        let rec_accesses: f64 = sys
            .records()
            .iter()
            .map(|r| r.car_shared[i] * (r.end_cycle - r.start_cycle) as f64)
            .sum();
        assert!(
            (s.llc_accesses as f64 - rec_accesses).abs() < 1.0,
            "summary {} vs records {rec_accesses}",
            s.llc_accesses
        );
        assert!(s.llc_mpki > 0.0);
    }
}

/// Renders a run's observable results — per-quantum estimates, CARs and
/// retired counts — into the `results_default.txt` textual format. Every
/// f64 is printed with `{:?}` (shortest round-trip), so two renderings
/// are byte-identical iff the underlying values are bit-identical.
fn render_results(sys: &asm_repro::core::System, apps: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("# results (default config)\n");
    for (q, r) in sys.records().iter().enumerate() {
        let _ = writeln!(out, "quantum {q} cycles {}..{}", r.start_cycle, r.end_cycle);
        for (name, est) in &r.estimates {
            let _ = writeln!(out, "  est {name} {est:?}");
        }
        let _ = writeln!(out, "  car {:?}", r.car_shared);
    }
    for i in 0..apps {
        let _ = writeln!(out, "retired app{i} {}", sys.retired(AppId::new(i)));
    }
    out
}

#[test]
fn default_config_runs_are_byte_identical() {
    // The determinism smoke test backing asm-lint rules R1/R4: after the
    // BTreeMap migration of the MSHR and alone-cache there is no hash
    // iteration order left in the simulation, so two back-to-back runs
    // from identical seeds must agree bit-for-bit — checked by writing
    // both reports as `results_default.txt` and comparing raw bytes.
    let run = || {
        let apps = vec![
            suite::by_name("mcf_like").unwrap(),
            suite::by_name("libquantum_like").unwrap(),
            suite::by_name("h264ref_like").unwrap(),
            suite::by_name("povray_like").unwrap(),
        ];
        let mut sys = System::new(&apps, small_config());
        sys.run_for(600_000);
        render_results(&sys, apps.len())
    };
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(dir).expect("target tmpdir is creatable");
    let first_path = dir.join("results_default.txt");
    let second_path = dir.join("results_default_rerun.txt");
    std::fs::write(&first_path, run()).expect("tmpdir is writable");
    std::fs::write(&second_path, run()).expect("tmpdir is writable");
    let first = std::fs::read(&first_path).expect("first report readable");
    let second = std::fs::read(&second_path).expect("rerun report readable");
    assert!(!first.is_empty(), "report should contain quantum records");
    assert_eq!(
        first, second,
        "back-to-back default-config runs diverged — nondeterminism \
         reintroduced (check HashMap/entropy use; see asm-lint R1/R4)"
    );
}

#[test]
fn bank_partitioning_eliminates_bank_interference() {
    use asm_repro::dram::BankPartition;
    let apps = vec![
        suite::by_name("libquantum_like").unwrap(),
        suite::by_name("cg_like").unwrap(),
    ];
    let run = |partition: Option<BankPartition>| {
        let mut c = small_config();
        c.estimators = EstimatorSet::asm_only();
        c.dram.bank_partition = partition;
        let mut sys = System::new(&apps, c);
        sys.run_for(600_000);
        (0..2)
            .map(|i| sys.retired(AppId::new(i)))
            .collect::<Vec<_>>()
    };
    let free = run(None);
    let partitioned = run(Some(BankPartition::even(2, 8)));
    // With each app confined to half the banks, progress changes but both
    // apps must still run; and the partition must be deterministic.
    for (i, &r) in partitioned.iter().enumerate() {
        assert!(r > 1_000, "app{i} starved under bank partitioning");
    }
    assert_ne!(free, partitioned, "partitioning should change behaviour");
}
