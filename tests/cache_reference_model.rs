//! Property test: `SetAssocCache` against an executable reference model.
//!
//! The reference keeps, per set, an explicit MRU-ordered list of tags and
//! replicates unpartitioned true-LRU semantics; the production cache must
//! agree on every hit/miss outcome and every eviction for arbitrary access
//! sequences.

use asm_repro::cache::{CacheGeometry, SetAssocCache};
use asm_repro::simcore::{AppId, LineAddr};
use proptest::prelude::*;

/// Reference model: per-set MRU-ordered tag lists.
struct RefCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    set_mask: u64,
    set_bits: u32,
}

impl RefCache {
    fn new(sets: usize, ways: usize) -> Self {
        RefCache {
            sets: vec![Vec::new(); sets],
            ways,
            set_mask: sets as u64 - 1,
            set_bits: sets.trailing_zeros(),
        }
    }

    /// Returns (hit, evicted line).
    fn access(&mut self, line: u64) -> (bool, Option<u64>) {
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_bits;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            let t = set.remove(pos);
            set.insert(0, t);
            return (true, None);
        }
        let evicted = if set.len() >= self.ways {
            set.pop().map(|t| (t << self.set_bits) | set_idx as u64)
        } else {
            None
        };
        set.insert(0, tag);
        (false, evicted)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_reference_model(
        accesses in prop::collection::vec(0u64..256, 1..400),
        sets_log in 1u32..4,
        ways in 1usize..8,
    ) {
        let sets = 1usize << sets_log;
        let mut cache = SetAssocCache::new(CacheGeometry::new(sets, ways), 1);
        let mut reference = RefCache::new(sets, ways);
        let app = AppId::new(0);
        for &a in &accesses {
            let out = cache.access(LineAddr::new(a), app, false);
            let (ref_hit, ref_evicted) = reference.access(a);
            prop_assert_eq!(out.hit, ref_hit, "hit mismatch on {}", a);
            prop_assert_eq!(
                out.eviction.map(|e| e.line.raw()),
                ref_evicted,
                "eviction mismatch on {}", a
            );
        }
    }

    #[test]
    fn probe_never_mutates(
        accesses in prop::collection::vec(0u64..128, 1..100),
        probes in prop::collection::vec(0u64..128, 1..100),
    ) {
        let mut a = SetAssocCache::new(CacheGeometry::new(8, 4), 1);
        let mut b = SetAssocCache::new(CacheGeometry::new(8, 4), 1);
        let app = AppId::new(0);
        for &x in &accesses {
            a.access(LineAddr::new(x), app, false);
            b.access(LineAddr::new(x), app, false);
        }
        // Interleave probes into `a` only; outcomes must stay identical.
        for &p in &probes {
            let _ = a.probe(LineAddr::new(p));
        }
        for &x in &accesses {
            let oa = a.access(LineAddr::new(x), app, true);
            let ob = b.access(LineAddr::new(x), app, true);
            prop_assert_eq!(oa.hit, ob.hit);
        }
    }

    #[test]
    fn partitioned_cache_never_exceeds_quota_after_convergence(
        seed in 0u64..1000,
        quota0 in 1usize..4,
    ) {
        use asm_repro::cache::WayPartition;
        use asm_repro::simcore::SimRng;
        let ways = 4;
        let mut cache = SetAssocCache::new(CacheGeometry::new(4, ways), 2);
        cache.set_partition(Some(WayPartition::new(vec![quota0, ways - quota0])));
        let mut rng = SimRng::seed_from(seed);
        // Both apps hammer the cache long enough to converge, then check
        // per-set occupancy respects quotas.
        for _ in 0..2_000 {
            let app = AppId::new((rng.next_u64() % 2) as usize);
            let line = LineAddr::new(rng.gen_range(64));
            cache.access(line, app, false);
        }
        // After convergence each app holds at most quota ways per set
        // (checked globally: occupancy <= quota * sets).
        prop_assert!(cache.occupancy(AppId::new(0)) <= quota0 * 4);
        prop_assert!(cache.occupancy(AppId::new(1)) <= (ways - quota0) * 4);
    }
}
