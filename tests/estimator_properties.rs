//! Property tests: every estimator must produce sane output for arbitrary
//! event streams — estimates are finite, at least 1, and reset cleanly
//! between quanta.

use asm_repro::core::estimator::{
    AccessEvent, AsmEstimator, FstEstimator, MiseEstimator, MissEvent, PtcaEstimator, QuantumCtx,
    SlowdownEstimator, StfmEstimator,
};
use asm_repro::simcore::{AppId, LineAddr, SimRng};
use proptest::prelude::*;

const APPS: usize = 4;
const QUANTUM: u64 = 100_000;
const EPOCH: u64 = 1_000;

fn estimators() -> Vec<Box<dyn SlowdownEstimator>> {
    vec![
        Box::new(AsmEstimator::new(APPS, 20, None)),
        Box::new(FstEstimator::new(APPS, 20, None)),
        Box::new(PtcaEstimator::new(APPS, 20, 32.0, None)),
        Box::new(MiseEstimator::new(APPS)),
        Box::new(StfmEstimator::new(APPS)),
    ]
}

/// Drives an estimator with a pseudo-random but internally consistent
/// event stream derived from `seed`.
fn drive(est: &mut dyn SlowdownEstimator, seed: u64, events: usize) {
    let mut rng = SimRng::seed_from(seed);
    let mut now = 0u64;
    let mut owner = None;
    for i in 0..events {
        now += rng.gen_range(200) + 1;
        if i % 13 == 0 {
            owner = if rng.gen_bool(0.8) {
                Some(AppId::new(rng.gen_range(APPS as u64) as usize))
            } else {
                None
            };
            est.on_epoch_start(now, owner);
        }
        let app = AppId::new(rng.gen_range(APPS as u64) as usize);
        let hit = rng.gen_bool(0.5);
        let sampled = rng.gen_bool(0.3);
        est.on_access(&AccessEvent {
            now,
            app,
            line: LineAddr::new(rng.next_u64() >> 40),
            llc_hit: hit,
            ats: sampled.then(|| asm_repro::cache::AtsOutcome {
                hit: rng.gen_bool(0.5),
                recency: None,
            }),
            pollution_hit: rng.gen_bool(0.2),
            epoch_owner: owner,
            is_write: rng.gen_bool(0.25),
        });
        if !hit {
            let latency = rng.gen_range(800) + 50;
            est.on_miss_complete(&MissEvent {
                app,
                line: LineAddr::new(rng.next_u64() >> 40),
                arrival: now,
                finish: now + latency,
                interference_cycles: rng.gen_range(latency),
                concurrent_misses: rng.gen_range(12) + 1,
                epoch_owned_at_issue: owner == Some(app),
                epoch_end: (now / EPOCH + 1) * EPOCH,
                was_ats_hit: sampled.then(|| rng.gen_bool(0.5)),
                pollution_hit: rng.gen_bool(0.2),
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn estimates_are_finite_and_at_least_one(seed in 0u64..10_000, events in 0usize..600) {
        for mut est in estimators() {
            drive(est.as_mut(), seed, events);
            let queueing = vec![0u64; APPS];
            let ctx = QuantumCtx {
                now: QUANTUM,
                quantum: QUANTUM,
                epoch: EPOCH,
                queueing_cycles: &queueing,
                llc_latency: 20,
            };
            let out = est.on_quantum_end(&ctx);
            prop_assert_eq!(out.len(), APPS, "{} wrong arity", est.name());
            for s in out {
                prop_assert!(s.is_finite(), "{} produced {}", est.name(), s);
                prop_assert!(s >= 1.0, "{} produced sub-unity {}", est.name(), s);
                prop_assert!(s <= 50.0, "{} produced implausible {}", est.name(), s);
            }
        }
    }

    #[test]
    fn quantum_end_resets_state(seed in 0u64..10_000) {
        for mut est in estimators() {
            drive(est.as_mut(), seed, 300);
            let queueing = vec![0u64; APPS];
            let ctx = QuantumCtx {
                now: QUANTUM,
                quantum: QUANTUM,
                epoch: EPOCH,
                queueing_cycles: &queueing,
                llc_latency: 20,
            };
            let _ = est.on_quantum_end(&ctx);
            // An empty second quantum must estimate no slowdown everywhere.
            let out = est.on_quantum_end(&ctx);
            for s in out {
                prop_assert_eq!(s, 1.0, "{} kept state across quanta", est.name());
            }
        }
    }

    #[test]
    fn higher_interference_never_lowers_per_request_estimates(
        seed in 0u64..5_000,
        base_latency in 100u64..400,
    ) {
        // For the per-request models, scaling every request's interference
        // up must not reduce the estimate (monotonicity).
        let run = |interference: u64| -> (f64, f64) {
            let mut fst = FstEstimator::new(1, 20, None);
            let mut stfm = StfmEstimator::new(1);
            let mut rng = SimRng::seed_from(seed);
            let mut now = 0;
            for _ in 0..200 {
                now += rng.gen_range(300) + base_latency;
                let ev = MissEvent {
                    app: AppId::new(0),
                    line: LineAddr::new(0),
                    arrival: now,
                    finish: now + base_latency + interference,
                    interference_cycles: interference,
                    concurrent_misses: 2,
                    epoch_owned_at_issue: false,
                    epoch_end: u64::MAX,
                    was_ats_hit: Some(false),
                    pollution_hit: false,
                };
                fst.on_miss_complete(&ev);
                stfm.on_miss_complete(&ev);
            }
            let queueing = [0u64];
            let ctx = QuantumCtx {
                now: QUANTUM,
                quantum: QUANTUM,
                epoch: EPOCH,
                queueing_cycles: &queueing,
                llc_latency: 20,
            };
            (fst.on_quantum_end(&ctx)[0], stfm.on_quantum_end(&ctx)[0])
        };
        let (fst_low, stfm_low) = run(10);
        let (fst_high, stfm_high) = run(300);
        prop_assert!(fst_high >= fst_low, "FST not monotone: {fst_low} -> {fst_high}");
        prop_assert!(stfm_high >= stfm_low, "STFM not monotone: {stfm_low} -> {stfm_high}");
    }
}
