#!/usr/bin/env bash
# Snapshot the simulator's end-to-end throughput into BENCH_<tag>.json.
#
# Runs the `sim_throughput` (end-to-end cycles/sec, skip vs --no-skip),
# `telemetry_overhead` (telemetry off / idle / traced), `frfcfs_pick`
# (scheduler hot path), `lint_workspace` (whole-workspace asm-lint
# pass; hard-gated at <1s), `checkpoint_fork` (38-config sweep,
# cold vs prefix-shared forking; hard-gated at >=2x), `sampled_sweep`
# (the same sweep, full vs representative-interval sampling; hard-gated
# at >=10x) and `attrib_overhead` (the telemetry_overhead run with the
# attribution ledger disabled vs enabled; the disabled cost is gated
# against the previous snapshot by scripts/bench_compare.py, not here)
# bench groups and parses the criterion-shim output lines
#
#   group/id: mean 12.345ms min 11ms max 14ms (10 samples)
#
# into a committed JSON snapshot with machine info, simulated cycles per
# wall-clock second, and the skip-vs-no-skip speedup ratio. Usage:
#
#   scripts/bench_snapshot.sh [tag]     # default tag: pr4
#
# The snapshot is a measurement record, not a gate: the enforced bound
# (>=3x on the memory-intensive mix) lives in the PR acceptance notes
# and can be re-checked from the JSON.
set -euo pipefail

cd "$(dirname "$0")/.."
TAG="${1:-pr4}"
OUT="BENCH_${TAG}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "bench_snapshot: running throughput + telemetry + substrates benches (release)..." >&2
cargo bench -p asm-bench --bench throughput 2>/dev/null | tee -a "$RAW"
# Three spaced repetitions: the telemetry gate compares off-vs-idle at the
# 1% level, far below this container's minute-scale noise swings, so each
# variant needs several measurement windows for its min to reach the
# floor. Repeated lines for the same bench id are merged min-wise below.
for _ in 1 2 3; do
    cargo bench -p asm-bench --bench telemetry_overhead 2>/dev/null | tee -a "$RAW"
done
# Same treatment for the attribution ledger: bench_compare.py gates its
# off variant at 1% against the previous snapshot, so the min needs
# several measurement windows on both sides of that comparison too.
for _ in 1 2 3; do
    cargo bench -p asm-bench --bench attrib_overhead 2>/dev/null | tee -a "$RAW"
done
cargo bench -p asm-bench --bench substrates 2>/dev/null | tee -a "$RAW"
cargo bench -p asm-bench --bench lint_workspace 2>/dev/null | tee -a "$RAW"
cargo bench -p asm-bench --bench analytic_tier 2>/dev/null | tee -a "$RAW"
cargo bench -p asm-bench --bench checkpoint_fork 2>/dev/null | tee -a "$RAW"
cargo bench -p asm-bench --bench sampled_sweep 2>/dev/null | tee -a "$RAW"

python3 - "$RAW" "$OUT" <<'PY'
import json, platform, re, subprocess, sys

raw_path, out_path = sys.argv[1], sys.argv[2]

# `  group/id: mean 12.345ms min 11.000ms max 14.000ms (10 samples)`
# Each field carries its own unit (criterion picks the scale per value:
# a min of 980us next to a mean of 1.02ms is routine), so each field
# must be scaled independently — scaling min/max by the mean's unit is
# how BENCH_pr3.json ended up with a max below its mean.
LINE = re.compile(
    r"^\s+(?P<group>[\w-]+)/(?P<id>[\w-]+): mean (?P<mean>[\d.]+)(?P<mean_unit>ns|us|ms|s) "
    r"min (?P<min>[\d.]+)(?P<min_unit>ns|us|ms|s) max (?P<max>[\d.]+)(?P<max_unit>ns|us|ms|s) "
    r"\((?P<n>\d+) samples\)"
)
UNIT_NS = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}

# Keep in sync with SIM_CYCLES in crates/bench/benches/throughput.rs.
SIM_CYCLES = 10_000_000

results = {}
with open(raw_path, encoding="utf-8") as f:
    for line in f:
        m = LINE.match(line)
        if not m:
            continue
        key = f"{m.group('group')}/{m.group('id')}"
        entry = {
            "mean_ns": float(m.group("mean")) * UNIT_NS[m.group("mean_unit")],
            "min_ns": float(m.group("min")) * UNIT_NS[m.group("min_unit")],
            "max_ns": float(m.group("max")) * UNIT_NS[m.group("max_unit")],
            "samples": int(m.group("n")),
        }
        if not entry["min_ns"] <= entry["mean_ns"] <= entry["max_ns"]:
            sys.exit(
                f"bench_snapshot: insane stats for {key} "
                f"(min {entry['min_ns']} / mean {entry['mean_ns']} / "
                f"max {entry['max_ns']} ns) — parse bug or corrupt output"
            )
        prev = results.get(key)
        if prev is None:
            results[key] = entry
        else:
            # A repeated bench id means deliberate re-measurement (the
            # telemetry gate loop above): pool the samples — min of mins,
            # max of maxes, sample-weighted mean.
            n = prev["samples"] + entry["samples"]
            results[key] = {
                "mean_ns": (
                    prev["mean_ns"] * prev["samples"]
                    + entry["mean_ns"] * entry["samples"]
                ) / n,
                "min_ns": min(prev["min_ns"], entry["min_ns"]),
                "max_ns": max(prev["max_ns"], entry["max_ns"]),
                "samples": n,
            }

# Shared-container noise only ever *adds* time, so the per-iteration
# minimum is the robust estimator; the mean is kept for reference.
def cycles_per_sec(key, stat):
    r = results.get(key)
    if not r:
        return None
    return SIM_CYCLES / (r[stat] / 1e9)

throughput = {}
for mix in ("mcf_mix", "compute_mix"):
    skip = cycles_per_sec(f"sim_throughput/{mix}_10m_skip", "min_ns")
    no_skip = cycles_per_sec(f"sim_throughput/{mix}_10m_no_skip", "min_ns")
    throughput[mix] = {
        "sim_cycles_per_iteration": SIM_CYCLES,
        "skip_cycles_per_sec": skip,
        "no_skip_cycles_per_sec": no_skip,
        "skip_speedup": (skip / no_skip) if skip and no_skip else None,
        "skip_cycles_per_sec_mean": cycles_per_sec(
            f"sim_throughput/{mix}_10m_skip", "mean_ns"
        ),
        "no_skip_cycles_per_sec_mean": cycles_per_sec(
            f"sim_throughput/{mix}_10m_no_skip", "mean_ns"
        ),
    }

def cpu_model():
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as f:
            for line in f:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or "unknown"

def rustc_version():
    try:
        return subprocess.run(
            ["rustc", "--version"], capture_output=True, text=True, check=True
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"

# Telemetry cost on the hot path: idle (counters/series enabled, no
# tracing) is the --stats-json configuration and carries a 1% budget over
# off; traced is informational. Min-based, like everything else here.
telemetry = {}
tel_off = results.get("telemetry_overhead/mcf_mix_10m_off")
tel_idle = results.get("telemetry_overhead/mcf_mix_10m_idle")
tel_traced = results.get("telemetry_overhead/mcf_mix_10m_traced")
if tel_off and tel_idle:
    telemetry = {
        "off_cycles_per_sec": cycles_per_sec("telemetry_overhead/mcf_mix_10m_off", "min_ns"),
        "idle_cycles_per_sec": cycles_per_sec("telemetry_overhead/mcf_mix_10m_idle", "min_ns"),
        "traced_cycles_per_sec": cycles_per_sec(
            "telemetry_overhead/mcf_mix_10m_traced", "min_ns"
        ) if tel_traced else None,
        "idle_over_off_overhead": tel_idle["min_ns"] / tel_off["min_ns"] - 1.0,
    }

# Whole-workspace lint budget: the linter runs inside the tier-1 gate
# (scripts/ci.sh), so its full pass — walk, lex/parse, resolve, call
# graph — is hard-capped at 1s. Min-based like every other stat here;
# missing means the bench did not run, which is itself a failure.
LINT_BUDGET_NS = 1e9
lint = results.get("lint_workspace/full_pass")
if lint is None:
    sys.exit("bench_snapshot: lint_workspace/full_pass missing from bench output")
if lint["min_ns"] > LINT_BUDGET_NS:
    sys.exit(
        f"bench_snapshot: whole-workspace lint took {lint['min_ns'] / 1e6:.1f}ms "
        f"(budget {LINT_BUDGET_NS / 1e6:.0f}ms) — the tier-1 gate would drag"
    )

# Analytic fast tier: mixes solved per second, and the speedup of one
# analytic solve over one cycle-accurate run of a comparable 4-app mix
# (mcf_mix, 10M cycles, skip mode — the cycle tier's best case). The
# ISSUE gate is >=100x; min-based like everything else here.
analytic = {}
ana_1k = results.get("analytic_tier/mixes_1k")
cyc_run = results.get("sim_throughput/mcf_mix_10m_skip")
if ana_1k:
    per_mix_ns = ana_1k["min_ns"] / 1000.0
    analytic = {
        "mixes_per_sec": 1e9 / per_mix_ns,
        "per_mix_ns": per_mix_ns,
        "speedup_vs_cycle_mcf_mix_10m_skip": (
            cyc_run["min_ns"] / per_mix_ns if cyc_run else None
        ),
    }
    ext = results.get("analytic_tier/profile_extract")
    if ext:
        analytic["profile_extract_ns"] = ext["min_ns"]

# Checkpoint forking: one 38-config policy sweep sharing a single warmup
# prefix, cold vs forked (crates/bench/benches/checkpoint_fork.rs). The
# PR acceptance demands >=2x, and unlike the throughput ratios this one
# is a property of the checkpoint machinery itself, not the host — so it
# is a hard gate like the lint budget. Min-based, like everything else.
FORK_GATE = 2.0
fork_cold = results.get("checkpoint_fork/sweep38_cold")
fork_warm = results.get("checkpoint_fork/sweep38_forked")
if fork_cold is None or fork_warm is None:
    sys.exit("bench_snapshot: checkpoint_fork sweep results missing from bench output")
fork_speedup = fork_cold["min_ns"] / fork_warm["min_ns"]
if fork_speedup < FORK_GATE:
    sys.exit(
        f"bench_snapshot: checkpoint forking sped the 38-config sweep up only "
        f"{fork_speedup:.2f}x (gate {FORK_GATE:.1f}x) — prefix sharing is not paying"
    )
checkpoint = {
    "sweep_configs": 38,
    "cold_ns": fork_cold["min_ns"],
    "forked_ns": fork_warm["min_ns"],
    "fork_speedup": fork_speedup,
    "fork_speedup_mean": fork_cold["mean_ns"] / fork_warm["mean_ns"],
}

# Sampled tier: the same 38-config sweep the checkpoint group forks,
# full cycle-accurate vs representative-interval sampling (K = 2
# intervals of 2 quanta, 16M cycles at a 50k quantum; alone cache warm
# on both sides). The PR acceptance demands >=10x wall-clock at the
# accuracy pinned by crates/experiments/tests/sampled_gate.rs; like the
# fork and lint gates this is a property of the machinery, not the
# host, so it is hard-gated here. Min-based, like everything else.
SAMPLED_GATE = 10.0
sampled_full = results.get("sampled_sweep/sweep38_full")
sampled_fast = results.get("sampled_sweep/sweep38_sampled")
if sampled_full is None or sampled_fast is None:
    sys.exit("bench_snapshot: sampled_sweep results missing from bench output")
sampled_speedup = sampled_full["min_ns"] / sampled_fast["min_ns"]
if sampled_speedup < SAMPLED_GATE:
    sys.exit(
        f"bench_snapshot: interval sampling sped the 38-config sweep up only "
        f"{sampled_speedup:.2f}x (gate {SAMPLED_GATE:.1f}x) — the sampled tier is not paying"
    )
sampled = {
    "sweep_configs": 38,
    "full_ns": sampled_full["min_ns"],
    "sampled_ns": sampled_fast["min_ns"],
    "sampled_speedup": sampled_speedup,
    "sampled_speedup_mean": sampled_full["mean_ns"] / sampled_fast["mean_ns"],
}

# Attribution ledger cost: off (hooks compiled in, disabled — the
# default every experiment runs in) vs on. The off-vs-previous-snapshot
# 1% gate lives in bench_compare.py because it needs a baseline file;
# here the pair is recorded and the on-over-off ratio derived.
attrib = {}
att_off = results.get("attrib_overhead/mcf_mix_10m_off")
att_on = results.get("attrib_overhead/mcf_mix_10m_on")
if att_off and att_on:
    attrib = {
        "off_cycles_per_sec": cycles_per_sec("attrib_overhead/mcf_mix_10m_off", "min_ns"),
        "on_cycles_per_sec": cycles_per_sec("attrib_overhead/mcf_mix_10m_on", "min_ns"),
        "on_over_off_overhead": att_on["min_ns"] / att_off["min_ns"] - 1.0,
    }

snapshot = {
    "schema": "asm-bench-snapshot v1",
    "machine": {
        "cpu": cpu_model(),
        "arch": platform.machine(),
        "kernel": platform.release(),
        "rustc": rustc_version(),
    },
    "sim_throughput": throughput,
    "telemetry_overhead": telemetry,
    "analytic_tier": analytic,
    "checkpoint_fork": checkpoint,
    "sampled_sweep": sampled,
    "attrib_overhead": attrib,
    "frfcfs_pick": {
        k.split("/", 1)[1]: v for k, v in results.items() if k.startswith("frfcfs_pick/")
    },
    "lint_workspace": {
        k.split("/", 1)[1]: v for k, v in results.items() if k.startswith("lint_workspace/")
    },
    "raw": results,
}

with open(out_path, "w", encoding="utf-8") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"bench_snapshot: wrote {out_path}", file=sys.stderr)
mcf = throughput.get("mcf_mix", {}).get("skip_speedup")
if mcf is not None:
    print(f"bench_snapshot: mcf_mix skip speedup = {mcf:.2f}x", file=sys.stderr)
tel = telemetry.get("idle_over_off_overhead")
if tel is not None:
    print(f"bench_snapshot: telemetry idle-over-off overhead = {tel:+.2%}", file=sys.stderr)
att = attrib.get("on_over_off_overhead")
if att is not None:
    print(
        f"bench_snapshot: attribution on-over-off overhead = {att:+.2%} "
        "(off-vs-previous-snapshot gate runs in bench_compare.py)",
        file=sys.stderr,
    )
ana = analytic.get("speedup_vs_cycle_mcf_mix_10m_skip")
if ana is not None:
    print(
        f"bench_snapshot: analytic tier = {analytic['mixes_per_sec']:.0f} mixes/sec, "
        f"{ana:.0f}x over one cycle-accurate mcf_mix run",
        file=sys.stderr,
    )
print(
    f"bench_snapshot: checkpoint fork speedup = {fork_speedup:.2f}x on the "
    f"38-config sweep (gate {FORK_GATE:.1f}x)",
    file=sys.stderr,
)
print(
    f"bench_snapshot: whole-workspace lint min = {lint['min_ns'] / 1e6:.1f}ms "
    f"(budget {LINT_BUDGET_NS / 1e6:.0f}ms)",
    file=sys.stderr,
)
print(
    f"bench_snapshot: sampled-tier speedup = {sampled_speedup:.2f}x on the "
    f"38-config sweep (gate {SAMPLED_GATE:.1f}x)",
    file=sys.stderr,
)
PY
