#!/usr/bin/env python3
"""Aggregate every committed BENCH_pr*.json into one trajectory table.

Reads the snapshots scripts/bench_snapshot.sh writes, sorts them by PR
number, and prints a markdown table with one row per headline metric and
one column per PR — the repo's performance history at a glance. All
values are min-based (shared-container noise only ever adds time, so the
per-iteration minimum is the robust estimator), matching bench_compare.py
and the derived sections inside the snapshots themselves. A metric whose
bench group predates a snapshot renders as `—`.

Usage:
    scripts/bench_trend.py                # all BENCH_pr*.json in the repo root
    scripts/bench_trend.py BENCH_pr8.json BENCH_pr9.json

The output is checked into EXPERIMENTS.md ("Benchmark trajectory");
regenerate that section with this script after adding a snapshot.
"""

import glob
import json
import os
import re
import sys


def fmt_cps(ns):
    """Simulated cycles per wall-clock second from a 10M-cycle min."""
    return f"{10_000_000 / (ns / 1e9) / 1e6:.1f}M"


def fmt_ms(ns):
    return f"{ns / 1e6:.1f}ms"


def fmt_us(ns):
    return f"{ns / 1e3:.0f}us"


# (label, raw bench id or derived key, formatter). Raw ids index the
# snapshot's min-merged "raw" section; derived rows compute a ratio of
# two raw mins so every snapshot is treated identically regardless of
# which derived sections it carries.
METRICS = [
    ("sim throughput, mcf mix (cycles/s, skip)", "sim_throughput/mcf_mix_10m_skip", fmt_cps),
    ("sim throughput, mcf mix (cycles/s, no skip)", "sim_throughput/mcf_mix_10m_no_skip", fmt_cps),
    ("skip-mode speedup (mcf mix)",
     ("ratio", "sim_throughput/mcf_mix_10m_no_skip", "sim_throughput/mcf_mix_10m_skip"),
     lambda r: f"{r:.2f}x"),
    ("LLC mixed access, 100k (min)", "cache/llc_access_mixed_100k", fmt_us),
    ("FR-FCFS stream, 2k requests (min)", "dram/stream_2k_requests_FRFCFS", fmt_us),
    ("telemetry idle over off",
     ("overhead", "telemetry_overhead/mcf_mix_10m_idle", "telemetry_overhead/mcf_mix_10m_off"),
     lambda r: f"{r:+.2%}"),
    ("attribution off, mcf mix 10M (min; cross-PR gate in bench_compare.py)",
     "attrib_overhead/mcf_mix_10m_off", fmt_ms),
    ("attribution on over off",
     ("overhead", "attrib_overhead/mcf_mix_10m_on", "attrib_overhead/mcf_mix_10m_off"),
     lambda r: f"{r:+.2%}"),
    ("whole-workspace lint (min)", "lint_workspace/full_pass", fmt_ms),
    ("analytic tier, 1k mixes (min)", "analytic_tier/mixes_1k", fmt_ms),
    ("checkpoint fork speedup (38-config sweep)",
     ("ratio", "checkpoint_fork/sweep38_cold", "checkpoint_fork/sweep38_forked"),
     lambda r: f"{r:.2f}x"),
    ("sampled-tier speedup (38-config sweep)",
     ("ratio", "sampled_sweep/sweep38_full", "sampled_sweep/sweep38_sampled"),
     lambda r: f"{r:.2f}x"),
]


def pr_key(path):
    m = re.search(r"BENCH_pr(\d+)", os.path.basename(path))
    return (int(m.group(1)) if m else 1 << 30, path)


def cell(raw, spec, fmt):
    if isinstance(spec, tuple):
        kind, a, b = spec
        ra, rb = raw.get(a), raw.get(b)
        if not ra or not rb or not rb["min_ns"]:
            return "—"
        ratio = ra["min_ns"] / rb["min_ns"]
        return fmt(ratio - 1.0 if kind == "overhead" else ratio)
    r = raw.get(spec)
    return fmt(r["min_ns"]) if r else "—"


def main():
    paths = sys.argv[1:] or sorted(glob.glob("BENCH_pr*.json"), key=pr_key)
    if not paths:
        sys.exit("bench_trend: no BENCH_pr*.json snapshots found")
    snapshots = []
    for path in sorted(paths, key=pr_key):
        with open(path, encoding="utf-8") as f:
            snapshot = json.load(f)
        raw = snapshot.get("raw")
        if not isinstance(raw, dict):
            sys.exit(f"bench_trend: {path} has no 'raw' section — not a snapshot?")
        tag = re.sub(r"^BENCH_|\.json$", "", os.path.basename(path))
        snapshots.append((tag, raw))

    tags = [t for t, _ in snapshots]
    header = ["metric (min-based)"] + tags
    rows = [[label] + [cell(raw, spec, fmt) for _, raw in snapshots]
            for label, spec, fmt in METRICS]
    widths = [max(len(r[i]) for r in [header] + rows) for i in range(len(header))]

    def line(cells):
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    print(line(header))
    print("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for r in rows:
        print(line(r))
    return 0


if __name__ == "__main__":
    sys.exit(main())
