#!/usr/bin/env bash
# The tier-1 verification chain, in one place instead of three shell
# histories:
#
#   1. cargo build --release --all-targets   (every crate, bench, example)
#   2. cargo test -q                         (unit + integration + doc)
#   3. cargo run -p asm-lint --release       (workspace determinism lint;
#                                             exit 1 on any violation)
#   4. asm-experiments xval --tiny           (analytic-tier smoke: both
#                                             tiers agree on the 7-mix
#                                             CI sweep; full 38-config
#                                             gate lives in the asm-
#                                             experiments test suite)
#   5. checkpoint resume smoke               (kill a checkpointed fig11
#                                             campaign mid-flight, resume
#                                             it, and byte-compare against
#                                             a cold run; then replay the
#                                             finished campaign from its
#                                             manifests and compare again)
#   6. cycle-attribution leg                 (conservation proptest; the
#                                             ledger is observation-only —
#                                             attribution artefacts on vs
#                                             off leaves every experiment's
#                                             stdout byte-identical; and
#                                             the --attrib report + both
#                                             artefacts are byte-identical
#                                             across --jobs 1 and 4)
#
# Usage:
#   scripts/ci.sh                 # tier-1 only (~minutes)
#   CI_FULL=1 scripts/ci.sh       # also runs the enforced xval accuracy
#                                 # gate at --reduced scale (15 workloads,
#                                 # 8M cycles); a FAIL verdict fails CI
#   scripts/ci.sh --bench TAG     # tier-1, then a bench snapshot named
#                                 # BENCH_TAG.json compared against the
#                                 # newest committed BENCH_*.json with
#                                 # scripts/bench_compare.py (hot-path
#                                 # regression + telemetry + lint-budget
#                                 # gates)
#
# The bench leg is opt-in because a meaningful snapshot needs ~10 quiet
# minutes of machine time; the lint <1s budget is still enforced on
# every bench run via bench_snapshot.sh itself.
set -euo pipefail

cd "$(dirname "$0")/.."

BENCH_TAG=""
while [[ $# -gt 0 ]]; do
    case "$1" in
        --bench)
            [[ $# -ge 2 ]] || { echo "ci: --bench needs a tag" >&2; exit 2; }
            BENCH_TAG="$2"
            shift 2
            ;;
        -h|--help)
            sed -n '2,43p' "$0" | sed 's/^# \{0,1\}//'
            exit 0
            ;;
        *)
            echo "ci: unknown argument '$1' (try --help)" >&2
            exit 2
            ;;
    esac
done

echo "ci: [1/6] cargo build --release --all-targets" >&2
cargo build --release --all-targets

echo "ci: [2/6] cargo test -q" >&2
cargo test -q

echo "ci: [3/6] cargo run -p asm-lint --release" >&2
cargo run -p asm-lint --release

echo "ci: [4/6] asm-experiments xval --tiny (analytic-tier smoke)" >&2
cargo run -q -p asm-experiments --release -- xval --tiny

# CI_FULL=1 promotes the xval smoke to an enforced accuracy gate at a
# suite scale (15 workloads, 8M cycles): the run prints PASS/FAIL
# against the 10% sweep-geomean threshold, and FAIL fails the chain.
# Opt-in because the cycle-accurate side of the sweep needs several
# quiet minutes.
if [[ "${CI_FULL:-0}" == "1" ]]; then
    echo "ci: [4/6] CI_FULL=1 — enforced xval gate (--reduced)" >&2
    XVAL_OUT="$(cargo run -q -p asm-experiments --release -- xval --reduced)"
    printf '%s\n' "$XVAL_OUT"
    if ! grep -q "PASS$" <<<"$XVAL_OUT"; then
        echo "ci: FAIL — full xval gate did not pass" >&2
        exit 1
    fi
fi

echo "ci: [5/6] checkpoint resume smoke (kill mid-campaign, resume, byte-compare)" >&2
EXP=target/release/asm-experiments
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
"$EXP" fig11 > "$SMOKE/cold.txt" 2>/dev/null
# Kill the checkpointed campaign mid-flight (SIGKILL: no graceful
# shutdown — atomic artefact writes are the only durability mechanism).
# Wherever the kill lands — before the warmup snapshot, between
# manifests, or after the table printed — the resumed run must emit
# byte-identical stdout; `|| true` also covers the campaign finishing
# early on a fast machine.
timeout -s KILL 1.5 "$EXP" fig11 --checkpoint-dir "$SMOKE/ckpt" >/dev/null 2>&1 || true
"$EXP" fig11 --checkpoint-dir "$SMOKE/ckpt" --resume > "$SMOKE/resumed.txt" 2>/dev/null
cmp "$SMOKE/cold.txt" "$SMOKE/resumed.txt" || {
    echo "ci: FAIL — resumed campaign stdout differs from the cold run" >&2
    exit 1
}
# Second resume: every manifest now exists, so the whole campaign replays
# from disk without simulating a cycle — and must still match.
"$EXP" fig11 --checkpoint-dir "$SMOKE/ckpt" --resume > "$SMOKE/replayed.txt" 2>/dev/null
cmp "$SMOKE/cold.txt" "$SMOKE/replayed.txt" || {
    echo "ci: FAIL — manifest-replayed campaign stdout differs from the cold run" >&2
    exit 1
}

echo "ci: [6/6] cycle-attribution leg (conservation, on-vs-off, --jobs differential)" >&2
# The conservation invariant, by name: randomized SystemConfigs where
# every quantum's ledger rows and blame rows must sum — in integers —
# to the quantum cycle count. Also part of step 2's suite; named here so
# a conservation break is called out as such, not as "a test failed".
cargo test -q -p asm-core --test attrib_conservation_prop > /dev/null
# The ledger is observation-only: collecting attribution artefacts must
# not change a single stdout byte, on any experiment.
"$EXP" all --tiny > "$SMOKE/all_off.txt" 2>/dev/null
"$EXP" all --tiny --attrib-csv "$SMOKE/all_attrib.csv" --blame-json "$SMOKE/all_blame.json" \
    > "$SMOKE/all_on.txt" 2>/dev/null
cmp "$SMOKE/all_off.txt" "$SMOKE/all_on.txt" || {
    echo "ci: FAIL — attribution artefacts changed experiment stdout" >&2
    exit 1
}
[[ -s "$SMOKE/all_attrib.csv" && -s "$SMOKE/all_blame.json" ]] || {
    echo "ci: FAIL — attribution artefacts were not written" >&2
    exit 1
}
# And the ledger itself is deterministic across worker counts: the
# printed --attrib report and both artefacts byte-identical for 1 vs 4.
for j in 1 4; do
    "$EXP" fig11 --tiny --jobs "$j" --attrib \
        --attrib-csv "$SMOKE/attrib_j$j.csv" --blame-json "$SMOKE/blame_j$j.json" \
        > "$SMOKE/fig11_attrib_j$j.txt" 2>/dev/null
done
for f in fig11_attrib_j#.txt attrib_j#.csv blame_j#.json; do
    cmp "$SMOKE/${f/\#/1}" "$SMOKE/${f/\#/4}" || {
        echo "ci: FAIL — ${f/\#*/} differs between --jobs 1 and --jobs 4" >&2
        exit 1
    }
done

if [[ -n "$BENCH_TAG" ]]; then
    baseline="$(ls -1 BENCH_*.json 2>/dev/null | sort | tail -n1 || true)"
    echo "ci: [bench] snapshot -> BENCH_${BENCH_TAG}.json" >&2
    scripts/bench_snapshot.sh "$BENCH_TAG"
    if [[ -n "$baseline" && "$baseline" != "BENCH_${BENCH_TAG}.json" ]]; then
        echo "ci: [bench] compare $baseline -> BENCH_${BENCH_TAG}.json" >&2
        scripts/bench_compare.py "$baseline" "BENCH_${BENCH_TAG}.json"
    else
        echo "ci: [bench] no prior snapshot to compare against" >&2
    fi
fi

echo "ci: all gates green" >&2
