#!/usr/bin/env bash
# The tier-1 verification chain, in one place instead of three shell
# histories:
#
#   1. cargo build --release --all-targets   (every crate, bench, example)
#   2. cargo test -q                         (unit + integration + doc)
#   3. cargo run -p asm-lint --release       (workspace determinism lint;
#                                             exit 1 on any violation)
#   4. asm-experiments xval --tiny           (analytic-tier smoke: both
#                                             tiers agree on the 7-mix
#                                             CI sweep; full 38-config
#                                             gate lives in the asm-
#                                             experiments test suite)
#   5. checkpoint resume smoke               (kill a checkpointed fig11
#                                             campaign mid-flight, resume
#                                             it, and byte-compare against
#                                             a cold run; then replay the
#                                             finished campaign from its
#                                             manifests and compare again)
#
# Usage:
#   scripts/ci.sh                 # tier-1 only (~minutes)
#   CI_FULL=1 scripts/ci.sh       # also runs the enforced xval accuracy
#                                 # gate at --reduced scale (15 workloads,
#                                 # 8M cycles); a FAIL verdict fails CI
#   scripts/ci.sh --bench TAG     # tier-1, then a bench snapshot named
#                                 # BENCH_TAG.json compared against the
#                                 # newest committed BENCH_*.json with
#                                 # scripts/bench_compare.py (hot-path
#                                 # regression + telemetry + lint-budget
#                                 # gates)
#
# The bench leg is opt-in because a meaningful snapshot needs ~10 quiet
# minutes of machine time; the lint <1s budget is still enforced on
# every bench run via bench_snapshot.sh itself.
set -euo pipefail

cd "$(dirname "$0")/.."

BENCH_TAG=""
while [[ $# -gt 0 ]]; do
    case "$1" in
        --bench)
            [[ $# -ge 2 ]] || { echo "ci: --bench needs a tag" >&2; exit 2; }
            BENCH_TAG="$2"
            shift 2
            ;;
        -h|--help)
            sed -n '2,21p' "$0" | sed 's/^# \{0,1\}//'
            exit 0
            ;;
        *)
            echo "ci: unknown argument '$1' (try --help)" >&2
            exit 2
            ;;
    esac
done

echo "ci: [1/5] cargo build --release --all-targets" >&2
cargo build --release --all-targets

echo "ci: [2/5] cargo test -q" >&2
cargo test -q

echo "ci: [3/5] cargo run -p asm-lint --release" >&2
cargo run -p asm-lint --release

echo "ci: [4/5] asm-experiments xval --tiny (analytic-tier smoke)" >&2
cargo run -q -p asm-experiments --release -- xval --tiny

# CI_FULL=1 promotes the xval smoke to an enforced accuracy gate at a
# suite scale (15 workloads, 8M cycles): the run prints PASS/FAIL
# against the 10% sweep-geomean threshold, and FAIL fails the chain.
# Opt-in because the cycle-accurate side of the sweep needs several
# quiet minutes.
if [[ "${CI_FULL:-0}" == "1" ]]; then
    echo "ci: [4/5] CI_FULL=1 — enforced xval gate (--reduced)" >&2
    XVAL_OUT="$(cargo run -q -p asm-experiments --release -- xval --reduced)"
    printf '%s\n' "$XVAL_OUT"
    if ! grep -q "PASS$" <<<"$XVAL_OUT"; then
        echo "ci: FAIL — full xval gate did not pass" >&2
        exit 1
    fi
fi

echo "ci: [5/5] checkpoint resume smoke (kill mid-campaign, resume, byte-compare)" >&2
EXP=target/release/asm-experiments
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
"$EXP" fig11 > "$SMOKE/cold.txt" 2>/dev/null
# Kill the checkpointed campaign mid-flight (SIGKILL: no graceful
# shutdown — atomic artefact writes are the only durability mechanism).
# Wherever the kill lands — before the warmup snapshot, between
# manifests, or after the table printed — the resumed run must emit
# byte-identical stdout; `|| true` also covers the campaign finishing
# early on a fast machine.
timeout -s KILL 1.5 "$EXP" fig11 --checkpoint-dir "$SMOKE/ckpt" >/dev/null 2>&1 || true
"$EXP" fig11 --checkpoint-dir "$SMOKE/ckpt" --resume > "$SMOKE/resumed.txt" 2>/dev/null
cmp "$SMOKE/cold.txt" "$SMOKE/resumed.txt" || {
    echo "ci: FAIL — resumed campaign stdout differs from the cold run" >&2
    exit 1
}
# Second resume: every manifest now exists, so the whole campaign replays
# from disk without simulating a cycle — and must still match.
"$EXP" fig11 --checkpoint-dir "$SMOKE/ckpt" --resume > "$SMOKE/replayed.txt" 2>/dev/null
cmp "$SMOKE/cold.txt" "$SMOKE/replayed.txt" || {
    echo "ci: FAIL — manifest-replayed campaign stdout differs from the cold run" >&2
    exit 1
}

if [[ -n "$BENCH_TAG" ]]; then
    baseline="$(ls -1 BENCH_*.json 2>/dev/null | sort | tail -n1 || true)"
    echo "ci: [bench] snapshot -> BENCH_${BENCH_TAG}.json" >&2
    scripts/bench_snapshot.sh "$BENCH_TAG"
    if [[ -n "$baseline" && "$baseline" != "BENCH_${BENCH_TAG}.json" ]]; then
        echo "ci: [bench] compare $baseline -> BENCH_${BENCH_TAG}.json" >&2
        scripts/bench_compare.py "$baseline" "BENCH_${BENCH_TAG}.json"
    else
        echo "ci: [bench] no prior snapshot to compare against" >&2
    fi
fi

echo "ci: all gates green" >&2
