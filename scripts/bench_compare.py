#!/usr/bin/env python3
"""Compare two bench snapshots produced by scripts/bench_snapshot.sh.

Prints a per-benchmark ratio table (min-based: shared-container noise
only ever adds time, so the per-iteration minimum is the robust
estimator) and exits non-zero when any named hot-path benchmark regresses
by more than the threshold.

Additionally gates two properties *within* the new snapshot: when the
`telemetry_overhead` group is present, the idle configuration (counters
+ series enabled, the `--stats-json` path) may cost at most
--telemetry-threshold (default 1%) over the off configuration; and when
the `checkpoint_fork` group is present, prefix-shared forking must keep
the 38-config sweep at least --fork-threshold (default 2x) faster than
running it cold; and when the `sampled_sweep` group is present,
representative-interval sampling must keep the same sweep at least
--sampled-threshold (default 10x) faster than running it full.

One gate crosses the snapshots: when the new snapshot carries the
`attrib_overhead` group, its off configuration (attribution compiled in
but disabled — the default every experiment runs in) may cost at most
--attrib-threshold (default 1%) over the *old* snapshot's off run —
`attrib_overhead/mcf_mix_10m_off` when the baseline has it, else
`telemetry_overhead/mcf_mix_10m_off` (the identical run from before the
ledger hooks existed). The on configuration is reported but not gated.

Usage:
    scripts/bench_compare.py BENCH_pr3.json BENCH_pr4.json
    scripts/bench_compare.py --threshold 0.10 old.json new.json
    scripts/bench_compare.py --hot cache/llc_access_mixed_100k old.json new.json

A ratio > 1 means the new snapshot is faster (old_min / new_min); a
hot-path ratio below (1 - threshold) fails the run. Benchmarks present in
only one snapshot are listed but never gate.
"""

import argparse
import json
import sys

# Benchmarks that sit on the simulation hot path; a regression here slows
# every experiment sweep. Kept in sync with the bench ids in
# crates/bench/benches/{substrates,throughput}.rs.
DEFAULT_HOT_PATHS = [
    "cache/llc_access_mixed_100k",
    "cache/ats_sampled_access_100k",
    "cache/pollution_filter_100k",
    "dram/stream_2k_requests_FRFCFS",
    "sim_throughput/mcf_mix_10m_skip",
    "sim_throughput/compute_mix_10m_no_skip",
    "analytic_tier/mixes_1k",
]


def load_raw(path):
    with open(path, encoding="utf-8") as f:
        snapshot = json.load(f)
    raw = snapshot.get("raw")
    if not isinstance(raw, dict):
        sys.exit(f"bench_compare: {path} has no 'raw' section — not a snapshot?")
    return raw


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline snapshot (e.g. BENCH_pr3.json)")
    parser.add_argument("new", help="candidate snapshot (e.g. BENCH_pr4.json)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="max tolerated hot-path regression as a fraction (default 0.25)",
    )
    parser.add_argument(
        "--hot",
        action="append",
        default=None,
        metavar="BENCH",
        help="hot-path benchmark name to gate on (repeatable; "
        "default: the built-in hot-path list)",
    )
    parser.add_argument(
        "--telemetry-threshold",
        type=float,
        default=0.01,
        help="max tolerated idle-telemetry overhead over telemetry-off "
        "in the new snapshot, as a fraction (default 0.01)",
    )
    parser.add_argument(
        "--fork-threshold",
        type=float,
        default=2.0,
        help="min required cold-over-forked speedup on the checkpoint_fork "
        "sweep in the new snapshot (default 2.0)",
    )
    parser.add_argument(
        "--sampled-threshold",
        type=float,
        default=10.0,
        help="min required full-over-sampled speedup on the sampled_sweep "
        "sweep in the new snapshot (default 10.0)",
    )
    parser.add_argument(
        "--attrib-threshold",
        type=float,
        default=0.01,
        help="max tolerated attribution-disabled cost over the baseline "
        "snapshot's off run, as a fraction (default 0.01)",
    )
    args = parser.parse_args()

    old, new = load_raw(args.old), load_raw(args.new)
    hot = set(args.hot if args.hot is not None else DEFAULT_HOT_PATHS)

    names = sorted(set(old) | set(new))
    width = max(len(n) for n in names)
    print(f"{'benchmark':<{width}}  {'old min':>12}  {'new min':>12}  {'ratio':>7}  gate")

    failures = []
    for name in names:
        o, n = old.get(name), new.get(name)
        if o is None or n is None:
            side = "old" if n is None else "new"
            print(f"{name:<{width}}  {'—':>12}  {'—':>12}  {'—':>7}  ({side} only)")
            continue
        o_min, n_min = o["min_ns"], n["min_ns"]
        ratio = o_min / n_min if n_min else float("inf")
        gated = name in hot
        verdict = ""
        if gated:
            verdict = "hot"
            if ratio < 1.0 - args.threshold:
                verdict = "hot REGRESSED"
                failures.append((name, ratio))
        print(
            f"{name:<{width}}  {o_min:>12.0f}  {n_min:>12.0f}  {ratio:>6.2f}x  {verdict}"
        )

    missing_hot = sorted(h for h in hot if h not in old or h not in new)
    for h in missing_hot:
        print(f"bench_compare: note: hot-path bench {h} missing from a snapshot",
              file=sys.stderr)

    # Within-snapshot telemetry gate: idle (counters + series on) vs off.
    tel_off = new.get("telemetry_overhead/mcf_mix_10m_off")
    tel_idle = new.get("telemetry_overhead/mcf_mix_10m_idle")
    if tel_off and tel_idle:
        overhead = tel_idle["min_ns"] / tel_off["min_ns"] - 1.0
        print(
            f"bench_compare: telemetry idle-over-off overhead = {overhead:+.2%} "
            f"(budget {args.telemetry_threshold:.0%})",
            file=sys.stderr,
        )
        if overhead > args.telemetry_threshold:
            failures.append(
                ("telemetry_overhead/mcf_mix_10m_idle", 1.0 / (1.0 + overhead))
            )
            print(
                f"bench_compare: FAIL idle telemetry costs {overhead:.2%} over off "
                f"(budget {args.telemetry_threshold:.0%})",
                file=sys.stderr,
            )

    # Within-snapshot checkpoint gate: the 38-config sweep forked from one
    # shared warmup snapshot vs the same sweep run cold.
    fork_cold = new.get("checkpoint_fork/sweep38_cold")
    fork_warm = new.get("checkpoint_fork/sweep38_forked")
    if fork_cold and fork_warm:
        speedup = fork_cold["min_ns"] / fork_warm["min_ns"]
        print(
            f"bench_compare: checkpoint fork speedup = {speedup:.2f}x "
            f"(gate {args.fork_threshold:.1f}x)",
            file=sys.stderr,
        )
        if speedup < args.fork_threshold:
            failures.append(("checkpoint_fork/sweep38_forked", speedup))
            print(
                f"bench_compare: FAIL checkpoint forking sped the sweep up only "
                f"{speedup:.2f}x (gate {args.fork_threshold:.1f}x)",
                file=sys.stderr,
            )

    # Within-snapshot sampled-tier gate: the 38-config sweep estimated
    # from representative intervals vs the same sweep run full.
    smp_full = new.get("sampled_sweep/sweep38_full")
    smp_fast = new.get("sampled_sweep/sweep38_sampled")
    if smp_full and smp_fast:
        speedup = smp_full["min_ns"] / smp_fast["min_ns"]
        print(
            f"bench_compare: sampled-tier speedup = {speedup:.2f}x "
            f"(gate {args.sampled_threshold:.1f}x)",
            file=sys.stderr,
        )
        if speedup < args.sampled_threshold:
            failures.append(("sampled_sweep/sweep38_sampled", speedup))
            print(
                f"bench_compare: FAIL interval sampling sped the sweep up only "
                f"{speedup:.2f}x (gate {args.sampled_threshold:.1f}x)",
                file=sys.stderr,
            )

    # Cross-snapshot attribution gate: disabled ledger hooks must stay
    # within --attrib-threshold of the baseline's identical off run (the
    # same config as telemetry_overhead's off bench in older snapshots).
    att_off = new.get("attrib_overhead/mcf_mix_10m_off")
    att_base = old.get("attrib_overhead/mcf_mix_10m_off") or old.get(
        "telemetry_overhead/mcf_mix_10m_off"
    )
    if att_off and att_base:
        overhead = att_off["min_ns"] / att_base["min_ns"] - 1.0
        print(
            f"bench_compare: attribution-off over baseline off = {overhead:+.2%} "
            f"(budget {args.attrib_threshold:.0%})",
            file=sys.stderr,
        )
        if overhead > args.attrib_threshold:
            failures.append(
                ("attrib_overhead/mcf_mix_10m_off", 1.0 / (1.0 + overhead))
            )
            print(
                f"bench_compare: FAIL disabled attribution costs {overhead:.2%} "
                f"over the baseline off run (budget {args.attrib_threshold:.0%})",
                file=sys.stderr,
            )
    att_on = new.get("attrib_overhead/mcf_mix_10m_on")
    if att_off and att_on:
        overhead = att_on["min_ns"] / att_off["min_ns"] - 1.0
        print(
            f"bench_compare: attribution on-over-off = {overhead:+.2%} "
            "(informational, not gated)",
            file=sys.stderr,
        )

    if failures:
        for name, ratio in failures:
            print(
                f"bench_compare: FAIL {name} regressed to {ratio:.2f}x "
                f"(threshold {1.0 - args.threshold:.2f}x)",
                file=sys.stderr,
            )
        return 1
    print(
        f"bench_compare: OK — no hot-path bench regressed more than "
        f"{args.threshold:.0%}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
