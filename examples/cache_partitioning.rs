//! Slowdown-aware cache partitioning (ASM-Cache, §7.1).
//!
//! Co-runs two cache-sensitive applications with two streaming
//! applications and compares three shared-cache policies on the same
//! memory substrate: free-for-all LRU, utility-based partitioning (UCP)
//! and slowdown-aware partitioning (ASM-Cache). Prints each scheme's
//! per-application slowdowns, unfairness and the final way partition.
//!
//! Run with: `cargo run --release --example cache_partitioning`

use asm_repro::core::{CachePolicy, EstimatorSet, Runner, SystemConfig};
use asm_repro::metrics::{harmonic_speedup, max_slowdown, Table};
use asm_repro::workloads::suite;

fn config_for(policy: CachePolicy) -> SystemConfig {
    let mut c = SystemConfig::default();
    c.quantum = 1_000_000;
    c.epoch = 10_000;
    c.estimators = EstimatorSet::asm_only();
    c.cache_policy = policy;
    c
}

fn main() {
    let apps = vec![
        suite::by_name("ft_like").expect("profile"), // cache-sensitive
        suite::by_name("dealII_like").expect("profile"), // cache-sensitive
        suite::by_name("lbm_like").expect("profile"), // streaming
        suite::by_name("cg_like").expect("profile"), // irregular memory-bound
    ];
    let cycles = 10_000_000;

    let mut table = Table::new(vec![
        "policy".into(),
        "ft".into(),
        "dealII".into(),
        "lbm".into(),
        "cg".into(),
        "max slowdown".into(),
        "harmonic speedup".into(),
        "final partition".into(),
    ]);

    for (name, policy) in [
        ("LRU (no partition)", CachePolicy::None),
        ("UCP", CachePolicy::Ucp),
        ("ASM-Cache", CachePolicy::AsmCache),
    ] {
        let runner = Runner::new(config_for(policy));
        println!("running {name}...");
        let r = runner.run(&apps, cycles);
        let s = &r.whole_run_slowdowns;
        let partition = r
            .quanta
            .last()
            .and_then(|q| q.partition.clone())
            .map_or("-".to_owned(), |p| format!("{p:?}"));
        table.row(vec![
            name.into(),
            format!("{:.2}", s[0]),
            format!("{:.2}", s[1]),
            format!("{:.2}", s[2]),
            format!("{:.2}", s[3]),
            format!("{:.2}", max_slowdown(s).unwrap_or(f64::NAN)),
            format!("{:.3}", harmonic_speedup(s).unwrap_or(f64::NAN)),
            partition,
        ]);
    }
    println!("{table}");
    println!("ASM-Cache allocates ways by marginal *slowdown* utility, so the");
    println!("streaming applications (which cannot use capacity) are confined and");
    println!("the cache-sensitive ones keep their working sets.");
}
