//! Soft slowdown guarantees (ASM-QoS, §7.3).
//!
//! Marks one application as latency-critical and asks ASM-QoS to keep its
//! slowdown under a bound while hurting the co-runners as little as
//! possible; contrasts with Naive-QoS (all cache ways to the critical
//! application).
//!
//! Run with: `cargo run --release --example qos_guarantee`

use asm_repro::core::{CachePolicy, EstimatorSet, QosConfig, Runner, SystemConfig};
use asm_repro::metrics::Table;
use asm_repro::simcore::AppId;
use asm_repro::workloads::suite;

fn config_for(policy: CachePolicy) -> SystemConfig {
    let mut c = SystemConfig::default();
    c.quantum = 1_000_000;
    c.epoch = 10_000;
    c.estimators = EstimatorSet::asm_only();
    c.cache_policy = policy;
    c
}

fn main() {
    let apps = vec![
        suite::by_name("h264ref_like").expect("profile"), // latency-critical
        suite::by_name("soplex_like").expect("profile"),
        suite::by_name("sphinx3_like").expect("profile"),
        suite::by_name("milc_like").expect("profile"),
    ];
    let target = AppId::new(0);
    let cycles = 8_000_000;

    let mut table = Table::new(vec![
        "scheme".into(),
        "h264ref (critical)".into(),
        "soplex".into(),
        "sphinx3".into(),
        "milc".into(),
    ]);

    let mut schemes = vec![("Naive-QoS".to_owned(), CachePolicy::NaiveQos(target))];
    for bound in [2.0, 3.0, 4.0] {
        schemes.push((
            format!("ASM-QoS-{bound}"),
            CachePolicy::AsmQos(QosConfig { target, bound }),
        ));
    }

    for (name, policy) in schemes {
        let runner = Runner::new(config_for(policy));
        println!("running {name}...");
        let r = runner.run(&apps, cycles);
        let s = &r.whole_run_slowdowns;
        table.row(vec![
            name,
            format!("{:.2}x", s[0]),
            format!("{:.2}x", s[1]),
            format!("{:.2}x", s[2]),
            format!("{:.2}x", s[3]),
        ]);
    }
    println!("{table}");
    println!("Looser bounds let ASM-QoS return cache ways to the co-runners,");
    println!("reducing their slowdowns while the critical app stays within budget.");
}
