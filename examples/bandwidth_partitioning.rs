//! Slowdown-aware memory-bandwidth partitioning (ASM-Mem, §7.2).
//!
//! Compares FR-FCFS (application-unaware), uniform epoch prioritisation,
//! and ASM-Mem (epochs assigned with probability proportional to each
//! application's estimated slowdown) on a bandwidth-heavy mix.
//!
//! Run with: `cargo run --release --example bandwidth_partitioning`

use asm_repro::core::{EstimatorSet, MemPolicy, Runner, SystemConfig};
use asm_repro::metrics::{harmonic_speedup, max_slowdown, Table};
use asm_repro::workloads::suite;

fn main() {
    let apps = vec![
        suite::by_name("mcf_like").expect("profile"),
        suite::by_name("libquantum_like").expect("profile"),
        suite::by_name("lbm_like").expect("profile"),
        suite::by_name("gcc_like").expect("profile"), // light app, easily starved
    ];
    let cycles = 8_000_000;

    let schemes: Vec<(&str, bool, MemPolicy)> = vec![
        ("FRFCFS (no epochs)", false, MemPolicy::Uniform),
        ("Uniform epochs", true, MemPolicy::Uniform),
        (
            "ASM-Mem (slowdown-weighted)",
            true,
            MemPolicy::SlowdownWeighted,
        ),
    ];

    let mut table = Table::new(vec![
        "scheme".into(),
        "mcf".into(),
        "libquantum".into(),
        "lbm".into(),
        "gcc".into(),
        "max slowdown".into(),
        "harmonic speedup".into(),
    ]);

    for (name, epochs, policy) in schemes {
        let mut c = SystemConfig::default();
        c.quantum = 1_000_000;
        c.epoch = 10_000;
        c.epochs_enabled = epochs;
        c.mem_policy = policy;
        c.estimators = if epochs {
            EstimatorSet::asm_only()
        } else {
            EstimatorSet::none()
        };
        let runner = Runner::new(c);
        println!("running {name}...");
        let r = runner.run(&apps, cycles);
        let s = &r.whole_run_slowdowns;
        table.row(vec![
            name.into(),
            format!("{:.2}x", s[0]),
            format!("{:.2}x", s[1]),
            format!("{:.2}x", s[2]),
            format!("{:.2}x", s[3]),
            format!("{:.2}", max_slowdown(s).unwrap_or(f64::NAN)),
            format!("{:.3}", harmonic_speedup(s).unwrap_or(f64::NAN)),
        ]);
    }
    println!("{table}");
    println!("ASM-Mem steers prioritised epochs toward the most slowed-down");
    println!("applications, cutting the maximum slowdown.");
}
