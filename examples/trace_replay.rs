//! Trace-driven simulation: estimate slowdowns for *recorded* access
//! traces instead of synthetic profiles.
//!
//! The paper drives its simulator with Pin traces of real benchmarks; this
//! example shows the equivalent interface here. It first records a short
//! trace from two synthetic applications (standing in for real traces on
//! disk), writes them in the text trace format, then replays them through
//! [`System::from_specs`] with ASM estimating slowdowns online.
//!
//! Run with: `cargo run --release --example trace_replay`

use asm_repro::core::{AppSpec, EstimatorSet, System, SystemConfig};
use asm_repro::cpu::{AddressStream, AppProfile, TraceSource};
use asm_repro::metrics::Table;
use asm_repro::workloads::suite;

/// Records `len` accesses of `profile` (slot `slot`) into the text trace
/// format — a stand-in for a real Pin trace on disk.
fn record_trace(profile: &AppProfile, slot: usize, len: usize) -> Vec<u8> {
    let mut stream = AddressStream::new(profile, slot, 7);
    let ops: Vec<_> = (0..len).map(|_| stream.next_op()).collect();
    let trace = TraceSource::new(ops);
    let mut buf = Vec::new();
    trace.write_to(&mut buf).expect("in-memory write");
    buf
}

fn main() {
    let profiles = [
        suite::by_name("mcf_like").expect("profile"),
        suite::by_name("h264ref_like").expect("profile"),
    ];

    // "Record" traces (in a real deployment these are files on disk).
    println!("recording traces...");
    let traces: Vec<Vec<u8>> = profiles
        .iter()
        .enumerate()
        .map(|(slot, p)| record_trace(p, slot, 200_000))
        .collect();
    for (p, t) in profiles.iter().zip(&traces) {
        println!("  {}: {} bytes of trace", p.name(), t.len());
    }

    // Replay through the full system with ASM observing.
    let specs: Vec<AppSpec> = profiles
        .iter()
        .zip(&traces)
        .map(|(p, bytes)| AppSpec {
            name: format!("{}(trace)", p.name()),
            source: Box::new(TraceSource::parse(bytes.as_slice()).expect("valid trace")),
            mem_probability: p.mem_probability(),
            mlp: p.mlp(),
        })
        .collect();

    let mut config = SystemConfig::default();
    config.quantum = 500_000;
    config.epoch = 10_000;
    config.estimators = EstimatorSet::asm_only();

    let mut sys = System::from_specs(specs, config);
    println!("replaying for 2M cycles...");
    sys.run_for(2_000_000);

    let mut table = Table::new(vec![
        "quantum".into(),
        "app".into(),
        "CAR (acc/kcycle)".into(),
        "ASM slowdown".into(),
    ]);
    for (qi, r) in sys.records().iter().enumerate() {
        let est = r.estimates_of("ASM").expect("ASM enabled");
        for (i, name) in sys.app_names().iter().enumerate() {
            table.row(vec![
                qi.to_string(),
                name.clone(),
                format!("{:.2}", r.car_shared[i] * 1_000.0),
                format!("{:.2}x", est[i]),
            ]);
        }
    }
    println!("{table}");
}
