//! Quickstart: estimate application slowdowns online with ASM.
//!
//! Builds a 4-application workload, simulates it on the Table 2 system,
//! and prints ASM's per-quantum slowdown estimates next to the measured
//! ground truth (from alone runs of the same applications).
//!
//! Run with: `cargo run --release --example quickstart`

use asm_repro::core::{EstimatorSet, Runner, SystemConfig};
use asm_repro::metrics::Table;
use asm_repro::workloads::suite;

fn main() {
    // A mix spanning the behaviour space: cache-sensitive (bzip2),
    // streaming (libquantum), irregular memory-bound (mcf), and moderate
    // (h264ref).
    let apps = vec![
        suite::by_name("bzip2_like").expect("profile exists"),
        suite::by_name("libquantum_like").expect("profile exists"),
        suite::by_name("mcf_like").expect("profile exists"),
        suite::by_name("h264ref_like").expect("profile exists"),
    ];

    // Table 2 hardware with a scaled-down quantum so the example finishes
    // in seconds (the paper uses Q = 5M cycles).
    let mut config = SystemConfig::default();
    config.quantum = 1_000_000;
    config.epoch = 10_000;
    config.estimators = EstimatorSet::asm_only();

    let runner = Runner::new(config);
    println!("simulating 6M cycles (plus alone runs for ground truth)...");
    let result = runner.run(&apps, 6_000_000);

    let mut table = Table::new(vec![
        "quantum".into(),
        "app".into(),
        "ASM estimate".into(),
        "actual".into(),
        "error".into(),
    ]);
    for (qi, q) in result.quanta.iter().enumerate() {
        let est = q
            .estimates
            .iter()
            .find(|(n, _)| n == "ASM")
            .map(|(_, v)| v.as_slice())
            .expect("ASM enabled");
        for (i, name) in result.app_names.iter().enumerate() {
            let (e, a) = (est[i], q.actual[i]);
            if !a.is_finite() {
                continue;
            }
            table.row(vec![
                qi.to_string(),
                name.clone(),
                format!("{e:.2}x"),
                format!("{a:.2}x"),
                format!("{:.1}%", asm_repro::metrics::estimation_error_pct(e, a)),
            ]);
        }
    }
    println!("{table}");
    println!("whole-run slowdowns: ");
    for (name, s) in result.app_names.iter().zip(&result.whole_run_slowdowns) {
        println!("  {name}: {s:.2}x");
    }
}
