//! Slowdown-driven job migration and admission control (§7.5).
//!
//! Simulates two consolidated "machines" (two independent 4-core systems),
//! reads ASM's online slowdown estimates from each, and applies the
//! migration/admission logic of `asm_core::mech::migration`: move the
//! most-slowed-down job off the hottest machine, and check whether either
//! machine can admit new work under an SLA bound.
//!
//! Run with: `cargo run --release --example admission_control`

use asm_repro::core::mech::migration::{admit, recommend_migration, MachineSnapshot};
use asm_repro::core::{EstimatorSet, System, SystemConfig};
use asm_repro::metrics::Table;
use asm_repro::workloads::suite;

fn config() -> SystemConfig {
    let mut c = SystemConfig::default();
    c.quantum = 1_000_000;
    c.epoch = 10_000;
    c.estimators = EstimatorSet::asm_only();
    c
}

fn snapshot(machine: usize, sys: &System) -> MachineSnapshot {
    let slowdowns = sys
        .records()
        .last()
        .and_then(|r| r.estimates_of("ASM").map(<[f64]>::to_vec))
        .unwrap_or_default();
    MachineSnapshot { machine, slowdowns }
}

fn main() {
    // Machine 0: an overloaded mix of heavy streamers.
    let hot = vec![
        suite::by_name("mcf_like").expect("profile"),
        suite::by_name("libquantum_like").expect("profile"),
        suite::by_name("lbm_like").expect("profile"),
        suite::by_name("soplex_like").expect("profile"),
    ];
    // Machine 1: light compute-bound tenants.
    let cool = vec![
        suite::by_name("povray_like").expect("profile"),
        suite::by_name("namd_like").expect("profile"),
        suite::by_name("h264ref_like").expect("profile"),
        suite::by_name("gcc_like").expect("profile"),
    ];

    println!("simulating both machines for 3M cycles...");
    let mut m0 = System::new(&hot, config());
    let mut m1 = System::new(&cool, config());
    m0.run_for(3_000_000);
    m1.run_for(3_000_000);

    let snaps = [snapshot(0, &m0), snapshot(1, &m1)];
    let mut table = Table::new(vec![
        "machine".into(),
        "apps".into(),
        "ASM slowdowns".into(),
        "max".into(),
    ]);
    for (snap, sys) in snaps.iter().zip([&m0, &m1]) {
        table.row(vec![
            snap.machine.to_string(),
            sys.app_names().join(", "),
            snap.slowdowns
                .iter()
                .map(|s| format!("{s:.2}"))
                .collect::<Vec<_>>()
                .join(" "),
            format!("{:.2}", snap.max_slowdown()),
        ]);
    }
    println!("{table}");

    match recommend_migration(&snaps, 1.3) {
        Some(m) => {
            let name = [&m0, &m1][m.from].app_names()[m.app_index].clone();
            println!(
                "migration advice: move {name} (app{}) from machine {} to machine {}",
                m.app_index, m.from, m.to
            );
        }
        None => println!("migration advice: machines are balanced, no move"),
    }

    let sla = 3.0;
    for snap in &snaps {
        println!(
            "admission control (SLA {sla}x, 0.5 headroom): machine {} {}",
            snap.machine,
            if admit(snap, sla, 0.5) {
                "CAN admit new work"
            } else {
                "must REJECT new work"
            }
        );
    }
}
