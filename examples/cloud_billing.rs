//! Fair pricing in consolidated cloud systems (§7.4).
//!
//! When jobs from different customers share a machine, billing by
//! wall-clock time charges customers for the interference their
//! neighbours caused. ASM's online slowdown estimates let the provider
//! bill for *alone-equivalent* time instead: `billed = wall / slowdown`.
//!
//! Run with: `cargo run --release --example cloud_billing`

use asm_repro::core::{EstimatorSet, Runner, SystemConfig};
use asm_repro::metrics::Table;
use asm_repro::workloads::suite;

fn main() {
    // Four tenants consolidated on one node.
    let apps = vec![
        suite::by_name("tpcc_like").expect("profile"),
        suite::by_name("ycsb_like").expect("profile"),
        suite::by_name("mcf_like").expect("profile"),
        suite::by_name("h264ref_like").expect("profile"),
    ];
    let cycles: u64 = 8_000_000;

    let mut config = SystemConfig::default();
    config.quantum = 1_000_000;
    config.epoch = 10_000;
    config.estimators = EstimatorSet::asm_only();

    let runner = Runner::new(config);
    println!("simulating the consolidated node...");
    let r = runner.run(&apps, cycles);

    // Average ASM estimate over the run = the slowdown the provider would
    // have observed online, without ever running the tenants alone.
    let n = apps.len();
    let mut est = vec![0.0f64; n];
    let mut quanta = 0u32;
    for q in r.quanta.iter().skip(1) {
        if let Some(e) = q.estimates.iter().find(|(nm, _)| nm == "ASM") {
            for (i, v) in e.1.iter().enumerate() {
                est[i] += v;
            }
            quanta += 1;
        }
    }
    for e in &mut est {
        *e /= f64::from(quanta.max(1));
    }

    // Treat the simulated span as one wall-clock "hour".
    let mut table = Table::new(vec![
        "tenant".into(),
        "wall time billed".into(),
        "ASM slowdown".into(),
        "fair (alone-equivalent) bill".into(),
        "true fair bill".into(),
    ]);
    for (i, name) in r.app_names.iter().enumerate() {
        table.row(vec![
            name.clone(),
            "1.000 h".into(),
            format!("{:.2}x", est[i]),
            format!("{:.3} h", 1.0 / est[i]),
            format!("{:.3} h", 1.0 / r.whole_run_slowdowns[i]),
        ]);
    }
    println!("{table}");
    println!("A wall-clock-only scheme overcharges every slowed-down tenant; ASM's");
    println!("estimates recover the alone-equivalent usage without profiling runs.");
}
